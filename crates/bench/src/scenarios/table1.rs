//! Table 1: all-to-all completion time and its share of step/batch
//! time for Transformer-XL at 12/24/36 layers and 4/16 experts.

use lina_baselines::{InferScheme, TrainScheme};
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_runner::train::run_train_steps;
use lina_simcore::{format_pct, format_secs, Report, Table};

use super::mean;
use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let mut table = Table::new(
        "Transformer-XL, baseline (DeepSpeed-like) system",
        &[
            "experts",
            "layers",
            "params",
            "train a2a",
            "train ratio",
            "infer a2a",
            "infer ratio",
        ],
    );
    // Paper-reported values for the shape comparison.
    let paper = [
        (4, 12, "259ms", "36.7%", "73ms", "27.4%"),
        (4, 24, "589ms", "35.4%", "103ms", "26.2%"),
        (4, 36, "979ms", "38.2%", "153ms", "28.3%"),
        (16, 12, "333ms", "39.5%", "102ms", "32.5%"),
        (16, 24, "715ms", "37.6%", "177ms", "31.7%"),
        (16, 36, "1145ms", "36.8%", "243ms", "27.4%"),
    ];
    let steps = ctx.steps.min(5);
    let mut train_ratios = Vec::new();
    let mut infer_ratios = Vec::new();
    for experts in ctx.pick(&[4usize, 16], &[4]) {
        for layers in ctx.pick(&[12usize, 24, 36], &[12]) {
            let model = MoeModelConfig::transformer_xl(layers, experts);
            let topo = crate::topo(experts);
            let params = model.total_params() as f64 / 1e6;

            // Training.
            let cost = crate::train_cost(model.clone());
            let batch = crate::train_batch(&model);
            let metrics = run_train_steps(&cost, &topo, batch, TrainScheme::Baseline, steps, 7);
            let a2a: f64 = metrics
                .iter()
                .map(|m| m.a2a_total.as_secs_f64())
                .sum::<f64>()
                / metrics.len() as f64;
            let step: f64 = metrics
                .iter()
                .map(|m| m.step_time.as_secs_f64())
                .sum::<f64>()
                / metrics.len() as f64;

            // Inference (same batch size, per the paper's note).
            let icost = crate::infer_cost(model.clone());
            let spec = crate::workload_for(&model, experts, layers);
            let setup = ctx.inference_setup_with(
                &spec,
                experts,
                3,
                ctx.batches.min(6),
                batch.tokens_per_device(),
            );
            let mut summary = run_inference_batches(
                &icost,
                &topo,
                &InferenceConfig {
                    scheme: InferScheme::Baseline,
                    top_k: 1,
                },
                None,
                &setup.batches,
            );
            let infer_total = summary.totals.median();
            let infer_a2a = summary.a2a_times.sum();
            let infer_a2a_per_batch = infer_a2a / setup.batches.len() as f64;

            train_ratios.push(a2a / step);
            infer_ratios.push(infer_a2a_per_batch / infer_total);
            table.row(&[
                experts.to_string(),
                layers.to_string(),
                format!("{params:.0}M"),
                format_secs(a2a),
                format_pct(a2a / step),
                format_secs(infer_a2a_per_batch),
                format_pct(infer_a2a_per_batch / infer_total),
            ]);
        }
    }
    report.table(table);

    let mut ptable = Table::new(
        "paper-reported values",
        &[
            "experts",
            "layers",
            "train a2a",
            "ratio",
            "infer a2a",
            "ratio",
        ],
    );
    for (e, l, ta, tr, ia, ir) in paper {
        ptable.row(&[
            e.to_string(),
            l.to_string(),
            ta.into(),
            tr.into(),
            ia.into(),
            ir.into(),
        ]);
    }
    report.table(ptable);
    report.text(
        "shape check: all-to-all is a consistent ~25-45% of both training and\n\
         inference time, growing with layer count and expert count.",
    );
    report.metric_unit("train_a2a_ratio_mean", mean(&train_ratios), "frac");
    report.metric_unit("infer_a2a_ratio_mean", mean(&infer_ratios), "frac");
    report
}
