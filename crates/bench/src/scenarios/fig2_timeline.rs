//! Figure 2: timeline of the forward pass of one MoE layer, showing
//! all-to-all dominating (the paper measures 74.9% of the layer).

use lina_baselines::TrainScheme;
use lina_model::{CommClass, MoeModelConfig, OpKind};
use lina_runner::train::run_train_step;
use lina_simcore::{format_pct, Report, SimDuration, SimTime, SpanKind};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let model = MoeModelConfig::transformer_xl(12, 16);
    let topo = crate::topo(16);
    let cost = crate::train_cost(model.clone());
    let batch = crate::train_batch(&model);
    let run = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 11);

    // Find the forward window of layer 5 (mid-model): gate to combine.
    let layer = 5usize;
    let mut lo = SimTime::MAX;
    let mut hi = SimTime::ZERO;
    let mut a2a_time = SimDuration::ZERO;
    for (i, op) in run.graph.ops().iter().enumerate() {
        if op.layer != Some(layer) || op.backward {
            continue;
        }
        let in_moe = match &op.kind {
            OpKind::Compute { span, .. } => {
                matches!(
                    span,
                    SpanKind::Gate | SpanKind::ExpertFfn | SpanKind::Combine
                )
            }
            OpKind::Comm { meta, .. } => meta.class == CommClass::AllToAll,
        };
        if !in_moe {
            continue;
        }
        let (s, e) = run.exec.window(lina_model::OpId(i as u32));
        lo = lo.min(s);
        hi = hi.max(e);
        if let OpKind::Comm { meta, .. } = &op.kind {
            if meta.class == CommClass::AllToAll {
                a2a_time += e - s;
            }
        }
    }
    let layer_time = hi - lo;
    let share = a2a_time.ratio(layer_time);
    report.text(format!(
        "MoE layer {layer} forward: {layer_time}, all-to-all {a2a_time} ({})",
        format_pct(share)
    ));
    report.text("paper: all-to-all takes 74.9% of the MoE layer's forward pass\n");
    report.text(run.exec.timeline.render_ascii(lo, hi, 100));
    report.text("glyphs: G gate, # all-to-all, F expert FFN, C combine, = allreduce");
    report.metric_unit("fwd_layer_a2a_share", share, "frac");
    report.metric_unit("fwd_layer_time", layer_time.as_secs_f64(), "s");
    report
}
