//! Figure 8: micro-op scheduling — tensor partitioning lets allreduce
//! micro-ops fill the gaps between all-to-all operations, and
//! partitioned all-to-all pipelines with the expert FFN.

use lina_baselines::TrainScheme;
use lina_model::{CommClass, MoeModelConfig, OpKind};
use lina_runner::train::run_train_step;
use lina_simcore::{format_pct, format_secs, Report, SimTime};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let model = MoeModelConfig::gpt2(16);
    let topo = crate::topo(16);
    let cost = crate::train_cost(model.clone());
    let batch = crate::train_batch(&model);

    let base = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 5);
    let lina = run_train_step(&cost, &topo, batch, TrainScheme::LinaNoPack, 5);

    report.text(format!(
        "baseline step {} -> Lina (priority + partitioning + pipelining) step {}\n",
        format_secs(base.metrics.step_time.as_secs_f64()),
        format_secs(lina.metrics.step_time.as_secs_f64()),
    ));
    report.text(format!(
        "pipelining efficiency: baseline {} -> Lina {}",
        format_pct(base.metrics.pipelining_efficiency),
        format_pct(lina.metrics.pipelining_efficiency),
    ));
    report.metric_unit(
        "step_speedup",
        base.metrics.step_time.as_secs_f64() / lina.metrics.step_time.as_secs_f64(),
        "x",
    );
    report.metric_unit(
        "lina_pipelining_efficiency",
        lina.metrics.pipelining_efficiency,
        "frac",
    );

    // Render the window around a backward MoE layer of the Lina run to
    // show micro-ops interleaving (Figure 8a/8b).
    let mut lo = SimTime::MAX;
    let mut hi = SimTime::ZERO;
    for (i, op) in lina.graph.ops().iter().enumerate() {
        if op.layer == Some(6) && op.backward {
            if let OpKind::Comm { meta, .. } = &op.kind {
                if meta.class == CommClass::AllToAll {
                    let (s, e) = lina.exec.window(lina_model::OpId(i as u32));
                    lo = lo.min(s);
                    hi = hi.max(e);
                }
            }
        }
    }
    let pad = (hi - lo) / 3;
    report.text("\nLina backward pass around layer 6 (micro-ops visible):");
    report.text(lina.exec.timeline.render_ascii(lo - pad, hi + pad, 110));
    report.text("glyphs: A attention, G gate, # all-to-all, F expert FFN, C combine, = allreduce");
    report.text(
        "\npaper (Figure 8a): with 30 MB partitions, allreduce micro-ops run in\n\
         the gaps and finish 21.7% earlier without prolonging all-to-all;\n\
         (8b): FFN chunks start after each all-to-all micro-op.",
    );
    report
}
