//! Figure 5: timeline of backward-propagating an MoE layer under
//! hybrid parallelism — the first all-to-all is prolonged by the
//! concurrent allreduce.

use lina_baselines::TrainScheme;
use lina_model::{CommClass, MoeModelConfig, OpKind};
use lina_runner::train::run_train_step;
use lina_simcore::{format_speedup, Report, SimTime};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    // GPT-2's per-layer gradients flush DDP buckets mid-backward, so
    // allreduce overlaps the expert-parallel all-to-all.
    let model = MoeModelConfig::gpt2(16);
    let topo = crate::topo(16);
    let cost = crate::train_cost(model.clone());
    let batch = crate::train_batch(&model);
    let run = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 5);

    // Find the most-slowed overlapped backward all-to-all and render a
    // window around it.
    let m = &run.metrics;
    let mut worst: Option<(usize, f64)> = None;
    for (i, (&s, &o)) in m
        .a2a_bwd_slowdowns
        .iter()
        .zip(&m.a2a_bwd_overlapped)
        .enumerate()
    {
        if o {
            match worst {
                Some((_, best)) if best >= s => {}
                _ => worst = Some((i, s)),
            }
        }
    }
    let Some((_, slowdown)) = worst else {
        report.text("no overlap occurred in this step (try more steps)");
        report.metric_unit("worst_overlapped_slowdown", 0.0, "x");
        return report;
    };
    report.text(format!(
        "worst overlapped backward all-to-all slowdown: {}",
        format_speedup(slowdown)
    ));
    report.metric_unit("worst_overlapped_slowdown", slowdown, "x");

    // Render the window around an allreduce that overlaps an
    // all-to-all (the Figure 5 situation).
    let mut a2a_windows: Vec<(SimTime, SimTime)> = Vec::new();
    for (i, op) in run.graph.ops().iter().enumerate() {
        if let OpKind::Comm { meta, .. } = &op.kind {
            if meta.class == CommClass::AllToAll && meta.backward {
                a2a_windows.push(run.exec.window(lina_model::OpId(i as u32)));
            }
        }
    }
    let mut window: Option<(SimTime, SimTime)> = None;
    for (i, op) in run.graph.ops().iter().enumerate() {
        if let OpKind::Comm { meta, .. } = &op.kind {
            if meta.class == CommClass::Allreduce {
                let (s, e) = run.exec.window(lina_model::OpId(i as u32));
                let overlaps = a2a_windows.iter().any(|&(as_, ae)| as_ < e && ae > s);
                if overlaps && window.is_none_or(|(ws, we)| (e - s) > (we - ws)) {
                    window = Some((s, e));
                }
            }
        }
    }
    let (s, e) = window.expect("an allreduce overlapped an all-to-all");
    let pad = (e - s) / 3;
    report.text(run.exec.timeline.render_ascii(s - pad, e + pad, 110));
    report.text("glyphs: A attention, G gate, # all-to-all, F expert FFN, C combine, = allreduce");
    report.text("paper: the median slowdown over such overlaps is 1.83x (Figure 3).");
    report
}
