//! Table 5: impact of the sample-path length `l` on inference time,
//! fine-tuning rate, and estimation accuracy (paper, l = 1/3/6:
//! accuracy 31.6/60.4/71.4%, fine-tuning 76.5/25.7/22.5%, normalized
//! median 1.41/1.16/1.19 for Transformer-XL).

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::{Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let models = ctx.pick(
        &[
            MoeModelConfig::transformer_xl(12, 16),
            MoeModelConfig::bert_large(16),
        ],
        &[MoeModelConfig::transformer_xl(12, 16)],
    );
    for model in models {
        let experts = 16;
        let topo = crate::topo(experts);
        let cost = crate::infer_cost(model.clone());
        let spec = crate::workload_for(&model, experts, model.layers);
        let mut table = Table::new(
            model.name.clone(),
            &[
                "path len",
                "norm median",
                "norm p95",
                "fine-tune",
                "accuracy",
            ],
        );
        for l in ctx.pick(&[1usize, 3, 6], &[1, 3]) {
            let setup = ctx.inference_setup(&spec, experts, l);
            let run = |scheme| {
                run_inference_batches(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    &setup.batches,
                )
            };
            let mut ideal = run(InferScheme::Ideal);
            let mut lina = run(InferScheme::Lina);
            report.metric_unit(
                format!("{}_accuracy_l{l}", crate::slug(&model.name)),
                lina.accuracy().unwrap_or(0.0),
                "frac",
            );
            table.row(&[
                l.to_string(),
                format!("{:.2}", lina.totals.median() / ideal.totals.median()),
                format!("{:.2}", lina.totals.p95() / ideal.totals.p95()),
                crate::format_rate(lina.finetune_rate()),
                crate::format_rate(lina.accuracy()),
            ]);
        }
        report.table(table);
    }
    report.text(
        "paper (Transformer-XL): l=1 gives 31.6% accuracy and 76.5% fine-tune\n\
         rate (normalized median 1.41); l=3 reaches 60.4% / 25.7% (1.16);\n\
         l=6 improves accuracy further but starts scheduling later, so the\n\
         end-to-end time does not improve.",
    );
    report
}
