//! Serving load sweep: latency–throughput curves for the open-loop
//! serving subsystem (`lina-serve`), sweeping offered load from
//! underload to past saturation of the static baseline.
//!
//! At each load point every scheme serves the *same* arrival trace
//! (same seed), so the comparison isolates the placement policy: the
//! baseline's skew-inflated service times compound through the queue,
//! while Lina's estimation-based re-placement keeps batches short and
//! the queue drained. Requests drift in topic popularity over the run
//! and Lina re-profiles its estimator online.

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{serve, ArrivalProcess, BatcherConfig, NetworkMode, ServeConfig, ServeEngine};
use lina_simcore::{Report, SimDuration, Table};

use crate::ScenarioCtx;

fn config(
    scheme: InferScheme,
    rate: f64,
    n_requests: usize,
    tokens_per_request: usize,
) -> ServeConfig {
    ServeConfig {
        scheme,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 4,
            max_wait: SimDuration::from_millis(4),
        },
        slo: SimDuration::from_millis(60),
        n_requests,
        tokens_per_request,
        token_spread: 0.0,
        drift_period: Some((n_requests / 4).max(1)),
        reestimate_every: Some(8),
        reestimate_window: 16,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0x10AD,
        perf: Default::default(),
    }
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let n_requests = ctx.requests;
    let tokens_per_request = match ctx.tier {
        crate::Tier::Full => 8192,
        crate::Tier::Smoke => 2048,
    };
    let experts = 16;
    let model = MoeModelConfig::transformer_xl(12, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor the sweep on the static baseline's saturation rate.
    let probe = ServeEngine::new(
        &cost,
        &topo,
        &spec,
        config(InferScheme::Baseline, 1.0, n_requests, tokens_per_request),
    );
    let capacity = probe.capacity();
    report.metric_unit("baseline_capacity", capacity, "req/s");
    report.text(format!(
        "baseline capacity ~{capacity:.0} req/s (full batches back to back); \
         {n_requests} requests per point\n"
    ));

    let schemes = [
        InferScheme::Baseline,
        InferScheme::Lina,
        InferScheme::LinaNoEstimation,
        InferScheme::Ideal,
    ];
    for load in ctx.pick(&[0.3, 0.5, 0.7, 0.85, 1.0], &[0.5, 1.0]) {
        let rate = load * capacity;
        let mut table = Table::new(
            format!(
                "offered load {:.0}% of baseline capacity ({rate:.0} req/s)",
                load * 100.0
            ),
            &[
                "scheme",
                "p50",
                "p95",
                "p99",
                "SLO att.",
                "throughput",
                "goodput",
            ],
        );
        for scheme in schemes {
            let out = serve(
                &cost,
                &topo,
                &spec,
                config(scheme, rate, n_requests, tokens_per_request),
            );
            let r = out.report();
            if scheme == InferScheme::Lina {
                report.metric_unit(
                    format!("lina_slo_attainment_load{:.0}", load * 100.0),
                    r.attainment,
                    "frac",
                );
            }
            table.row(&[
                scheme.name().into(),
                r.p50.to_string(),
                r.p95.to_string(),
                r.p99.to_string(),
                format!("{:.1}%", r.attainment * 100.0),
                format!("{:.0} req/s", r.throughput),
                format!("{:.0} req/s", r.goodput),
            ]);
        }
        report.table(table);
    }
    report.text(
        "reading the sweep: at low load every scheme hides behind the\n\
         batching timeout; as load approaches the baseline's saturation its\n\
         skewed batches queue up and the tail explodes, while Lina's\n\
         re-placed batches keep service times short enough to drain.",
    );
    report
}
