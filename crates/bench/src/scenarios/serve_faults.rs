//! Fault injection and graceful degradation: crash intensity ×
//! recovery time × degradation policy on the multi-replica cluster.
//!
//! The experiment: the three-replica cluster of `serve_cluster` runs at
//! a moderate load (60% of aggregate capacity — enough headroom that
//! the survivors *could* absorb failover work), and a scripted schedule
//! crashes replicas one at a time across the middle of the arrival
//! span, each coming back after a fixed recovery time plus a modeled
//! weight-reload cost. Three degradation policies handle the displaced
//! work: `fail-fast` drops it on the spot, `retry-failover` re-admits
//! it through the balancer with capped exponential backoff, and
//! `retry-failover-shed` adds queue-depth admission control. The
//! headline metrics are the availability and SLO-attainment gaps
//! between shedding failover and fail-fast at the default cell (both
//! must be strictly positive: graceful degradation has to buy
//! something), plus a degeneracy probe — an *armed* retry policy over
//! an *empty* schedule must reproduce the healthy-path report bit for
//! bit.

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{
    serve_cluster, ArrivalProcess, BalancerKind, BatcherConfig, ClusterConfig, ClusterEngine,
    DegradationPolicy, EstimatorSharing, FaultEvent, FaultKind, FaultPlan, FaultSchedule,
    NetworkMode, ServeConfig, ServeEngine,
};
use lina_simcore::{Report, SimDuration, SimTime, Table};

use crate::scenario::slug;
use crate::ScenarioCtx;

/// Replica servers behind the balancer.
const REPLICAS: usize = 3;

/// Offered load as a fraction of aggregate capacity: low enough that
/// two survivors can drain a third replica's failed-over work.
const LOAD: f64 = 0.6;

/// The default sweep cell the headline gaps are read from (present at
/// both tiers).
const DEFAULT_CRASHES: usize = 4;
const DEFAULT_RECOVERY_MS: u64 = 10;

fn serve_config(rate: f64, n_requests: usize, tokens_per_request: usize) -> ServeConfig {
    ServeConfig {
        scheme: InferScheme::Lina,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        // Steady Poisson arrivals: the transient we are studying is the
        // failure, not the arrival process.
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 8,
            max_wait: SimDuration::from_millis(2),
        },
        slo: SimDuration::from_millis(60),
        n_requests,
        tokens_per_request,
        token_spread: 0.9,
        drift_period: Some((n_requests / 6).max(1)),
        reestimate_every: Some(4),
        reestimate_window: 8,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0x5EED,
        perf: Default::default(),
    }
}

fn cluster_config(serve: ServeConfig, faults: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        serve,
        replicas: REPLICAS,
        balancer: BalancerKind::JoinShortestQueue,
        sharing: EstimatorSharing::Shared,
        faults,
        autoscale: None,
        resharding: None,
        placement: None,
        locality: false,
        health: lina_serve::HealthConfig::oracle(),
        hedging: None,
    }
}

/// `crashes` replica crashes evenly spaced over the middle 70% of the
/// arrival span, rotating over replicas, each recovering after
/// `recovery`.
fn crash_script(crashes: usize, recovery: SimDuration, span: SimDuration) -> FaultSchedule {
    let mut events = Vec::new();
    for i in 0..crashes {
        let frac = 0.15 + 0.7 * i as f64 / crashes as f64;
        let at = SimTime::ZERO + span.mul_f64(frac);
        let replica = i % REPLICAS;
        events.push(FaultEvent {
            at,
            replica,
            kind: FaultKind::ReplicaCrash,
        });
        events.push(FaultEvent {
            at: at + recovery,
            replica,
            kind: FaultKind::ReplicaRecover,
        });
    }
    FaultSchedule::from_script(events)
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let n_requests = match ctx.tier {
        crate::Tier::Full => ctx.requests * REPLICAS,
        crate::Tier::Smoke => ctx.requests * REPLICAS * 4,
    };
    let tokens_per_request = match ctx.tier {
        crate::Tier::Full => 8192,
        crate::Tier::Smoke => 2048,
    };
    let experts = 8;
    let model = MoeModelConfig::transformer_xl(6, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor on aggregate capacity, then measure the healthy arrival
    // span so scripted crashes land mid-run at every tier.
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve_config(1.0, n_requests, tokens_per_request),
            FaultPlan::none(),
        ),
    );
    let capacity = probe.capacity();
    let rate = LOAD * capacity;
    let serve = serve_config(rate, n_requests, tokens_per_request);
    let span = ServeEngine::new(&cost, &topo, &spec, serve.clone())
        .generate_requests()
        .last()
        .expect("nonempty request trace")
        .arrival
        .saturating_since(SimTime::ZERO);
    report.metric_unit("cluster_capacity", capacity, "req/s");
    report.text(format!(
        "{REPLICAS} replicas at {:.0}% load ({rate:.0} req/s), {n_requests} \
         requests over a {span} healthy span; scripted crashes rotate over \
         replicas and recover after a fixed repair time plus weight reload\n",
        LOAD * 100.0
    ));

    let policies = [
        DegradationPolicy::fail_fast(),
        DegradationPolicy::retry_failover(Some(SimDuration::from_millis(300))),
        DegradationPolicy::retry_failover_shed(Some(SimDuration::from_millis(300))),
    ];
    let crash_counts = ctx.pick(&[2, DEFAULT_CRASHES, 8], &[DEFAULT_CRASHES]);
    let recoveries_ms = ctx.pick(&[DEFAULT_RECOVERY_MS, 40], &[DEFAULT_RECOVERY_MS]);
    let mut default_cell: Vec<(&'static str, f64, f64)> = Vec::new();
    for &crashes in &crash_counts {
        for &rec_ms in &recoveries_ms {
            let recovery = SimDuration::from_millis(rec_ms);
            let schedule = crash_script(crashes, recovery, span);
            let mut table = Table::new(
                format!("{crashes} crashes, {recovery} recovery"),
                &[
                    "policy",
                    "avail.",
                    "SLO att.",
                    "goodput",
                    "dropped",
                    "timed out",
                    "aborted",
                    "mean TTR",
                ],
            );
            for policy in policies {
                let out = serve_cluster(
                    &cost,
                    &topo,
                    &spec,
                    cluster_config(
                        serve.clone(),
                        FaultPlan {
                            schedule: schedule.clone(),
                            policy,
                        },
                    ),
                );
                let r = out.report();
                let ttr = out.mean_time_to_recover();
                let cell = format!("{}_c{crashes}_r{rec_ms}ms", slug(policy.kind.name()));
                report.metric_unit(format!("availability_{cell}"), r.availability, "frac");
                report.metric_unit(format!("attainment_{cell}"), r.attainment, "frac");
                report.metric_unit(format!("goodput_{cell}"), r.goodput, "req/s");
                report.metric_unit(format!("ttr_ms_{cell}"), ttr.as_millis_f64(), "ms");
                if crashes == DEFAULT_CRASHES && rec_ms == DEFAULT_RECOVERY_MS {
                    default_cell.push((policy.kind.name(), r.availability, r.attainment));
                }
                table.row(&[
                    policy.kind.name().into(),
                    format!("{:.1}%", r.availability * 100.0),
                    format!("{:.1}%", r.attainment * 100.0),
                    format!("{:.0} req/s", r.goodput),
                    r.dropped.to_string(),
                    r.timed_out.to_string(),
                    out.aborted_batches.to_string(),
                    ttr.to_string(),
                ]);
            }
            report.table(table);
        }
    }

    // Headline: what graceful degradation buys over fail-fast at the
    // default cell — both gaps must be strictly positive.
    let cell_of = |name: &str| {
        default_cell
            .iter()
            .find(|&&(n, _, _)| n == name)
            .copied()
            .expect("default cell swept")
    };
    let (_, ff_avail, ff_att) = cell_of("fail-fast");
    let (_, shed_avail, shed_att) = cell_of("retry-failover-shed");
    report.metric("shed_minus_failfast_availability", shed_avail - ff_avail);
    report.metric("shed_minus_failfast_attainment", shed_att - ff_att);

    // Degeneracy probe: an armed retry policy over an empty schedule
    // must be inert — bit-for-bit the healthy path.
    let healthy = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(serve.clone(), FaultPlan::none()),
    );
    let armed = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve,
            FaultPlan {
                schedule: FaultSchedule::none(),
                policy: DegradationPolicy::retry_failover_shed(None),
            },
        ),
    );
    let identical = healthy.report() == armed.report()
        && healthy.tracker.records() == armed.tracker.records()
        && armed.tracker.failures().is_empty();
    report.metric_unit(
        "empty_schedule_p99_delta_ms",
        (healthy.report().p99.as_millis_f64() - armed.report().p99.as_millis_f64()).abs(),
        "ms",
    );
    report.metric(
        "empty_schedule_identical",
        if identical { 1.0 } else { 0.0 },
    );

    report.text(
        "reading the sweep: every crash aborts the replica's in-flight batch\n\
         and displaces its queue. Fail-fast turns each displaced request into\n\
         a dropped outcome — availability falls roughly with crashes x work\n\
         in flight — while retry + failover re-admits them through the\n\
         balancer (which routes around the down replica) at a few ms of\n\
         backoff; with recovery times well under the SLO, most displaced\n\
         requests still complete in target, so both availability and\n\
         attainment recover. Shedding only separates from plain failover\n\
         when the post-failure backlog exceeds what survivors can drain;\n\
         at 60% load its admission controller stays quiet and the two\n\
         failover rows agree. Time-to-recover measures crash instant to the\n\
         last displaced request reaching a terminal outcome; fail-fast's is\n\
         zero by construction (everything terminates at the crash).",
    );
    report
}
