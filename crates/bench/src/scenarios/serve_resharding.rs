//! Proactive expert re-sharding under skew drift: drift rate × policy
//! × transfer cost on drifting popularity traces.
//!
//! The experiment: the workload's Zipf class ranking rotates every
//! `n_requests / phases` requests, so the hot experts change while the
//! cluster serves. Lina's answer is *epoch-based*: the estimating
//! scheme re-profiles its popularity estimator every few batches and
//! the two-phase scheduler re-places experts against the refreshed
//! profile — but between epochs the profile is stale, so every
//! mis-estimated layer falls back to the fine-tune re-schedule (a full
//! blocking schedule plus a late weight swap). The proactive arm keeps
//! the scheme static (Baseline, no estimation, no scheduling overhead)
//! and instead arms the [`ThresholdReshardPolicy`] control loop: an
//! online per-expert load monitor feeds hot/cold watermarks, a hot
//! expert gains a replica on the least-crowded device (dispatch then
//! splits its tokens across the replicas), a cold replicated expert
//! loses one, and every weight-moving actuation charges the modeled
//! PCIe transfer to all replicas. The headline metric
//! `reshard_over_epoch_p99` divides the epoch arm's p99 by the best
//! proactive cell's (≥ 1: continuous re-sharding beats epoch-based
//! re-placement under drift); `inert_resharding_identical` re-runs a
//! reduced trace with an *armed but inert* re-sharder and demands a
//! bit-identical outcome.
//!
//! [`ThresholdReshardPolicy`]: lina_serve::ThresholdReshardPolicy

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{
    serve_cluster, ArrivalProcess, BalancerKind, BatcherConfig, ClusterConfig, ClusterEngine,
    EstimatorSharing, FaultPlan, NetworkMode, ReshardConfig, ReshardPolicyKind, ServeConfig,
};
use lina_simcore::{Report, SimDuration, Table};

use crate::ScenarioCtx;

/// Replica servers behind the balancer.
const REPLICAS: usize = 2;

/// Experts per layer — deliberately half the device count, so the
/// static placement leaves spare devices and re-sharding has somewhere
/// to put a hot expert's replica that is not already busy (a replica
/// co-hosted on a loaded device pays the inter-expert weight swap,
/// which at serving batch sizes costs more than the split saves).
const EXPERTS: usize = 4;

/// Devices in each replica's topology.
const DEVICES: usize = 8;

/// Offered load as a fraction of the static pool's capacity: enough
/// headroom that the arms differ on service-time tails, not on a
/// saturation death spiral.
const LOAD: f64 = 0.6;

/// The epoch arm re-profiles its estimator every this many batches —
/// roughly once per drift phase at the headline drift rate, the
/// epoch-based re-placement cadence under study.
const EPOCH_BATCHES: usize = 16;

/// Re-sharding control ticks per drift phase: the proactive loop gets
/// a handful of chances to react inside each phase.
const TICKS_PER_PHASE: f64 = 8.0;

/// Batches the re-sharder's load monitor holds.
const MONITOR_WINDOW: usize = 8;

fn serve_config(
    scheme: InferScheme,
    reestimate_every: Option<usize>,
    drift_period: usize,
    rate: f64,
    slo: SimDuration,
    n_requests: usize,
) -> ServeConfig {
    ServeConfig {
        scheme,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 16,
            max_wait: SimDuration::from_millis(2),
        },
        slo,
        n_requests,
        tokens_per_request: 256,
        // Uniform request sizes keep the capacity anchor exact.
        token_spread: 0.0,
        drift_period: Some(drift_period),
        reestimate_every,
        reestimate_window: 8,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0x5A2D,
        perf: Default::default(),
    }
}

fn cluster_config(serve: ServeConfig, resharding: Option<ReshardConfig>) -> ClusterConfig {
    ClusterConfig {
        serve,
        replicas: REPLICAS,
        balancer: BalancerKind::JoinShortestQueue,
        sharing: EstimatorSharing::Shared,
        faults: FaultPlan::none(),
        autoscale: None,
        resharding,
        placement: None,
        locality: false,
        health: lina_serve::HealthConfig::oracle(),
        hedging: None,
    }
}

fn threshold(transfer_cost: f64, interval: SimDuration) -> ReshardConfig {
    ReshardConfig {
        policy: ReshardPolicyKind::Threshold {
            // The monitor aggregates token selections across layers,
            // which flattens per-layer skew: trip just above the fair
            // share, and keep the cold watermark low enough that a
            // fresh replica (which halves the per-replica share) is
            // not immediately evicted back.
            hot: 1.1,
            cold: 0.5,
            hysteresis: 1,
            transfer_budget: 2,
        },
        interval,
        window: MONITOR_WINDOW,
        transfer_cost,
    }
}

/// One cell of the policy sweep.
struct PolicyCell {
    name: String,
    scheme: InferScheme,
    reestimate_every: Option<usize>,
    resharding: Option<ReshardConfig>,
    proactive: bool,
}

fn policy_cells(transfer_costs: &[f64], interval: SimDuration) -> Vec<PolicyCell> {
    let mut cells = vec![
        PolicyCell {
            name: "static".into(),
            scheme: InferScheme::Baseline,
            reestimate_every: None,
            resharding: None,
            proactive: false,
        },
        PolicyCell {
            name: "epoch_lina".into(),
            scheme: InferScheme::Lina,
            reestimate_every: Some(EPOCH_BATCHES),
            resharding: None,
            proactive: false,
        },
    ];
    for &tc in transfer_costs {
        cells.push(PolicyCell {
            name: format!("threshold_tx{}", (tc * 100.0).round() as u32),
            scheme: InferScheme::Baseline,
            reestimate_every: None,
            resharding: Some(threshold(tc, interval)),
            proactive: true,
        });
    }
    cells
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    // Enough requests that every drift phase spans several monitoring
    // windows and re-estimation epochs even at smoke tier.
    let n_requests = match ctx.tier {
        crate::Tier::Full => (ctx.requests * 20).max(4_000),
        crate::Tier::Smoke => 2_000,
    };
    let model = MoeModelConfig::transformer_xl(6, EXPERTS);
    let topo = crate::topo(DEVICES);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, EXPERTS, model.layers);

    // Anchor the offered load on the static pool's capacity (a full
    // skewed batch under the one-expert-per-device placement, served
    // back to back): the drift hurts every arm from the same baseline.
    let placeholder_slo = SimDuration::from_millis(60);
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve_config(
                InferScheme::Baseline,
                None,
                n_requests,
                1.0,
                placeholder_slo,
                n_requests,
            ),
            None,
        ),
    );
    let cap = probe.capacity();
    let rate = LOAD * cap;
    let batch_service = 16.0 * REPLICAS as f64 / cap;
    let slo = SimDuration::from_secs_f64(3.0 * (batch_service + 0.002));
    report.metric_unit("cluster_capacity", cap, "req/s");
    report.text(format!(
        "{REPLICAS} replicas at {:.0}% of the static pool's ~{cap:.0} req/s, \
         {n_requests} requests per cell, SLO {slo}\n",
        LOAD * 100.0,
    ));

    // Sweep: drift rate (phases per run) x policy x transfer cost.
    let phase_counts = ctx.pick(&[4usize, 8, 16], &[8]);
    let transfer_costs = ctx.pick(&[0.0, 1.0, 4.0], &[0.25, 1.0]);
    let headline_phases = *phase_counts.last().expect("nonempty drift sweep");
    let mut headline_epoch_p99 = None;
    let mut headline_best: Option<(String, f64, usize, usize, usize)> = None;
    let mut headline_interval = None;
    for &phases in &phase_counts {
        let drift_period = (n_requests / phases).max(1);
        let phase_time = drift_period as f64 / rate;
        let interval = SimDuration::from_secs_f64(phase_time / TICKS_PER_PHASE);
        let mut table = Table::new(
            format!(
                "{phases} drift phases ({drift_period} requests each), \
                 re-shard tick every {interval}"
            ),
            &[
                "policy", "p99", "SLO att.", "goodput", "repl", "evict", "migr",
            ],
        );
        for cell in policy_cells(&transfer_costs, interval) {
            let serve = serve_config(
                cell.scheme,
                cell.reestimate_every,
                drift_period,
                rate,
                slo,
                n_requests,
            );
            let out = serve_cluster(
                &cost,
                &topo,
                &spec,
                cluster_config(serve, cell.resharding.clone()),
            );
            let r = out.report();
            let tag = format!("{}_d{phases}", cell.name);
            report.metric_unit(format!("p99_ms_{tag}"), r.p99.as_millis_f64(), "ms");
            report.metric_unit(format!("attainment_{tag}"), r.attainment, "frac");
            if cell.proactive {
                report.metric(
                    format!("reshard_actions_{tag}"),
                    (out.replications + out.evictions + out.migrations) as f64,
                );
            }
            if phases == headline_phases {
                let p99 = r.p99.as_secs_f64();
                if cell.name == "epoch_lina" {
                    headline_epoch_p99 = Some(p99);
                }
                let beats_best = match &headline_best {
                    Some((_, best, _, _, _)) => p99 < *best,
                    None => true,
                };
                if cell.proactive && beats_best {
                    headline_best = Some((
                        cell.name.clone(),
                        p99,
                        out.replications,
                        out.evictions,
                        out.migrations,
                    ));
                }
                headline_interval = Some(interval);
            }
            table.row(&[
                cell.name.clone(),
                r.p99.to_string(),
                format!("{:.1}%", r.attainment * 100.0),
                format!("{:.0} req/s", r.goodput),
                out.replications.to_string(),
                out.evictions.to_string(),
                out.migrations.to_string(),
            ]);
        }
        report.table(table);
    }

    // Headline: the epoch arm's tail over the best proactive cell's at
    // the fastest swept drift (>= 1: continuous re-sharding wins).
    let epoch_p99 = headline_epoch_p99.expect("epoch arm swept at the headline drift");
    let (best_name, best_p99, repl, evict, migr) =
        headline_best.expect("a proactive cell swept at the headline drift");
    report.metric(
        "reshard_over_epoch_p99",
        epoch_p99 / best_p99.max(f64::MIN_POSITIVE),
    );
    report.text(format!(
        "headline: {best_name} p99 {:.1} ms vs epoch_lina {:.1} ms at \
         {headline_phases} drift phases ({repl} replications, {evict} \
         evictions, {migr} migrations)\n",
        best_p99 * 1e3,
        epoch_p99 * 1e3,
    ));

    // Degeneracy probe: a reduced trace re-run with an *armed but
    // inert* re-sharder (the control loop ticks and observes, the
    // policy never acts) must reproduce the plain run bit for bit.
    let interval = headline_interval.expect("headline cell swept");
    let probe_requests = (n_requests / 10).max(1_000);
    let probe_drift = (probe_requests / headline_phases).max(1);
    let probe_serve = serve_config(
        InferScheme::Baseline,
        None,
        probe_drift,
        rate,
        slo,
        probe_requests,
    );
    let plain = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(probe_serve.clone(), None),
    );
    let armed = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(probe_serve, Some(ReshardConfig::inert(interval))),
    );
    let identical = plain.report() == armed.report()
        && plain.tracker.records() == armed.tracker.records()
        && plain.replica_seconds == armed.replica_seconds
        && armed.replications == 0
        && armed.evictions == 0
        && armed.migrations == 0;
    report.metric(
        "inert_resharding_identical",
        if identical { 1.0 } else { 0.0 },
    );

    report.text(
        "reading the sweep: the static arm pins every rotation's hot\n\
         expert to one device, so its p99 carries that device's serial\n\
         expert queue through the whole run. The epoch arm (Lina +\n\
         periodic re-estimation) re-places well right after each\n\
         re-profile, but between epochs the estimate trails the drift and\n\
         every mis-estimated layer pays the blocking fine-tune\n\
         re-schedule plus a late weight swap. The proactive arm watches\n\
         per-expert load continuously: a hot expert gains a replica\n\
         within a couple of control ticks (dispatch splits its tokens\n\
         across the copies), cold replicas are evicted for free, and the\n\
         modeled PCIe transfer briefly stalls every replica on each\n\
         weight move — the transfer-cost sweep shows the amortization\n\
         holding until transfers cost several times the real reload.",
    );
    report
}
