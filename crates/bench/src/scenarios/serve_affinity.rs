//! Inter-layer expert affinity placement under locality-aware
//! all-to-all pricing: workload correlation × placement arm.
//!
//! The experiment: the gating model's `map_correlation` knob controls
//! how often a token's expert at layer `l` is determined by its expert
//! at layer `l-1` (a class that "moves with its group" follows the
//! canonical chain). The affinity arm profiles that structure offline
//! — [`AffinityStats`] counts per-layer-pair expert co-selections over
//! a held-out trace — and feeds it to the greedy
//! [`affinity_placement`] placer, which co-locates each expert with
//! the device sending it the most traffic. Every replica then serves
//! with locality-aware pricing: a token whose consecutive-layer
//! primary experts share a device skips the dispatch wire for that
//! hop, so co-located chains turn inter-layer all-to-alls into local
//! handoffs. The independent arm prices the same workload with the
//! same locality rule but the canonical one-expert-per-device layout,
//! which only rides self-chains — so the gap between the arms is
//! exactly the placement's doing. The headline metric
//! `affinity_over_independent_p99` divides the independent arm's p99
//! by the affinity arm's at the highest swept correlation (≥ 1:
//! affinity-aware placement does not lose the tail);
//! `uniform_layered_identical` re-runs a reduced trace with an *armed
//! but canonical* layered base (locality off) and demands a
//! bit-identical outcome.
//!
//! [`AffinityStats`]: lina_workload::AffinityStats
//! [`affinity_placement`]: lina_baselines::affinity_placement

use lina_baselines::{affinity_placement, InferScheme};
use lina_model::{ExpertPlacement, LayeredPlacement, MoeModelConfig};
use lina_serve::{
    serve_cluster, ArrivalProcess, BalancerKind, BatcherConfig, ClusterConfig, ClusterEngine,
    EstimatorSharing, FaultPlan, NetworkMode, ServeConfig,
};
use lina_simcore::{Report, SimDuration, Table};
use lina_workload::{AffinityStats, Mode, TokenSource, WorkloadSpec};

use crate::ScenarioCtx;

/// Replica servers behind the balancer.
const REPLICAS: usize = 2;

/// Experts per layer == devices per replica: every expert has exactly
/// one home under both arms, so locality rides are decided purely by
/// whether the placement aligned consecutive layers' chains (a
/// replicated expert never rides — the planner cannot know which copy
/// serves a token).
const EXPERTS: usize = 8;

/// Offered load as a fraction of the plain pool's capacity: enough
/// headroom that the arms differ on dispatch-byte tails, not on a
/// saturation death spiral.
const LOAD: f64 = 0.6;

/// Held-out profiling trace: batches × tokens-per-device fed to the
/// affinity collector before serving starts (the paper's offline
/// profiling stage, repurposed for co-selection counts).
const PROFILE_BATCHES: usize = 8;
const PROFILE_TOKENS: usize = 512;

fn serve_config(rate: f64, slo: SimDuration, n_requests: usize) -> ServeConfig {
    ServeConfig {
        // The base placement governs dispatch under the static scheme;
        // scheduling arms would re-place per batch and hide it.
        scheme: InferScheme::Baseline,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 16,
            max_wait: SimDuration::from_millis(2),
        },
        slo,
        n_requests,
        tokens_per_request: 256,
        // Uniform request sizes keep the capacity anchor exact.
        token_spread: 0.0,
        drift_period: None,
        reestimate_every: None,
        reestimate_window: 8,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0xAF11,
        perf: Default::default(),
    }
}

fn cluster_config(
    serve: ServeConfig,
    placement: Option<LayeredPlacement>,
    locality: bool,
) -> ClusterConfig {
    ClusterConfig {
        serve,
        replicas: REPLICAS,
        balancer: BalancerKind::RoundRobin,
        sharing: EstimatorSharing::Shared,
        faults: FaultPlan::none(),
        autoscale: None,
        resharding: None,
        placement,
        locality,
        health: lina_serve::HealthConfig::oracle(),
        hedging: None,
    }
}

/// Profiles per-layer-pair co-selection counts from a held-out trace
/// of the given workload (same gating model, disjoint seed from the
/// serving stream).
fn profile_affinity(spec: &WorkloadSpec, layers: usize) -> AffinityStats {
    let mut src = TokenSource::new(spec, 1, 0x0AFF_11E7);
    let batches: Vec<_> = (0..PROFILE_BATCHES)
        .map(|_| src.sample_batch(EXPERTS, PROFILE_TOKENS, Mode::Inference))
        .collect();
    AffinityStats::from_batches(&batches, layers, EXPERTS)
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let n_requests = match ctx.tier {
        crate::Tier::Full => (ctx.requests * 20).max(4_000),
        crate::Tier::Smoke => 1_500,
    };
    let model = MoeModelConfig::transformer_xl(6, EXPERTS);
    let layers = model.layers;
    let topo = crate::topo(EXPERTS);
    let devices = topo.devices();
    let cost = crate::infer_cost(model.clone());
    let base_spec = crate::workload_for(&model, EXPERTS, layers);

    // Anchor the offered load on the plain pool's capacity (canonical
    // placement, no locality pricing): every arm at every correlation
    // faces the same request rate, so only the dispatch pricing moves.
    let placeholder_slo = SimDuration::from_millis(60);
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &base_spec,
        cluster_config(serve_config(1.0, placeholder_slo, n_requests), None, false),
    );
    let cap = probe.capacity();
    let rate = LOAD * cap;
    let batch_service = 16.0 * REPLICAS as f64 / cap;
    let slo = SimDuration::from_secs_f64(3.0 * (batch_service + 0.002));
    report.metric_unit("cluster_capacity", cap, "req/s");
    report.text(format!(
        "{REPLICAS} replicas at {:.0}% of the plain pool's ~{cap:.0} req/s, \
         {n_requests} requests per cell, SLO {slo}\n",
        LOAD * 100.0,
    ));

    let canonical =
        LayeredPlacement::uniform(ExpertPlacement::one_per_device(EXPERTS, devices), layers);

    // Sweep: inter-layer map correlation x placement arm.
    let correlations = ctx.pick(&[0.0, 0.45, 0.9], &[0.0, 0.9]);
    let headline_corr = *correlations.last().expect("nonempty correlation sweep");
    let mut headline: Option<(f64, f64)> = None;
    for &corr in &correlations {
        let spec = spec_with(&base_spec, corr);
        let stats = profile_affinity(&spec, layers);
        let affinity = affinity_placement(&stats, layers, devices, 1);
        let mut table = Table::new(
            format!(
                "map correlation {corr:.2} (profiled affinity score {:.3})",
                stats.affinity_score()
            ),
            &["arm", "p99", "SLO att.", "goodput", "local frac"],
        );
        let arms: [(&str, Option<LayeredPlacement>, bool); 3] = [
            ("canonical_nolocal", None, false),
            ("independent", Some(canonical.clone()), true),
            ("affinity", Some(affinity), true),
        ];
        let mut arm_p99 = [0.0f64; 3];
        for (i, (name, placement, locality)) in arms.into_iter().enumerate() {
            let out = serve_cluster(
                &cost,
                &topo,
                &spec,
                cluster_config(serve_config(rate, slo, n_requests), placement, locality),
            );
            let r = out.report();
            let tag = format!("{name}_c{}", (corr * 100.0).round() as u32);
            report.metric_unit(format!("p99_ms_{tag}"), r.p99.as_millis_f64(), "ms");
            report.metric_unit(format!("attainment_{tag}"), r.attainment, "frac");
            report.metric_unit(
                format!("locality_fraction_{tag}"),
                out.locality_fraction(),
                "frac",
            );
            arm_p99[i] = r.p99.as_secs_f64();
            table.row(&[
                name.to_string(),
                r.p99.to_string(),
                format!("{:.1}%", r.attainment * 100.0),
                format!("{:.0} req/s", r.goodput),
                format!("{:.1}%", out.locality_fraction() * 100.0),
            ]);
        }
        if corr == headline_corr {
            headline = Some((arm_p99[1], arm_p99[2]));
        }
        report.table(table);
    }

    // Headline: the canonical layout's tail over the affinity layout's
    // under the same locality pricing at the strongest correlation
    // (>= 1: co-locating the profiled chains wins the tail).
    let (independent_p99, affinity_p99) = headline.expect("headline correlation swept");
    report.metric(
        "affinity_over_independent_p99",
        independent_p99 / affinity_p99.max(f64::MIN_POSITIVE),
    );
    report.text(format!(
        "headline: affinity p99 {:.1} ms vs independent {:.1} ms at \
         correlation {headline_corr:.2}\n",
        affinity_p99 * 1e3,
        independent_p99 * 1e3,
    ));

    // Degeneracy probe: a reduced trace re-run with an *armed but
    // canonical* layered base (uniform one-expert-per-device at every
    // layer, locality off) must reproduce the plain run bit for bit —
    // the armed code path prices through `plan_batch_layered` and a
    // non-zero plan-cache placement digest, yet nothing observable may
    // move.
    let probe_requests = (n_requests / 5).max(500);
    let probe_spec = spec_with(&base_spec, headline_corr);
    let probe_serve = serve_config(rate, slo, probe_requests);
    let plain = serve_cluster(
        &cost,
        &topo,
        &probe_spec,
        cluster_config(probe_serve.clone(), None, false),
    );
    let armed = serve_cluster(
        &cost,
        &topo,
        &probe_spec,
        cluster_config(probe_serve, Some(canonical), false),
    );
    let identical = plain.report() == armed.report()
        && plain.tracker.records() == armed.tracker.records()
        && plain.replica_seconds == armed.replica_seconds
        && armed.local_hops == 0
        && armed.routed_hops == 0;
    report.metric(
        "uniform_layered_identical",
        if identical { 1.0 } else { 0.0 },
    );

    report.text(
        "reading the sweep: the no-locality arm prices every dispatch\n\
         over the wire regardless of placement, so its tail is flat in\n\
         the correlation. Turning locality pricing on under the\n\
         canonical layout only removes the accidental rides (a token\n\
         whose consecutive experts happen to share a home). The\n\
         affinity arm aligns each layer's experts with the devices that\n\
         fed them in the profile, so as the map correlation grows the\n\
         co-selected chains collapse onto single devices, the local\n\
         fraction climbs, and the dispatch all-to-alls shed the bytes\n\
         the tail was queuing on. Even at zero map correlation the\n\
         arms do not fully tie: the gating model's class canonicals and\n\
         per-batch topic bursts correlate consecutive layers on their\n\
         own, and the profiler picks that residual structure up too —\n\
         the sweep isolates how much the *map* correlation adds on\n\
         top. The gain is workload structure, not a free lunch.",
    );
    report
}

/// The base workload with the swept inter-layer correlation.
fn spec_with(base: &WorkloadSpec, corr: f64) -> WorkloadSpec {
    let mut spec = base.clone();
    spec.map_correlation = corr;
    spec
}
