//! Serving under network contention: how much the solo (uncontended)
//! collective costing underestimates tail latency once a replica admits
//! overlapping batches.
//!
//! The serving engine's historical costing prices every batch's
//! all-to-alls as if they ran alone on the wire. With an admission
//! depth of two, a bursty arrival process keeps a second batch in
//! flight whenever the queue backs up — and the two batches' dispatch
//! and combine all-to-alls then share the same NICs. This sweep runs
//! the *same* MMPP trace at each offered load under both
//! [`NetworkMode`]s: `solo` keeps the closed-form pricing (overlap is
//! free), `contended` runs every in-flight batch's collectives on one
//! shared network so they fair-share bandwidth. The gap between the two
//! p99s is exactly the error a capacity plan based on solo costing
//! would make. The headline metric is `contended_over_solo_p99` at the
//! highest offered load (≥ 1: contention never makes the tail faster).

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{serve, ArrivalProcess, BatcherConfig, NetworkMode, ServeConfig, ServeEngine};
use lina_simcore::{Report, SimDuration, Table};

use crate::ScenarioCtx;

/// Admission depth: one batch executing plus one admitted behind it.
const MAX_INFLIGHT: usize = 2;

/// Bursty arrivals averaging `mean_rate`: the burst phase runs 5x the
/// calm phase's rate and holds for a quarter of the calm dwell, so
/// bursts reliably push the replica past one-batch-at-a-time.
fn bursty(mean_rate: f64) -> ArrivalProcess {
    let calm_rate = mean_rate / 1.8;
    ArrivalProcess::Mmpp {
        calm_rate,
        burst_rate: 5.0 * calm_rate,
        mean_calm: 0.4,
        mean_burst: 0.1,
    }
}

fn config(
    network: NetworkMode,
    arrival: ArrivalProcess,
    n_requests: usize,
    tokens_per_request: usize,
) -> ServeConfig {
    ServeConfig {
        scheme: InferScheme::Baseline,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival,
        batcher: BatcherConfig {
            max_batch_requests: 4,
            max_wait: SimDuration::from_millis(4),
        },
        slo: SimDuration::from_millis(60),
        n_requests,
        tokens_per_request,
        token_spread: 0.0,
        drift_period: None,
        reestimate_every: None,
        reestimate_window: 1,
        network,
        max_inflight: MAX_INFLIGHT,
        seed: 0xC0CE,
        perf: Default::default(),
    }
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let n_requests = match ctx.tier {
        crate::Tier::Full => ctx.requests,
        // Enough batches that the burst phase actually overlaps some.
        crate::Tier::Smoke => ctx.requests.max(24),
    };
    let tokens_per_request = match ctx.tier {
        crate::Tier::Full => 8192,
        crate::Tier::Smoke => 2048,
    };
    let experts = 8;
    let model = MoeModelConfig::transformer_xl(12, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor offered load on the solo one-batch-at-a-time capacity
    // (the number a solo-costed capacity plan would use).
    let probe = ServeEngine::new(
        &cost,
        &topo,
        &spec,
        config(
            NetworkMode::Solo,
            bursty(1.0),
            n_requests,
            tokens_per_request,
        ),
    );
    let capacity = probe.capacity();
    report.metric_unit("solo_capacity", capacity, "req/s");
    report.text(format!(
        "solo-costed capacity ~{capacity:.0} req/s; bursty MMPP arrivals \
         (burst phase 5x calm), admission depth {MAX_INFLIGHT}; \
         {n_requests} requests per point\n"
    ));

    let loads = ctx.pick(&[0.4, 0.8, 1.0, 1.2], &[0.6, 1.2]);
    let mut headline = f64::NAN;
    for &load in &loads {
        let rate = load * capacity;
        let mut table = Table::new(
            format!(
                "offered load {:.0}% of solo capacity ({rate:.0} req/s)",
                load * 100.0
            ),
            &["network", "p50", "p99", "mean queue", "SLO att."],
        );
        let mut p99s = Vec::new();
        for network in [NetworkMode::Solo, NetworkMode::Contended] {
            let out = serve(
                &cost,
                &topo,
                &spec,
                config(network, bursty(rate), n_requests, tokens_per_request),
            );
            let r = out.report();
            p99s.push(r.p99.as_secs_f64());
            table.row(&[
                network.name().into(),
                r.p50.to_string(),
                r.p99.to_string(),
                r.mean_queue_delay.to_string(),
                format!("{:.1}%", r.attainment * 100.0),
            ]);
        }
        report.table(table);
        let ratio = p99s[1] / p99s[0].max(f64::MIN_POSITIVE);
        report.metric_unit(
            format!("contended_over_solo_p99_load{:.0}", load * 100.0),
            ratio,
            "x",
        );
        headline = ratio;
    }
    // The last sweep point is the highest offered load.
    report.metric_unit("contended_over_solo_p99", headline, "x");
    report.text(format!(
        "reading the sweep: at low load batches rarely overlap and both\n\
         pricings agree; past saturation the backlog keeps two batches in\n\
         flight, their all-to-alls fair-share the NICs, and the solo costing\n\
         underestimates p99 by {:.1}% at the highest load.",
        (headline - 1.0) * 100.0
    ));
    report
}
