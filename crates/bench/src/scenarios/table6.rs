//! Table 6: generalizability of the popularity estimation across tasks
//! and datasets (paper: normalized 95%ile inference time 1.04-1.11 and
//! estimation accuracy 62.3-68.8% with l = 3).

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::{Report, Table};
use lina_workload::WorkloadSpec;

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let experts = 16usize;
    let all_cases: Vec<(&str, &str, WorkloadSpec, MoeModelConfig, &str, &str)> = vec![
        (
            "sentiment",
            "IMDB reviews",
            WorkloadSpec::imdb(experts, 12),
            MoeModelConfig::bert_large(experts),
            "1.08",
            "64.4%",
        ),
        (
            "sentiment",
            "Twitter",
            WorkloadSpec::twitter(experts, 12),
            MoeModelConfig::bert_large(experts),
            "1.11",
            "62.3%",
        ),
        (
            "translation",
            "WMT French",
            WorkloadSpec::wmt_fr(experts, 12),
            MoeModelConfig::t5(experts),
            "1.04",
            "68.8%",
        ),
        (
            "translation",
            "WMT Russian",
            WorkloadSpec::wmt_ru(experts, 12),
            MoeModelConfig::t5(experts),
            "1.08",
            "62.5%",
        ),
    ];
    // Smoke keeps one case per task family.
    let cases: Vec<_> = match ctx.tier {
        crate::Tier::Full => all_cases,
        crate::Tier::Smoke => all_cases.into_iter().step_by(2).collect(),
    };
    let mut table = Table::new(
        "Lina vs Ideal per task",
        &[
            "task",
            "dataset",
            "model",
            "norm p95",
            "accuracy",
            "paper p95",
            "paper acc",
        ],
    );
    for (task, dataset, spec, model, pp, pa) in cases {
        let topo = crate::topo(experts);
        let cost = crate::infer_cost(model.clone());
        let setup = ctx.inference_setup(&spec, experts, 3);
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&setup.scheduler),
                &setup.batches,
            )
        };
        let mut ideal = run(InferScheme::Ideal);
        let mut lina = run(InferScheme::Lina);
        report.metric_unit(
            format!("{}_accuracy", crate::slug(dataset)),
            lina.accuracy().unwrap_or(0.0),
            "frac",
        );
        table.row(&[
            task.into(),
            dataset.into(),
            model.name.clone(),
            format!("{:.2}", lina.totals.p95() / ideal.totals.p95()),
            crate::format_rate(lina.accuracy()),
            pp.into(),
            pa.into(),
        ]);
    }
    report.table(table);
    report.text(
        "paper's takeaway: the estimation approach transfers across tasks; it\n\
         is profiled per task, so accuracy stays in a consistent band.",
    );
    report
}
