//! Figures 11 & 12: MoE-layer forward/backward speedup of Lina over
//! Baseline (paper: ~1.84x/2.41x at 2 experts, ~1.89x/2.32x at 8;
//! backward gains exceed forward because the baseline's backward also
//! suffers allreduce interference).

use lina_baselines::TrainScheme;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_secs, format_speedup, geomean, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let steps = ctx.steps;
    let mut table = Table::new(
        "mean MoE-layer time (gate..combine) and Lina's speedup",
        &[
            "model", "experts", "fwd base", "fwd lina", "fwd x", "bwd base", "bwd lina", "bwd x",
        ],
    );
    let mut fwd_by_e: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut bwd_by_e: Vec<(usize, Vec<f64>)> = Vec::new();
    for experts in ctx.pick(&[2usize, 4, 8, 16], &[16]) {
        let mut fwd_speedups = Vec::new();
        let mut bwd_speedups = Vec::new();
        for model in ctx.training_models(experts) {
            let topo = crate::topo(experts);
            let cost = crate::train_cost(model.clone());
            let batch = crate::train_batch(&model);
            let layer_means = |scheme| {
                let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 121);
                let f = ms
                    .iter()
                    .map(|m| m.fwd_layer_time.as_secs_f64())
                    .sum::<f64>()
                    / ms.len() as f64;
                let b = ms
                    .iter()
                    .map(|m| m.bwd_layer_time.as_secs_f64())
                    .sum::<f64>()
                    / ms.len() as f64;
                (f, b)
            };
            let (fb, bb) = layer_means(TrainScheme::Baseline);
            let (fl, bl) = layer_means(crate::lina_scheme(&model));
            table.row(&[
                model.name.clone(),
                experts.to_string(),
                format_secs(fb),
                format_secs(fl),
                format_speedup(fb / fl),
                format_secs(bb),
                format_secs(bl),
                format_speedup(bb / bl),
            ]);
            fwd_speedups.push(fb / fl);
            bwd_speedups.push(bb / bl);
        }
        fwd_by_e.push((experts, fwd_speedups));
        bwd_by_e.push((experts, bwd_speedups));
    }
    report.table(table);
    let mut avg = Table::new(
        "average MoE-layer speedup",
        &["experts", "forward", "backward"],
    );
    for ((e, f), (_, b)) in fwd_by_e.iter().zip(&bwd_by_e) {
        report.metric_unit(format!("fwd_layer_speedup_{e}e"), geomean(f), "x");
        report.metric_unit(format!("bwd_layer_speedup_{e}e"), geomean(b), "x");
        avg.row(&[
            e.to_string(),
            format_speedup(geomean(f)),
            format_speedup(geomean(b)),
        ]);
    }
    report.table(avg);
    report.text(
        "paper: forward/backward 1.84x/2.41x (2 experts) and 1.89x/2.32x (8);\n\
         backward exceeds forward because allreduce interference only exists\n\
         in the backward pass.",
    );
    report
}
