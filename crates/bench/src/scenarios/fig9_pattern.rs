//! Figure 9: the cross-layer expert-selection pattern — the fraction of
//! tokens that, having shared an expert at layer i, select one of their
//! group's top-k experts at layer i+1 (paper: 41.94% at k=1, 54.59% at
//! k=2, increasing with depth).

use lina_simcore::{format_pct, Report, Table};
use lina_workload::{mean_pattern_ratio, pattern_ratio, Mode, TokenSource, WorkloadSpec};

use crate::{slug, ScenarioCtx};

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    for (name, spec) in [
        ("Transformer-XL / enwik8", WorkloadSpec::enwik8(12, 12)),
        ("BERT-Large / WMT En-De", WorkloadSpec::wmt_en_de(12, 12)),
    ] {
        let mut src = TokenSource::new(&spec, 1, 909);
        let batch = src.sample_batch(12, 4096, Mode::Inference);
        let mut table = Table::new(
            format!("{name} (12 experts, 12 layers)"),
            &["layer i", "k=1", "k=2", "k=3"],
        );
        for layer in 0..11 {
            table.row(&[
                format!("{layer}"),
                format_pct(pattern_ratio(&batch, layer, 1)),
                format_pct(pattern_ratio(&batch, layer, 2)),
                format_pct(pattern_ratio(&batch, layer, 3)),
            ]);
        }
        report.table(table);
        report.text(format!(
            "mean over layers: k=1 {}, k=2 {}, k=3 {}\n",
            format_pct(mean_pattern_ratio(&batch, 1)),
            format_pct(mean_pattern_ratio(&batch, 2)),
            format_pct(mean_pattern_ratio(&batch, 3)),
        ));
        let model_slug = slug(name.split(" / ").next().unwrap_or(name));
        report.metric_unit(
            format!("{model_slug}_pattern_k1"),
            mean_pattern_ratio(&batch, 1),
            "frac",
        );
        report.metric_unit(
            format!("{model_slug}_pattern_k2"),
            mean_pattern_ratio(&batch, 2),
            "frac",
        );
    }
    report.text("paper: 41.94% at k=1 and 54.59% at k=2, higher in deeper layers.");
    report
}
