//! The experiment implementations behind the registry — one module per
//! table/figure of the paper (plus the serving load sweep), each
//! exposing `run(&ScenarioCtx) -> Report`.
//!
//! A scenario never prints and never reads the environment: all sizing
//! comes from the [`crate::ScenarioCtx`], all output goes into the
//! returned [`lina_simcore::Report`]. At `Full` tier the rendered
//! report is the historical per-binary stdout; at `Smoke` tier sweep
//! grids shrink to a seconds-scale subset.

pub mod fig10_step_speedup;
pub mod fig11_12_layer_speedup;
pub mod fig13_a2a_speedup;
pub mod fig14_ablation;
pub mod fig15_partition_size;
pub mod fig16_inference;
pub mod fig17_layer_time;
pub mod fig18_a2a_tail;
pub mod fig19_accuracy;
pub mod fig2_timeline;
pub mod fig3_slowdown_cdf;
pub mod fig4_expert_sweep;
pub mod fig5_backward_timeline;
pub mod fig6_popularity;
pub mod fig7_schedules;
pub mod fig8_microops;
pub mod fig9_pattern;
pub mod perf_microbench;
pub mod serve_affinity;
pub mod serve_autoscale;
pub mod serve_cluster;
pub mod serve_contention;
pub mod serve_faults;
pub mod serve_gray;
pub mod serve_load_sweep;
pub mod serve_resharding;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

/// Arithmetic mean, 0.0 for an empty slice.
pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
