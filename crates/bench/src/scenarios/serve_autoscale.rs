//! Elastic autoscaling frontier: trace shape × scaling policy × SLO
//! target on a diurnal / flash-crowd trace, reported as cost
//! (replica-seconds) versus SLO attainment.
//!
//! The experiment: a sinusoidal diurnal envelope swings the offered
//! load between 0.5x and 3.5x one replica's capacity (flash-crowd
//! overlays spike it to 7x), so the trace's *mean* rate already
//! exceeds a minimally provisioned pool while its *peak* needs triple
//! that. Two static baselines bracket the frontier — `static_min`
//! (melts at every crest) and `static_max` (pays for the peak all
//! night) — and two autoscaling policies walk it: `reactive`
//! (queue-depth thresholds with hysteresis and a cooldown) and
//! `predictive` (a least-squares forecast over an observation window).
//! Scale-up pays the modeled weight-reload provisioning cost before a
//! new replica takes traffic; scale-down drains the victim before
//! decommissioning it. The headline metric is
//! `frontier_dominates_static_min`: 1 iff some autoscaled policy
//! strictly beats `static_min` on SLO attainment at no more pool cost
//! than `static_max` — elasticity must buy tail latency without
//! peak-provisioned spend. A degeneracy probe re-runs the fixed pool
//! with an *armed but inert* autoscaler and demands a bit-identical
//! outcome.

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{
    serve_cluster, ArrivalProcess, AutoscaleConfig, AutoscalePolicyKind, BalancerKind,
    BatcherConfig, ClusterConfig, ClusterEngine, EstimatorSharing, FaultPlan, NetworkMode,
    ServeConfig,
};
use lina_simcore::{Report, SimDuration, Table};

use crate::ScenarioCtx;

/// The minimally provisioned pool: the `static_min` baseline and every
/// autoscaled run's starting size.
const MIN_REPLICAS: usize = 2;

/// The peak-provisioned pool: the `static_max` baseline and the
/// autoscalers' hardware budget.
const MAX_REPLICAS: usize = 6;

/// Autoscalers may drain below `static_min` in the trough.
const ELASTIC_FLOOR: usize = 1;

/// Diurnal base rate in units of one replica's capacity: the mean
/// demand alone overruns `static_min`'s aggregate capacity.
const BASE_LOAD: f64 = 2.0;

/// Relative swing of the diurnal envelope: the rate ranges over
/// 0.5x–3.5x one replica's capacity before any flash crowd.
const AMPLITUDE: f64 = 0.75;

/// Whole diurnal cycles in the trace.
const PERIODS: f64 = 3.0;

/// Mean calm gap between flash-crowd onsets, as a fraction of one
/// period.
const FLASH_EVERY_FRAC: f64 = 1.0 / 3.0;

/// Mean flash-crowd dwell, as a fraction of one period.
const FLASH_MEAN_FRAC: f64 = 1.0 / 20.0;

/// Rate multiplier while a flash crowd is active.
const FLASH_MULT: f64 = 2.0;

/// Control-loop evaluations per diurnal period.
const TICKS_PER_PERIOD: f64 = 120.0;

fn serve_config(arrival: ArrivalProcess, slo: SimDuration, n_requests: usize) -> ServeConfig {
    ServeConfig {
        // Static placement without estimation or re-profiling: the
        // transient under study is the pool resizing, not placement.
        scheme: InferScheme::Baseline,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival,
        // Large batches of small requests: the trace needs 100k+
        // requests to cover whole diurnal cycles, and batch count —
        // not token count — is what the simulator's wall clock buys.
        batcher: BatcherConfig {
            max_batch_requests: 64,
            max_wait: SimDuration::from_millis(2),
        },
        slo,
        n_requests,
        tokens_per_request: 4,
        // Uniform request sizes keep the capacity anchor exact.
        token_spread: 0.0,
        drift_period: None,
        reestimate_every: None,
        reestimate_window: 8,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0xD1A1,
        perf: Default::default(),
    }
}

fn cluster_config(
    serve: ServeConfig,
    replicas: usize,
    autoscale: Option<AutoscaleConfig>,
) -> ClusterConfig {
    ClusterConfig {
        serve,
        replicas,
        balancer: BalancerKind::JoinShortestQueue,
        sharing: EstimatorSharing::Shared,
        faults: FaultPlan::none(),
        autoscale,
        resharding: None,
        placement: None,
        locality: false,
        health: lina_serve::HealthConfig::oracle(),
        hedging: None,
    }
}

/// One cell of the policy sweep: a label, the starting pool, and the
/// autoscaler (if any).
struct PolicyCell {
    name: &'static str,
    replicas: usize,
    autoscale: Option<AutoscaleConfig>,
    elastic: bool,
}

fn policy_cells(interval: SimDuration) -> Vec<PolicyCell> {
    let cooldown = interval * 3;
    let bounds = |policy| AutoscaleConfig {
        policy,
        interval,
        cooldown,
        min_replicas: ELASTIC_FLOOR,
        max_replicas: MAX_REPLICAS,
    };
    vec![
        PolicyCell {
            name: "static_min",
            replicas: MIN_REPLICAS,
            autoscale: None,
            elastic: false,
        },
        PolicyCell {
            name: "static_max",
            replicas: MAX_REPLICAS,
            autoscale: None,
            elastic: false,
        },
        PolicyCell {
            name: "reactive",
            replicas: MIN_REPLICAS,
            autoscale: Some(bounds(AutoscalePolicyKind::Reactive {
                up_threshold: 1.25,
                down_threshold: 0.3,
            })),
            elastic: true,
        },
        PolicyCell {
            name: "predictive",
            replicas: MIN_REPLICAS,
            autoscale: Some(bounds(AutoscalePolicyKind::Predictive {
                target_util: 0.6,
                window: 24,
            })),
            elastic: true,
        },
    ]
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    // The acceptance bar is a >= 100k-request trace even at smoke tier:
    // the subsystem's point is whole diurnal cycles, and a short trace
    // never leaves the first crest.
    let n_requests = match ctx.tier {
        crate::Tier::Full => (ctx.requests * 500).max(100_000),
        crate::Tier::Smoke => 100_000,
    };
    let experts = 8;
    let model = MoeModelConfig::transformer_xl(6, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor every knob on one replica's sustainable throughput so the
    // crest melts `static_min` at any tier or hardware profile.
    let placeholder = ArrivalProcess::Poisson { rate: 1.0 };
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve_config(placeholder, SimDuration::from_millis(60), n_requests),
            1,
            None,
        ),
    );
    let cap1 = probe.capacity();
    let batch_service = 64.0 / cap1;
    report.metric_unit("replica_capacity", cap1, "req/s");

    // SLO targets as multiples of a full batch's wait + service time.
    let slo_mults = ctx.pick(&[2.0, 4.0], &[2.0]);
    let shapes: Vec<(&'static str, f64)> = ctx.pick(
        &[("diurnal", 1.0), ("flash", FLASH_MULT)],
        &[("flash", FLASH_MULT)],
    );

    let base_rate = BASE_LOAD * cap1;
    let headline_shape = *shapes.last().expect("nonempty shape sweep");
    let headline_slo = slo_mults[0];
    let mut headline_cells: Vec<(&'static str, bool, f64, f64)> = Vec::new();
    let mut headline_interval = None;
    for &(shape, flash_mult) in &shapes {
        // The overlay's dwell-weighted multiplier depends only on the
        // period *fractions*, so the mean rate — and from it the span
        // and period — is known before the period itself.
        let overlay = if flash_mult > 1.0 {
            (FLASH_EVERY_FRAC + FLASH_MEAN_FRAC * flash_mult) / (FLASH_EVERY_FRAC + FLASH_MEAN_FRAC)
        } else {
            1.0
        };
        let mean_rate = base_rate * overlay;
        let span = n_requests as f64 / mean_rate;
        let period = span / PERIODS;
        let interval = SimDuration::from_secs_f64(period / TICKS_PER_PERIOD);
        let arrival = ArrivalProcess::Diurnal {
            base_rate,
            amplitude: AMPLITUDE,
            period: SimDuration::from_secs_f64(period),
            flash_every: period * FLASH_EVERY_FRAC,
            flash_mean: period * FLASH_MEAN_FRAC,
            flash_mult,
        };
        report.text(format!(
            "{shape}: mean {mean_rate:.0} req/s ({:.2}x one replica) over \
             {PERIODS:.0} periods of {}; pool {MIN_REPLICAS}-{MAX_REPLICAS} \
             replicas, control tick every {interval}\n",
            mean_rate / cap1,
            SimDuration::from_secs_f64(period),
        ));
        for &slo_mult in &slo_mults {
            let slo = SimDuration::from_secs_f64(slo_mult * (batch_service + 0.002));
            let serve = serve_config(arrival.clone(), slo, n_requests);
            let mut table = Table::new(
                format!("{shape} trace, SLO {slo} ({slo_mult:.0}x batch time)"),
                &[
                    "policy", "p99", "SLO att.", "goodput", "cost", "peak", "ups", "downs",
                ],
            );
            for cell in policy_cells(interval) {
                let out = serve_cluster(
                    &cost,
                    &topo,
                    &spec,
                    cluster_config(serve.clone(), cell.replicas, cell.autoscale.clone()),
                );
                let r = out.report();
                let tag = format!("{}_{shape}_slo{slo_mult:.0}x", cell.name);
                report.metric_unit(format!("attainment_{tag}"), r.attainment, "frac");
                report.metric_unit(format!("p99_ms_{tag}"), r.p99.as_millis_f64(), "ms");
                report.metric_unit(format!("cost_rs_{tag}"), out.replica_seconds, "replica-s");
                report.metric(format!("peak_replicas_{tag}"), out.peak_replicas as f64);
                if shape == headline_shape.0 && slo_mult == headline_slo {
                    headline_cells.push((
                        cell.name,
                        cell.elastic,
                        r.attainment,
                        out.replica_seconds,
                    ));
                    headline_interval = Some(interval);
                }
                table.row(&[
                    cell.name.into(),
                    r.p99.to_string(),
                    format!("{:.1}%", r.attainment * 100.0),
                    format!("{:.0} req/s", r.goodput),
                    format!("{:.1} replica-s", out.replica_seconds),
                    out.peak_replicas.to_string(),
                    out.scale_ups.to_string(),
                    out.scale_downs.to_string(),
                ]);
            }
            report.table(table);
        }
    }

    // Headline: the frontier at the default cell. An autoscaled policy
    // "dominates static_min" when it strictly beats it on attainment
    // while spending no more than static_max — elasticity has to buy
    // tail latency without peak-provisioned cost.
    let anchor = |name: &str| {
        headline_cells
            .iter()
            .find(|&&(n, _, _, _)| n == name)
            .map(|&(_, _, att, cost_rs)| (att, cost_rs))
            .expect("baseline swept at the headline cell")
    };
    let (min_att, _) = anchor("static_min");
    let (max_att, max_cost) = anchor("static_max");
    let dominating: Vec<_> = headline_cells
        .iter()
        .filter(|&&(_, elastic, att, cost_rs)| elastic && att > min_att && cost_rs <= max_cost)
        .collect();
    report.metric(
        "frontier_dominates_static_min",
        if dominating.is_empty() { 0.0 } else { 1.0 },
    );
    let best = dominating.iter().max_by(|a, b| {
        (a.2, -a.3)
            .partial_cmp(&(b.2, -b.3))
            .expect("finite frontier coordinates")
    });
    if let Some(&&(name, _, att, cost_rs)) = best {
        report.metric(
            "best_frontier_cost_savings_frac",
            1.0 - cost_rs / max_cost.max(f64::MIN_POSITIVE),
        );
        report.text(format!(
            "frontier: {name} attains {:.1}% (static_min {:.1}%, static_max \
             {:.1}%) at {cost_rs:.1} replica-s, {:.0}% of static_max's \
             {max_cost:.1}\n",
            att * 100.0,
            min_att * 100.0,
            max_att * 100.0,
            100.0 * cost_rs / max_cost.max(f64::MIN_POSITIVE),
        ));
    }

    // Degeneracy probe: a fixed pool re-run with an *armed but inert*
    // autoscaler (thresholds no observation can cross) must reproduce
    // the plain run bit for bit — arming the control loop alone may
    // not perturb the simulation.
    let interval = headline_interval.expect("headline cell swept");
    let probe_requests = (n_requests / 10).max(1_000);
    let probe_slo = SimDuration::from_secs_f64(headline_slo * (batch_service + 0.002));
    let probe_arrival = ArrivalProcess::Diurnal {
        base_rate,
        amplitude: AMPLITUDE,
        period: SimDuration::from_secs_f64(probe_requests as f64 / base_rate / PERIODS),
        flash_every: 0.0,
        flash_mean: 0.0,
        flash_mult: 1.0,
    };
    let probe_serve = serve_config(probe_arrival, probe_slo, probe_requests);
    let plain = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(probe_serve.clone(), MIN_REPLICAS, None),
    );
    let armed = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(
            probe_serve,
            MIN_REPLICAS,
            Some(AutoscaleConfig::inert(MIN_REPLICAS, interval)),
        ),
    );
    let identical = plain.report() == armed.report()
        && plain.tracker.records() == armed.tracker.records()
        && plain.replica_seconds == armed.replica_seconds
        && armed.scale_ups == 0
        && armed.scale_downs == 0;
    report.metric(
        "inert_autoscaler_identical",
        if identical { 1.0 } else { 0.0 },
    );

    report.text(
        "reading the sweep: the diurnal mean alone (2.26x one replica with\n\
         flash crowds) overruns static_min's two replicas, so its backlog\n\
         compounds through every crest and attainment collapses; static_max\n\
         rides out even flash crowds but pays six replicas around the clock.\n\
         The autoscalers start from the same two replicas, pay a modeled\n\
         weight-reload delay on every scale-up, and drain before every\n\
         scale-down: reactive follows the queue up the crest a few control\n\
         ticks late, predictive extrapolates the ramp and commissions ahead\n\
         of it. Cost is the integral of the commissioned pool over the run\n\
         (replica-seconds) — the frontier is attainment bought per\n\
         replica-second, and the headline asserts some elastic policy beats\n\
         static_min's attainment without exceeding static_max's spend.",
    );
    report
}
