//! Figure 18: tail (95%ile) all-to-all time per layer in 16-expert
//! inference, Baseline vs Lina (paper: average 1.96x, max 2.50x
//! improvement — the direct indicator of balanced transfer sizes).

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batch, InferenceConfig};
use lina_simcore::{format_secs, format_speedup, Report, Samples, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let models = ctx.pick(
        &[
            MoeModelConfig::transformer_xl(12, 16),
            MoeModelConfig::bert_large(16),
        ],
        &[MoeModelConfig::transformer_xl(12, 16)],
    );
    for model in models {
        let experts = 16;
        let topo = crate::topo(experts);
        let cost = crate::infer_cost(model.clone());
        let spec = crate::workload_for(&model, experts, model.layers);
        let setup = ctx.inference_setup(&spec, experts, 3);
        // Per-layer p95 across batches.
        let layer_p95 = |scheme| -> Vec<f64> {
            let mut per_layer: Vec<Samples> = (0..model.layers).map(|_| Samples::new()).collect();
            for batch in &setup.batches {
                let r = run_inference_batch(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    batch,
                );
                for (l, &t) in r.a2a_times.iter().enumerate() {
                    per_layer[l].push_duration(t);
                }
            }
            per_layer.iter_mut().map(|s| s.p95()).collect()
        };
        let base = layer_p95(InferScheme::Baseline);
        let lina = layer_p95(InferScheme::Lina);
        let mut table = Table::new(
            format!("{} — per-layer all-to-all p95", model.name),
            &["layer", "baseline", "lina", "improvement"],
        );
        let mut ratios = Vec::new();
        for l in 0..model.layers {
            let r = if lina[l] > 0.0 {
                base[l] / lina[l]
            } else {
                f64::INFINITY
            };
            ratios.push(r);
            table.row(&[
                l.to_string(),
                format_secs(base[l]),
                format_secs(lina[l]),
                format_speedup(r.min(99.0)),
            ]);
        }
        report.table(table);
        let finite: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
        let avg = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
        let max = finite.iter().copied().fold(0.0, f64::max);
        report.metric_unit(
            format!("{}_a2a_tail_improvement_avg", crate::slug(&model.name)),
            avg,
            "x",
        );
        report.metric_unit(
            format!("{}_a2a_tail_improvement_max", crate::slug(&model.name)),
            max,
            "x",
        );
        report.text(format!("average improvement {avg:.2}x, max {max:.2}x\n"));
    }
    report.text("paper: average 1.96x and maximum 2.50x over Baseline.");
    report.text("note: Lina starts scheduling at layer l=3; earlier layers match Baseline.");
    report
}
