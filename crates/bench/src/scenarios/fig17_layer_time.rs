//! Figure 17: 95th-percentile MoE-layer time of Baseline vs Lina at
//! 8 and 16 experts (paper: reduced 1.87x/1.77x for Transformer-XL and
//! 1.58x/1.81x for BERT-Large).

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::{format_secs, format_speedup, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let mut table = Table::new(
        "per-layer (gate..combine) p95 across batches",
        &[
            "model",
            "experts",
            "baseline p95",
            "lina p95",
            "reduction",
            "paper",
        ],
    );
    let paper = [
        ("Transformer-XL", 8usize, "1.87x"),
        ("Transformer-XL", 16, "1.77x"),
        ("BERT-Large", 8, "1.58x"),
        ("BERT-Large", 16, "1.81x"),
    ];
    let ctors: Vec<fn(usize, usize) -> MoeModelConfig> = ctx.pick(
        &[
            MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig,
            |_l, e| MoeModelConfig::bert_large(e),
        ],
        &[MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig],
    );
    for model_ctor in ctors {
        for experts in ctx.pick(&[8usize, 16], &[16]) {
            let model = model_ctor(12, experts);
            let topo = crate::topo(experts);
            let cost = crate::infer_cost(model.clone());
            let spec = crate::workload_for(&model, experts, model.layers);
            let setup = ctx.inference_setup(&spec, experts, 3);
            let p95 = |scheme| {
                let mut s = run_inference_batches(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    &setup.batches,
                );
                s.layer_times.p95()
            };
            let base = p95(InferScheme::Baseline);
            let lina = p95(InferScheme::Lina);
            let reduction = if lina > 0.0 { base / lina } else { 0.0 };
            let pref = paper
                .iter()
                .find(|(m, e, _)| model.name.starts_with(m) && *e == experts)
                .map(|(_, _, p)| *p)
                .unwrap_or("-");
            report.metric_unit(
                format!(
                    "{}_p95_layer_reduction_{experts}e",
                    crate::slug(&model.name)
                ),
                reduction,
                "x",
            );
            table.row(&[
                model.name.clone(),
                experts.to_string(),
                format_secs(base),
                format_secs(lina),
                format_speedup(reduction),
                pref.into(),
            ]);
        }
    }
    report.table(table);
    report
}
