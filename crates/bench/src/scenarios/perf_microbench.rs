//! Simulator-throughput microbenchmark: how many simulated requests
//! per wall-clock second the serving event loop pushes, before and
//! after the performance refactor.
//!
//! The experiment: one fixed request trace (pre-generated outside the
//! timed region, so arrival generation is not measured) is replayed
//! through [`ClusterEngine::run_trace`] twice over the identical
//! cluster — once with [`PerfConfig::reference`] (binary-heap event
//! queues, no plan cache, one thread: the pre-refactor behaviour) and
//! once with [`PerfConfig::fast`] (calendar queue, plan cache,
//! shard-per-replica threads). The headline metric is the speedup in
//! simulated-requests-per-wall-second; the two runs must also produce
//! bit-identical outcomes (`identical` = 1), which is the whole
//! contract of the perf knobs.
//!
//! Unlike every other scenario, the wall-clock metrics here are *not*
//! deterministic — `scenarios_smoke` exempts this scenario from its
//! repeated-run render-equality assertions, and `regression_check`
//! reports its metrics informationally instead of gating on them.

use std::time::Instant;

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{
    ArrivalProcess, BalancerKind, BatcherConfig, ClusterConfig, ClusterEngine, ClusterOutcome,
    EstimatorSharing, FaultPlan, NetworkMode, PerfConfig, ServeConfig,
};
use lina_simcore::{Report, SimDuration, Table};

use crate::ScenarioCtx;

/// Replica servers behind the round-robin balancer (round-robin keeps
/// the scenario shardable, so the thread knob can engage).
const REPLICAS: usize = 4;

/// Offered load as a fraction of aggregate capacity: high enough that
/// batches fill, low enough that the queue drains.
const LOAD: f64 = 0.7;

fn serve_config(rate: f64, n_requests: usize, perf: PerfConfig) -> ServeConfig {
    ServeConfig {
        // The Ideal scheme plans from the batch shape alone, so a
        // steady-state trace revisits a handful of plan-cache keys —
        // the hot path the cache is built for.
        scheme: InferScheme::Ideal,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 2,
            max_wait: SimDuration::from_millis(2),
        },
        slo: SimDuration::from_millis(60),
        n_requests,
        tokens_per_request: 32,
        token_spread: 0.0,
        drift_period: None,
        reestimate_every: None,
        reestimate_window: 1,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0xFA57,
        perf,
    }
}

fn cluster_config(serve: ServeConfig) -> ClusterConfig {
    ClusterConfig {
        serve,
        replicas: REPLICAS,
        balancer: BalancerKind::RoundRobin,
        sharing: EstimatorSharing::Shared,
        faults: FaultPlan::none(),
        autoscale: None,
        resharding: None,
        placement: None,
        locality: false,
        health: lina_serve::HealthConfig::oracle(),
        hedging: None,
    }
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let n_requests = match ctx.tier {
        crate::Tier::Full => (ctx.requests * 250).max(4_000),
        crate::Tier::Smoke => ctx.requests * 300,
    };
    let experts = 8;
    let model = MoeModelConfig::transformer_xl(6, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor the rate and pre-generate the trace once, outside the
    // timed region: both runs replay the identical request sequence.
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(serve_config(1.0, n_requests, PerfConfig::reference())),
    );
    let rate = LOAD * probe.capacity();
    let trace = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(serve_config(rate, n_requests, PerfConfig::reference())),
    )
    .engine()
    .generate_requests();

    let time_run = |perf: PerfConfig| -> (ClusterOutcome, f64) {
        let engine = ClusterEngine::new(
            &cost,
            &topo,
            &spec,
            cluster_config(serve_config(rate, n_requests, perf)),
        );
        // Copy the trace outside the timed region: the run consumes it,
        // and the measurement is the event loop, not trace duplication.
        let replay = trace.clone();
        let t0 = Instant::now();
        let out = engine.run_trace(replay);
        (out, t0.elapsed().as_secs_f64())
    };

    let reference = PerfConfig::reference();
    let fast = PerfConfig::fast();
    let (base_out, base_secs) = time_run(reference);
    let (fast_out, fast_secs) = time_run(fast);

    // The entire point of the perf knobs: same results, less time.
    let identical = base_out.tracker.records() == fast_out.tracker.records()
        && base_out.tracker.depth_timeline() == fast_out.tracker.depth_timeline()
        && base_out.report() == fast_out.report()
        && base_out.requests_per_replica == fast_out.requests_per_replica
        && base_out.batches == fast_out.batches;

    let throughput = |secs: f64| n_requests as f64 / secs.max(1e-9);
    let base_rps = throughput(base_secs);
    let fast_rps = throughput(fast_secs);
    let speedup = fast_rps / base_rps.max(1e-9);

    report.text(format!(
        "{n_requests} requests, {REPLICAS} replicas at {:.0}% load \
         ({rate:.0} req/s offered), Ideal scheme, fixed pre-generated \
         trace replayed under both configurations\n",
        LOAD * 100.0
    ));
    let mut table = Table::new(
        "simulator throughput (simulated requests per wall second)",
        &[
            "config", "queue", "cache", "threads", "wall", "req/s", "speedup",
        ],
    );
    for (name, perf, secs, rps) in [
        ("reference", reference, base_secs, base_rps),
        ("fast", fast, fast_secs, fast_rps),
    ] {
        table.row(&[
            name.into(),
            perf.queue.name().into(),
            if perf.plan_cache { "on" } else { "off" }.into(),
            perf.shard_threads.to_string(),
            format!("{:.0} ms", secs * 1e3),
            format!("{rps:.0}"),
            format!("{:.1}x", rps / base_rps.max(1e-9)),
        ]);
    }
    report.table(table);

    report.metric("requests", n_requests as f64);
    report.metric("replicas", REPLICAS as f64);
    report.metric("shard_threads", fast.shard_threads as f64);
    report.metric_unit("reference_wall_ms", base_secs * 1e3, "ms");
    report.metric_unit("fast_wall_ms", fast_secs * 1e3, "ms");
    report.metric_unit("reference_req_per_wall_s", base_rps, "req/s");
    report.metric_unit("fast_req_per_wall_s", fast_rps, "req/s");
    report.metric("speedup_x", speedup);
    report.metric("plan_cache_hits", fast_out.plan_cache.hits as f64);
    report.metric("plan_cache_misses", fast_out.plan_cache.misses as f64);
    report.metric("plan_cache_hit_rate", fast_out.plan_cache.hit_rate());
    report.metric("identical", if identical { 1.0 } else { 0.0 });

    report.text(format!(
        "where the time goes: the reference configuration re-plans every \
         batch from scratch and re-prices its collectives, exactly as the \
         simulator did before the perf refactor. The fast configuration \
         memoizes execution plans keyed on (scheme, batch shape, scheduler \
         epoch) — {} hits / {} misses here ({:.1}% hit rate) — and \
         executors then skip solo repricing for a cached `Arc` plan. \
         Allocation churn is gone independently of the knobs: placements \
         ride inside plans instead of being cloned per batch, executors \
         share one `Arc<Topology>` instead of cloning the topology each, \
         and the dispatch loop reuses scratch buffers and drains (never \
         clones) displaced queues. Every outcome stays bit-identical \
         (identical = {}). Net effect on this trace: {:.0} simulated \
         requests per wall-second before, {:.0} after — {:.1}x.",
        fast_out.plan_cache.hits,
        fast_out.plan_cache.misses,
        fast_out.plan_cache.hit_rate() * 100.0,
        if identical { 1 } else { 0 },
        base_rps,
        fast_rps,
        speedup
    ));
    report
}
