//! Figure 16: median and 95th-percentile inference time of Baseline,
//! Lina, and the two ablations, normalized to Ideal (balanced gate),
//! for Transformer-XL and BERT-Large at 4 and 16 experts.

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::{Report, Table};

use crate::ScenarioCtx;

type ModelCtor = fn(usize, usize) -> MoeModelConfig;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let models: Vec<(ModelCtor, &str)> = ctx.pick(
        &[
            (
                MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig,
                "Transformer-XL / enwik8",
            ),
            (
                |_l, e| MoeModelConfig::bert_large(e),
                "BERT-Large / WMT En-De",
            ),
        ],
        &[(
            MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig,
            "Transformer-XL / enwik8",
        )],
    );
    let mut lina_median_speedups = Vec::new();
    for (model_ctor, label) in models {
        for experts in ctx.pick(&[4usize, 16], &[16]) {
            let model = model_ctor(12, experts);
            let layers = model.layers;
            let topo = crate::topo(experts);
            let cost = crate::infer_cost(model.clone());
            let spec = crate::workload_for(&model, experts, layers);
            let setup = ctx.inference_setup(&spec, experts, 3);
            let mut results = Vec::new();
            let mut ideal_median = 1.0;
            let mut ideal_p95 = 1.0;
            let mut baseline_median = 1.0;
            let mut lina_median = 1.0;
            for scheme in InferScheme::all() {
                let mut s = run_inference_batches(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    &setup.batches,
                );
                let med = s.totals.median();
                let p95 = s.totals.p95();
                if scheme == InferScheme::Ideal {
                    ideal_median = med;
                    ideal_p95 = p95;
                }
                if scheme == InferScheme::Baseline {
                    baseline_median = med;
                }
                if scheme == InferScheme::Lina {
                    lina_median = med;
                }
                results.push((scheme, med, p95, s.finetune_rate(), s.accuracy()));
            }
            if lina_median > 0.0 {
                lina_median_speedups.push(baseline_median / lina_median);
            }
            let mut table = Table::new(
                format!("{label}, {experts} experts (normalized to Ideal)"),
                &["scheme", "median", "p95", "ft rate", "est acc"],
            );
            for (scheme, med, p95, ft, acc) in &results {
                table.row(&[
                    scheme.name().into(),
                    format!("{:.2}", med / ideal_median),
                    format!("{:.2}", p95 / ideal_p95),
                    crate::format_rate(*ft),
                    crate::format_rate(*acc),
                ]);
            }
            report.table(table);
        }
    }
    report.text(
        "paper: Lina cuts the Baseline's median by 1.45-1.54x (Transformer-XL)\n\
         and 1.36-1.46x (BERT-Large), and the 95%ile by up to 1.82x at 16\n\
         experts; w/o estimation is ~19-24% worse than Lina at the median\n\
         (reactive scheduling blocks each layer); w/o fine-tuning inflates\n\
         the tail by ~27-33%.",
    );
    let mean = lina_median_speedups.iter().sum::<f64>() / lina_median_speedups.len().max(1) as f64;
    report.metric_unit("lina_median_speedup_mean", mean, "x");
    report
}
