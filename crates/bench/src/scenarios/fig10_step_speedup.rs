//! Figure 10: training step-time speedup of Lina over the Baseline
//! (DeepSpeed-like) and Tutel-like systems, for three models at
//! 2/4/8/16 experts (paper: 1.71x/1.37x/1.73x/1.47x average for
//! 2/4/8/16 experts over Baseline).

use lina_baselines::TrainScheme;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_secs, format_speedup, geomean, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let steps = ctx.steps;
    let mut table = Table::new(
        "step time and speedup (vs Baseline / vs Tutel)",
        &[
            "model", "experts", "baseline", "tutel", "lina", "vs base", "vs tutel",
        ],
    );
    let mut per_experts: Vec<(usize, Vec<f64>)> = Vec::new();
    for experts in ctx.pick(&[2usize, 4, 8, 16], &[16]) {
        let mut speedups = Vec::new();
        for model in ctx.training_models(experts) {
            let topo = crate::topo(experts);
            let cost = crate::train_cost(model.clone());
            let batch = crate::train_batch(&model);
            let mean_step = |scheme| {
                let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 77);
                ms.iter().map(|m| m.step_time.as_secs_f64()).sum::<f64>() / ms.len() as f64
            };
            let base = mean_step(TrainScheme::Baseline);
            let tutel = mean_step(TrainScheme::Tutel);
            let lina = mean_step(crate::lina_scheme(&model));
            table.row(&[
                model.name.clone(),
                experts.to_string(),
                format_secs(base),
                format_secs(tutel),
                format_secs(lina),
                format_speedup(base / lina),
                format_speedup(tutel / lina),
            ]);
            speedups.push(base / lina);
        }
        per_experts.push((experts, speedups));
    }
    report.table(table);
    let mut avg = Table::new(
        "average speedup over Baseline",
        &["experts", "measured", "paper"],
    );
    let paper = [(2, "1.71x"), (4, "1.37x"), (8, "1.73x"), (16, "1.47x")];
    for (experts, speedups) in &per_experts {
        let p = paper
            .iter()
            .find(|(e, _)| e == experts)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        let g = geomean(speedups);
        report.metric_unit(format!("speedup_vs_baseline_{experts}e"), g, "x");
        avg.row(&[experts.to_string(), format_speedup(g), p.into()]);
    }
    report.table(avg);
    report.text(
        "shape check: the 2- and 8-expert cases gain most (packing turns\n\
         all-to-all into pure data parallelism / intra-node traffic);\n\
         Lina's speedup over Tutel is slightly smaller than over Baseline.",
    );
    report
}
