//! Table 3: pipelining efficiency with and without expert packing
//! (paper, 16-expert: 33-36% without packing, 79-86% with).

use lina_baselines::TrainScheme;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_pct, Report, Table};

use super::mean;
use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let experts = 16usize;
    let steps = ctx.steps.min(5);
    let mut table = Table::new(
        "16-expert models",
        &[
            "model",
            "w/o packing",
            "w/ packing",
            "experts/device",
            "paper w/o",
            "paper w/",
        ],
    );
    let paper = [
        ("Transformer-XL", "33%", "86%"),
        ("GPT-2", "36%", "85%"),
        ("BERT2GPT2", "34%", "79%"),
    ];
    let mut effs_without = Vec::new();
    let mut effs_with = Vec::new();
    for (model, (_, pwo, pw)) in ctx.training_models(experts).into_iter().zip(paper) {
        let topo = crate::topo(experts);
        let cost = crate::train_cost(model.clone());
        let batch = crate::train_batch(&model);
        let pipeline_eff = |scheme| -> f64 {
            let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 141);
            ms.iter().map(|m| m.pipelining_efficiency).sum::<f64>() / ms.len() as f64
        };
        let without = pipeline_eff(TrainScheme::LinaNoPack);
        let packing = crate::paper_packing(&model);
        let with = pipeline_eff(TrainScheme::Lina {
            experts_per_device: packing,
        });
        effs_without.push(without);
        effs_with.push(with);
        table.row(&[
            model.name.clone(),
            format_pct(without),
            format_pct(with),
            packing.to_string(),
            pwo.into(),
            pw.into(),
        ]);
    }
    report.table(table);
    report.text(
        "pipelining efficiency = fraction of all-to-all time during which the\n\
         same device's compute stream is busy. Packing lengthens the expert\n\
         FFN micro-op towards the all-to-all micro-op, filling the pipeline.",
    );
    report.metric_unit(
        "pipelining_eff_without_packing",
        mean(&effs_without),
        "frac",
    );
    report.metric_unit("pipelining_eff_with_packing", mean(&effs_with), "frac");
    report
}
