//! Figure 7: backward-pass scheduling case study — baseline
//! fair-share, naive priority, and fixed deferral, measured on the
//! same two-MoE-layer backward window.

use lina_baselines::TrainScheme;
use lina_model::MoeModelConfig;
use lina_runner::train::run_train_step;
use lina_simcore::{format_secs, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let model = MoeModelConfig::gpt2(16);
    let topo = crate::topo(16);
    let cost = crate::train_cost(model.clone());
    let batch = crate::train_batch(&model);

    let mut table = Table::new(
        "one training step of the 16-expert GPT-2 model",
        &["strategy", "step time", "mean bwd a2a", "mean a2a slowdown"],
    );
    let mut baseline_step = 0.0;
    for (scheme, label) in [
        (TrainScheme::Baseline, "(a) baseline fair-share"),
        (TrainScheme::PriorityOnly, "(b) naive priority"),
        (TrainScheme::Fixed, "(c) fixed deferral"),
        (
            TrainScheme::PriorityPartition,
            "(d) priority + partitioning",
        ),
    ] {
        let m = run_train_step(&cost, &topo, batch, scheme, 5).metrics;
        let mean_a2a: f64 = m.a2a_bwd_times.iter().map(|d| d.as_secs_f64()).sum::<f64>()
            / m.a2a_bwd_times.len().max(1) as f64;
        let mean_slow: f64 =
            m.a2a_bwd_slowdowns.iter().sum::<f64>() / m.a2a_bwd_slowdowns.len().max(1) as f64;
        let step = m.step_time.as_secs_f64();
        if scheme == TrainScheme::Baseline {
            baseline_step = step;
        } else if scheme == TrainScheme::PriorityPartition {
            report.metric_unit("priority_partition_speedup", baseline_step / step, "x");
        }
        table.row(&[
            label.into(),
            format_secs(step),
            format_secs(mean_a2a),
            format!("{mean_slow:.2}x"),
        ]);
    }
    report.table(table);
    report.text(
        "paper's case study (Figure 7): naive priority can be no better than\n\
         the baseline because a launched allreduce cannot be preempted, and\n\
         fixed deferral helps but cannot opportunistically use the gaps; the\n\
         paper's oracle (d) needs exact arrival/running times. Partitioned\n\
         micro-ops (Lina, Figure 8) approach the oracle without that\n\
         knowledge.",
    );
    report
}
