//! Gray-failure detection and hedged dispatch: gray intensity ×
//! {blind oracle, phi detector, detector + hedging}.
//!
//! The experiment: the three-replica cluster runs behind the
//! round-robin balancer at a moderate load, and a scripted
//! gray fault slows replica 0 across the middle of the arrival span —
//! the replica still answers, just `compute_scale`× slower, and the
//! control plane is never told (the oracle health bit stays up). Three
//! arms face the same schedule: `blind` keeps the oracle detector and
//! routes a full share of traffic into the straggler; `detector` arms
//! the phi-accrual suspicion estimator so the balancer diverts around
//! it as the score rises; `detector+hedged` adds quantile-delay hedged
//! dispatch so batches already stuck on the straggler are re-issued to
//! the least-suspected alternate, first completion winning. A healthy
//! run (no fault) bounds the recoverable gap. Headline metrics at the
//! default intensity: `detector_recovers_oracle_gap_frac` — the
//! fraction of the blind arm's p99 inflation the detector claws back;
//! `hedged_over_unhedged_p99` — the tail ratio hedging buys on top of
//! detection (≥ 1: hedges only fire for batches detection alone cannot
//! rescue); and `hedge_wasted_compute_frac` — the fraction of executor
//! time burned on losing flights, which must stay small. A degeneracy
//! probe pins the contract that an armed-but-inert hedge runtime over
//! the same gray schedule reproduces the blind arm bit for bit.
//!
//! The hedge delay is median-based (quantile 0.5): under a gray
//! straggler the observed service distribution is bimodal, and a high
//! quantile would land in the straggler's own band and never fire.

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{
    serve_cluster, ArrivalProcess, BalancerKind, BatcherConfig, ClusterConfig, ClusterEngine,
    DegradationPolicy, EstimatorSharing, FaultEvent, FaultKind, FaultPlan, FaultSchedule,
    HealthConfig, HedgeConfig, NetworkMode, ServeConfig, ServeEngine,
};
use lina_simcore::{Report, SimDuration, SimTime, Table};

use crate::ScenarioCtx;

/// Replica servers behind the balancer.
const REPLICAS: usize = 3;

/// Offered load as a fraction of aggregate capacity: low enough that
/// the two clean replicas can absorb the diverted share.
const LOAD: f64 = 0.55;

/// The sweep cell the headline metrics are read from (present at both
/// tiers).
const DEFAULT_SCALE: f64 = 8.0;

fn serve_config(rate: f64, n_requests: usize, tokens_per_request: usize) -> ServeConfig {
    ServeConfig {
        scheme: InferScheme::Lina,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        // Steady Poisson arrivals: the transient under study is the
        // gray episode, not the arrival process.
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 8,
            max_wait: SimDuration::from_millis(2),
        },
        slo: SimDuration::from_millis(60),
        n_requests,
        tokens_per_request,
        token_spread: 0.3,
        drift_period: Some((n_requests / 6).max(1)),
        reestimate_every: Some(4),
        reestimate_window: 8,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0x64A7,
        perf: Default::default(),
    }
}

fn cluster_config(
    serve: ServeConfig,
    faults: FaultPlan,
    health: HealthConfig,
    hedging: Option<HedgeConfig>,
) -> ClusterConfig {
    ClusterConfig {
        serve,
        replicas: REPLICAS,
        // Round-robin: the balancer with no queue-depth feedback, so
        // health is the *only* signal that can divert traffic — the
        // cleanest read on what detection alone buys. (Queue-aware
        // balancers partially self-correct around a straggler by
        // construction.)
        balancer: BalancerKind::RoundRobin,
        sharing: EstimatorSharing::Shared,
        faults,
        autoscale: None,
        resharding: None,
        placement: None,
        locality: false,
        health,
        hedging,
    }
}

/// The phi-accrual detector with a stretched suspicion half-life:
/// round-robin consults nothing but the routable bit, so the score
/// must hold above the exclusion threshold across the straggler's
/// (long) inter-completion gaps or the balancer resumes feeding it.
fn detector() -> HealthConfig {
    HealthConfig {
        half_life: SimDuration::from_millis(50),
        ..HealthConfig::phi_accrual()
    }
}

/// Median-based hedging: fire at 1.5× the observed median after a
/// short warm-up.
fn hedge() -> HedgeConfig {
    HedgeConfig {
        quantile: 0.5,
        multiplier: 1.5,
        min_samples: 8,
    }
}

/// One gray episode on replica 0 across the back half of the span:
/// onset after the detector's baseline has warmed up on clean samples
/// (16 batch observations), clear near the end so the recovery tail is
/// visible.
fn gray_script(scale: f64, span: SimDuration) -> FaultSchedule {
    let onset = SimTime::ZERO + span.mul_f64(0.4);
    let clear = SimTime::ZERO + span.mul_f64(0.9);
    FaultSchedule::from_script(vec![
        FaultEvent {
            at: onset,
            replica: 0,
            kind: FaultKind::GrayDegrade {
                compute_scale: scale,
                // Intensity k throttles the link to 1/k too: gray
                // hardware faults (thermal throttling, a NIC
                // renegotiated to a lower rate, a degraded PCIe lane)
                // rarely hit compute alone, and Lina batches are
                // all-to-all-dominated, so the link is where a gray
                // episode actually bites.
                nic_scale: 1.0 / scale,
            },
        },
        FaultEvent {
            at: clear,
            replica: 0,
            kind: FaultKind::GrayClear,
        },
    ])
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let n_requests = match ctx.tier {
        crate::Tier::Full => ctx.requests * REPLICAS,
        crate::Tier::Smoke => ctx.requests * REPLICAS * 6,
    };
    let tokens_per_request = match ctx.tier {
        crate::Tier::Full => 8192,
        crate::Tier::Smoke => 2048,
    };
    let experts = 8;
    let model = MoeModelConfig::transformer_xl(6, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor on aggregate capacity, then measure the healthy arrival
    // span so the scripted episode lands mid-run at every tier.
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve_config(1.0, n_requests, tokens_per_request),
            FaultPlan::none(),
            HealthConfig::oracle(),
            None,
        ),
    );
    let capacity = probe.capacity();
    let rate = LOAD * capacity;
    let serve = serve_config(rate, n_requests, tokens_per_request);
    let span = ServeEngine::new(&cost, &topo, &spec, serve.clone())
        .generate_requests()
        .last()
        .expect("nonempty request trace")
        .arrival
        .saturating_since(SimTime::ZERO);
    report.metric_unit("cluster_capacity", capacity, "req/s");
    report.text(format!(
        "{REPLICAS} replicas at {:.0}% load ({rate:.0} req/s), {n_requests} \
         requests over a {span} healthy span; a scripted gray episode slows \
         replica 0 over the middle 60% of the span without tripping its \
         health bit\n",
        LOAD * 100.0
    ));

    // Healthy bound for the recoverable gap.
    let healthy = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve.clone(),
            FaultPlan::none(),
            HealthConfig::oracle(),
            None,
        ),
    );
    let p99_healthy = healthy.report().p99.as_millis_f64();
    report.metric_unit("p99_ms_healthy", p99_healthy, "ms");

    let policy = DegradationPolicy::retry_failover(None);
    let scales = ctx.pick(&[2.0, 4.0, DEFAULT_SCALE], &[DEFAULT_SCALE]);
    let mut headline: Option<(f64, f64, f64, f64)> = None;
    for &scale in &scales {
        let schedule = gray_script(scale, span);
        let arms: [(&str, HealthConfig, Option<HedgeConfig>); 3] = [
            ("blind", HealthConfig::oracle(), None),
            ("detector", detector(), None),
            ("detector_hedged", detector(), Some(hedge())),
        ];
        let mut table = Table::new(
            format!("{scale:.0}x gray compute on replica 0"),
            &[
                "arm",
                "p99",
                "SLO att.",
                "gray share",
                "hedges",
                "won",
                "wasted",
            ],
        );
        let mut cell: Vec<(&str, f64, f64)> = Vec::new();
        for (arm, health, hedging) in arms {
            let hedged = hedging.is_some();
            let out = serve_cluster(
                &cost,
                &topo,
                &spec,
                cluster_config(
                    serve.clone(),
                    FaultPlan {
                        schedule: schedule.clone(),
                        policy,
                    },
                    health,
                    hedging,
                ),
            );
            let r = out.report();
            let p99 = r.p99.as_millis_f64();
            let gray_share = out.requests_per_replica[0] as f64 / r.requests as f64;
            let tag = format!("{arm}_x{scale:.0}");
            report.metric_unit(format!("p99_ms_{tag}"), p99, "ms");
            report.metric_unit(format!("attainment_{tag}"), r.attainment, "frac");
            report.metric_unit(format!("gray_replica_share_{tag}"), gray_share, "frac");
            if hedged {
                report.metric(format!("hedges_issued_{tag}"), out.hedges_issued as f64);
                report.metric(format!("hedges_won_{tag}"), out.hedges_won as f64);
                report.metric_unit(
                    format!("hedge_wasted_frac_{tag}"),
                    out.hedge_wasted_frac,
                    "frac",
                );
            }
            cell.push((arm, p99, out.hedge_wasted_frac));
            table.row(&[
                arm.into(),
                r.p99.to_string(),
                format!("{:.1}%", r.attainment * 100.0),
                format!("{:.1}%", gray_share * 100.0),
                out.hedges_issued.to_string(),
                out.hedges_won.to_string(),
                format!("{:.1}%", out.hedge_wasted_frac * 100.0),
            ]);
        }
        report.table(table);
        if scale == DEFAULT_SCALE {
            let p99_of = |name: &str| {
                cell.iter()
                    .find(|&&(n, _, _)| n == name)
                    .copied()
                    .expect("default cell swept")
            };
            let (_, p99_blind, _) = p99_of("blind");
            let (_, p99_det, _) = p99_of("detector");
            let (_, p99_hedged, wasted) = p99_of("detector_hedged");
            headline = Some((p99_blind, p99_det, p99_hedged, wasted));
        }
    }

    // Headlines at the default intensity.
    let (p99_blind, p99_det, p99_hedged, wasted) = headline.expect("default scale swept");
    let gap = p99_blind - p99_healthy;
    let recovered = if gap > 0.0 {
        (p99_blind - p99_det) / gap
    } else {
        1.0
    };
    report.metric("detector_recovers_oracle_gap_frac", recovered);
    report.metric("hedged_over_unhedged_p99", p99_det / p99_hedged);
    report.metric("hedge_wasted_compute_frac", wasted);

    // Degeneracy probe: the oracle detector with an armed hedge
    // runtime that can never reach its sample floor must reproduce the
    // blind arm bit for bit over the same gray schedule.
    let schedule = gray_script(DEFAULT_SCALE, span);
    let blind = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve.clone(),
            FaultPlan {
                schedule: schedule.clone(),
                policy,
            },
            HealthConfig::oracle(),
            None,
        ),
    );
    let inert = serve_cluster(
        &cost,
        &topo,
        &spec,
        cluster_config(
            serve,
            FaultPlan { schedule, policy },
            HealthConfig::oracle(),
            Some(HedgeConfig {
                quantile: 0.95,
                multiplier: 2.0,
                min_samples: usize::MAX,
            }),
        ),
    );
    let identical = blind.report() == inert.report()
        && blind.tracker.records() == inert.tracker.records()
        && inert.hedges_issued == 0;
    report.metric(
        "oracle_inert_hedging_identical",
        if identical { 1.0 } else { 0.0 },
    );

    report.text(
        "reading the sweep: the blind arm keeps trusting the oracle health\n\
         bit, so the balancer routes a full share of traffic into the slowed\n\
         replica for the whole episode and the tail inflates with the gray\n\
         intensity. The detector arm infers suspicion from observed batch\n\
         latencies (phi-accrual over an EWMA vs the warmed-up baseline) and\n\
         diverts new work around the straggler within a few batches of\n\
         onset; what it cannot rescue are batches already in flight there,\n\
         which is exactly the tail hedged dispatch attacks — a median-based\n\
         hedge delay re-issues stuck batches to the least-suspected\n\
         alternate and the first completion wins. Wasted compute stays low\n\
         because hedges only fire for batches whose primary is genuinely\n\
         late, so the loser is usually the straggler's flight.",
    );
    report
}
