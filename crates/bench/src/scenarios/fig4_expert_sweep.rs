//! Figure 4: the share of step time spent in all-to-all, and the data
//! size of one all-to-all, as the number of experts grows from 2 to 16
//! (paper: 33.4% -> 44.5%).

use lina_baselines::TrainScheme;
use lina_model::MoeModelConfig;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_bytes, format_pct, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let mut table = Table::new(
        "Transformer-XL 12L, baseline",
        &["experts", "a2a share", "a2a data/device", "step time"],
    );
    for experts in ctx.pick(&[2usize, 4, 8, 16], &[4, 16]) {
        let model = MoeModelConfig::transformer_xl(12, experts);
        let topo = crate::topo(experts);
        let cost = crate::train_cost(model.clone());
        let batch = crate::train_batch(&model);
        let metrics = run_train_steps(
            &cost,
            &topo,
            batch,
            TrainScheme::Baseline,
            ctx.steps.min(5),
            31,
        );
        let a2a: f64 = metrics
            .iter()
            .map(|m| m.a2a_total.as_secs_f64())
            .sum::<f64>()
            / metrics.len() as f64;
        let step: f64 = metrics
            .iter()
            .map(|m| m.step_time.as_secs_f64())
            .sum::<f64>()
            / metrics.len() as f64;
        let data = model.a2a_bytes_per_device(batch.tokens_per_device());
        report.metric_unit(format!("a2a_share_{experts}e"), a2a / step, "frac");
        table.row(&[
            experts.to_string(),
            format_pct(a2a / step),
            format_bytes(data),
            lina_simcore::format_secs(step),
        ]);
    }
    report.table(table);
    report.text("paper: share grows from 33.4% (2 experts) to 44.5% (16 experts).");
    report.text(
        "note: our cluster scheduler scatters 2- and 4-GPU jobs one GPU per\n\
         node (all traffic inter-node) while the 8-GPU job gets two full\n\
         servers (half the traffic rides NVLink), so the share dips at 8\n\
         instead of growing smoothly; the 16-expert endpoint matches.",
    );
    report
}
