//! Figure 3: CDF of how much a backward-pass all-to-all is prolonged
//! when it overlaps with an allreduce (paper: median 1.83x, max 4.14x).

use lina_baselines::TrainScheme;
use lina_runner::train::run_train_steps;
use lina_simcore::{Report, Samples, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    // Pool backward all-to-alls across the paper's training roster.
    let mut slowdowns = Samples::new();
    let mut overlapped_count = 0usize;
    let mut total_count = 0usize;
    for experts in ctx.pick(&[8usize, 16], &[16]) {
        for model in ctx.training_models(experts) {
            let topo = crate::topo(experts);
            let cost = crate::train_cost(model.clone());
            let batch = crate::train_batch(&model);
            let metrics =
                run_train_steps(&cost, &topo, batch, TrainScheme::Baseline, ctx.steps, 23);
            for m in &metrics {
                for (s, &o) in m.a2a_bwd_slowdowns.iter().zip(&m.a2a_bwd_overlapped) {
                    total_count += 1;
                    if o {
                        overlapped_count += 1;
                        slowdowns.push(*s);
                    }
                }
            }
        }
    }
    report.text(format!(
        "{} backward all-to-all ops observed; {} ({:.1}%) overlapped an allreduce\n",
        total_count,
        overlapped_count,
        100.0 * overlapped_count as f64 / total_count.max(1) as f64
    ));
    let mut table = Table::new(
        "slowdown CDF (conditioned on overlap)",
        &["percentile", "slowdown"],
    );
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
        table.row(&[
            format!("p{p:.0}"),
            format!("{:.2}x", slowdowns.percentile(p)),
        ]);
    }
    report.table(table);
    report.text(format!(
        "measured: median {:.2}x, mean {:.2}x, max {:.2}x",
        slowdowns.median(),
        slowdowns.mean(),
        slowdowns.max()
    ));
    report.text("paper:    median 1.83x, worst 4.14x");
    report.metric_unit(
        "overlapped_fraction",
        overlapped_count as f64 / total_count.max(1) as f64,
        "frac",
    );
    report.metric_unit("slowdown_median", slowdowns.median(), "x");
    report.metric_unit("slowdown_max", slowdowns.max(), "x");
    report
}
