//! Figure 13: backward all-to-all completion-time speedup of Lina over
//! Baseline (paper: 2.21x/2.39x/2.31x average at 4/8/16 experts —
//! priority scheduling removes allreduce interference and packing
//! shrinks transfers).

use lina_baselines::TrainScheme;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_secs, format_speedup, geomean, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let steps = ctx.steps;
    let mut table = Table::new(
        "mean backward all-to-all completion time",
        &["model", "experts", "baseline", "lina", "speedup"],
    );
    let mut by_e: Vec<(usize, Vec<f64>)> = Vec::new();
    for experts in ctx.pick(&[4usize, 8, 16], &[16]) {
        let mut speedups = Vec::new();
        for model in ctx.training_models(experts) {
            let topo = crate::topo(experts);
            let cost = crate::train_cost(model.clone());
            let batch = crate::train_batch(&model);
            let mean_bwd_a2a = |scheme| -> f64 {
                let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 131);
                let mut sum = 0.0;
                let mut n = 0usize;
                for m in &ms {
                    for d in &m.a2a_bwd_times {
                        sum += d.as_secs_f64();
                        n += 1;
                    }
                }
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            };
            let base = mean_bwd_a2a(TrainScheme::Baseline);
            let lina = mean_bwd_a2a(crate::lina_scheme(&model));
            let speedup = if lina > 0.0 {
                base / lina
            } else {
                f64::INFINITY
            };
            table.row(&[
                model.name.clone(),
                experts.to_string(),
                format_secs(base),
                if lina > 0.0 {
                    format_secs(lina)
                } else {
                    "none".into()
                },
                format_speedup(speedup.min(99.0)),
            ]);
            if lina > 0.0 {
                speedups.push(speedup);
            }
        }
        by_e.push((experts, speedups));
    }
    report.table(table);
    let mut avg = Table::new("average speedup", &["experts", "measured", "paper"]);
    let paper = [(4usize, "2.21x"), (8, "2.39x"), (16, "2.31x")];
    for (e, s) in &by_e {
        let p = paper
            .iter()
            .find(|(pe, _)| pe == e)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        let g = if s.is_empty() {
            f64::INFINITY
        } else {
            geomean(s)
        };
        report.metric_unit(format!("bwd_a2a_speedup_{e}e"), g.min(99.0), "x");
        avg.row(&[e.to_string(), format_speedup(g.min(99.0)), p.into()]);
    }
    report.table(avg);
    report.text("note: 'none' means packing made all all-to-all traffic local.");
    report
}
