//! Figure 19: estimation accuracy per MoE layer in 16-expert inference
//! (paper: 58.41% overall for Transformer-XL, 54.16% for BERT-Large,
//! higher in later layers).

use lina_core::PopularityEstimator;
use lina_model::MoeModelConfig;
use lina_simcore::{format_pct, Report, Table};
use lina_workload::popularity;

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let models = ctx.pick(
        &[
            MoeModelConfig::transformer_xl(12, 16),
            MoeModelConfig::bert_large(16),
        ],
        &[MoeModelConfig::transformer_xl(12, 16)],
    );
    for model in models {
        let experts = 16;
        let spec = crate::workload_for(&model, experts, model.layers);
        let setup = ctx.inference_setup_with(
            &spec,
            experts,
            3,
            ctx.batches,
            ctx.tokens_per_device.min(4096),
        );
        let est = setup.scheduler.estimator();
        let mut table = Table::new(
            format!("{} — per-layer accuracy (top-2 set match)", model.name),
            &["layer", "accuracy"],
        );
        let mut hits_total = 0usize;
        let mut n_total = 0usize;
        for next_layer in est.path_length()..model.layers {
            let mut hits = 0usize;
            let mut n = 0usize;
            for batch in &setup.batches {
                let estimated = est.estimate_popularity(&batch.tokens, next_layer - 1, 1);
                let actual = popularity(batch, next_layer);
                if PopularityEstimator::estimate_matches(&estimated, &actual, 2) {
                    hits += 1;
                }
                n += 1;
            }
            table.row(&[next_layer.to_string(), format_pct(hits as f64 / n as f64)]);
            hits_total += hits;
            n_total += n;
        }
        let overall = hits_total as f64 / n_total.max(1) as f64;
        report.table(table);
        report.text(format!("overall accuracy: {}\n", format_pct(overall)));
        report.metric_unit(
            format!("{}_estimation_accuracy", crate::slug(&model.name)),
            overall,
            "frac",
        );
    }
    report.text("paper: 58.41% (Transformer-XL) and 54.16% (BERT-Large) overall;");
    report.text("       deeper layers estimate better (consistent with Figure 9).");
    report
}
