//! Figure 6: sampled expert popularity in training vs inference
//! (paper: training is near-uniform; inference max/min is 4.02x at 4
//! experts and 5.56x at 16).

use lina_simcore::{Report, Table};
use lina_workload::{popularity, popularity_skew, Mode, TokenSource, WorkloadSpec};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    for experts in [4usize, 16] {
        let spec = WorkloadSpec::enwik8(experts, 12);
        let mut src = TokenSource::new(&spec, 1, 606);
        let train = src.sample_batch(experts.max(4), 4096, Mode::Train);
        let infer = src.sample_batch(experts.max(4), 4096, Mode::Inference);
        let layer = 6;
        let tp = popularity(&train, layer);
        let ip = popularity(&infer, layer);
        let mut table = Table::new(
            format!("{experts}-expert model, layer {layer}"),
            &["expert", "training", "inference"],
        );
        for e in 0..experts {
            table.row(&[
                e.to_string(),
                format!("{:.3}", tp[e]),
                format!("{:.3}", ip[e]),
            ]);
        }
        report.table(table);
        let tskew: f64 = (0..12).map(|l| popularity_skew(&train, l)).sum::<f64>() / 12.0;
        let iskew: f64 = (0..12).map(|l| popularity_skew(&infer, l)).sum::<f64>() / 12.0;
        let max_mean: f64 = (0..12)
            .map(|l| {
                let p = popularity(&infer, l);
                p.iter().copied().fold(0.0, f64::max) * experts as f64
            })
            .sum::<f64>()
            / 12.0;
        report.text(format!(
            "mean max/min over layers: training {tskew:.2}x, inference {iskew:.2}x"
        ));
        report.text(format!(
            "inference max/mean (straggler factor): {max_mean:.2}x\n"
        ));
        report.metric_unit(format!("inference_skew_{experts}e"), iskew, "x");
        report.metric_unit(format!("straggler_factor_{experts}e"), max_mean, "x");
    }
    report.text("paper: inference max/min is 4.02x (4 experts) and 5.56x (16 experts);");
    report.text("       training is nearly uniform thanks to the load-balancing loss.");
    report.text(
        "note: our generator's least-popular expert receives less residual\n\
         traffic than the paper's, inflating max/min; the performance-\n\
         relevant max/mean straggler factor is the calibrated quantity.",
    );
    report
}
