//! Table 2: the top-4 popular experts of sampled MoE layers differ
//! completely across layers of the same model.

use std::collections::BTreeSet;

use lina_simcore::{Report, Table};
use lina_workload::{top_experts, Mode, TokenSource, WorkloadSpec};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(_ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let mut distinct_sets = 0usize;
    let mut sampled_layers = 0usize;
    for (name, spec) in [
        (
            "Transformer-XL & enwik8 (text generation)",
            WorkloadSpec::enwik8(12, 12),
        ),
        (
            "BERT-Large & WMT En-De (translation)",
            WorkloadSpec::wmt_en_de(12, 12),
        ),
    ] {
        let mut src = TokenSource::new(&spec, 1, 22);
        let batch = src.sample_batch(12, 4096, Mode::Inference);
        let mut table = Table::new(name, &["layer", "top-1", "top-2", "top-3", "top-4"]);
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for layer in [3usize, 4, 8, 11] {
            let top = top_experts(&batch, layer, 4);
            let mut set = top.clone();
            set.sort_unstable();
            seen.insert(set);
            sampled_layers += 1;
            table.row(&[
                layer.to_string(),
                top[0].to_string(),
                top[1].to_string(),
                top[2].to_string(),
                top[3].to_string(),
            ]);
        }
        distinct_sets += seen.len();
        report.table(table);
    }
    report.text(
        "paper's observation: every sampled layer has a different top-4 set,\n\
         so resource scheduling must be per-layer.",
    );
    report.metric("distinct_top4_sets", distinct_sets as f64);
    report.metric("sampled_layers", sampled_layers as f64);
    report
}
