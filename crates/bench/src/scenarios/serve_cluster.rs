//! Multi-replica serving cluster sweep: offered load × load balancer ×
//! estimator sharing, all replicas running the full Lina scheme on one
//! drifting open-loop trace.
//!
//! The experiment behind the sweep: arrivals come in bursts (a
//! two-state MMPP whose burst phase floods the cluster past its
//! aggregate capacity), and requests vary widely in size. Each burst
//! re-rolls a transient queue imbalance: blind round-robin keeps
//! rotating into replicas still draining heavy batches, while the
//! queue-aware balancers (join-shortest-queue over outstanding tokens,
//! least-expected-latency over queue depth and capacity) divert around
//! them. Estimator sharing is swept alongside: a shared estimator
//! re-profiles from every replica's batches at the cluster-wide batch
//! rate, per-replica estimators only at their own. The headline metric
//! is round-robin's p99 over JSQ's at the highest offered load with
//! shared estimation (≥ 1 means JSQ wins the tail).

use lina_baselines::InferScheme;
use lina_model::MoeModelConfig;
use lina_serve::{
    serve_cluster, ArrivalProcess, BalancerKind, BatcherConfig, ClusterConfig, ClusterEngine,
    EstimatorSharing, FaultPlan, NetworkMode, ServeConfig,
};
use lina_simcore::{Report, SimDuration, Table};

use crate::scenario::slug;
use crate::ScenarioCtx;

/// Replica servers behind the balancer.
const REPLICAS: usize = 3;

fn cluster_config(
    rate: f64,
    n_requests: usize,
    tokens_per_request: usize,
    balancer: BalancerKind,
    sharing: EstimatorSharing,
) -> ClusterConfig {
    ClusterConfig {
        serve: ServeConfig {
            scheme: InferScheme::Lina,
            top_k: 1,
            path_length: 3,
            max_experts_per_device: 2,
            // Two-state MMPP: bursts at 1.7x the mean rate with calm
            // valleys between them. Each burst floods the cluster past
            // its aggregate capacity, re-rolling the transient queue
            // imbalance that separates the balancers; sustained
            // overload would instead equalize every policy on the
            // final drain.
            arrival: ArrivalProcess::Mmpp {
                calm_rate: 0.3 * rate,
                burst_rate: 1.7 * rate,
                mean_calm: 0.02,
                mean_burst: 0.02,
            },
            batcher: BatcherConfig {
                max_batch_requests: 8,
                max_wait: SimDuration::from_millis(2),
            },
            slo: SimDuration::from_millis(60),
            n_requests,
            tokens_per_request,
            // Heterogeneous request sizes (0.1x–1.9x nominal): the
            // work imbalance blind round-robin cannot see.
            token_spread: 0.9,
            // Popularity drifts a handful of times over the run; the
            // estimating schemes re-profile every few batches.
            drift_period: Some((n_requests / 6).max(1)),
            reestimate_every: Some(4),
            reestimate_window: 8,
            network: NetworkMode::Solo,
            max_inflight: 1,
            seed: 0x5EED,
            perf: Default::default(),
        },
        replicas: REPLICAS,
        balancer,
        sharing,
        faults: FaultPlan::none(),
        autoscale: None,
        resharding: None,
        placement: None,
        locality: false,
        health: lina_serve::HealthConfig::oracle(),
        hedging: None,
    }
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    // Long enough per point that routing quality, not batching noise,
    // sets the tail: at smoke sizes each replica still sees ~50
    // requests over a dozen-plus burst/calm cycles.
    let n_requests = match ctx.tier {
        crate::Tier::Full => ctx.requests * REPLICAS,
        crate::Tier::Smoke => ctx.requests * REPLICAS * 4,
    };
    let tokens_per_request = match ctx.tier {
        crate::Tier::Full => 8192,
        crate::Tier::Smoke => 2048,
    };
    let experts = 8;
    let model = MoeModelConfig::transformer_xl(6, experts);
    let topo = crate::topo(experts);
    let cost = crate::infer_cost(model.clone());
    let spec = crate::workload_for(&model, experts, model.layers);

    // Anchor the sweep on the cluster's aggregate saturation rate.
    let probe = ClusterEngine::new(
        &cost,
        &topo,
        &spec,
        cluster_config(
            1.0,
            n_requests,
            tokens_per_request,
            BalancerKind::RoundRobin,
            EstimatorSharing::Shared,
        ),
    );
    let capacity = probe.capacity();
    report.metric_unit("cluster_capacity", capacity, "req/s");
    report.text(format!(
        "{REPLICAS} replicas, aggregate capacity ~{capacity:.0} req/s; \
         {n_requests} requests per point on one drifting trace\n"
    ));

    let balancers = [
        BalancerKind::RoundRobin,
        BalancerKind::JoinShortestQueue,
        BalancerKind::LeastExpectedLatency,
    ];
    let sharings = [EstimatorSharing::Shared, EstimatorSharing::PerReplica];
    let loads = ctx.pick(&[0.3, 0.5, 0.75], &[0.5, 0.75]);
    let high_load = *loads.last().expect("nonempty load sweep");
    let mut high_load_p99 = Vec::new();
    for &load in &loads {
        let rate = load * capacity;
        let mut table = Table::new(
            format!(
                "offered load {:.0}% of cluster capacity ({rate:.0} req/s)",
                load * 100.0
            ),
            &[
                "balancer",
                "estimator",
                "p99",
                "SLO att.",
                "goodput",
                "imbalance",
            ],
        );
        for balancer in balancers {
            for sharing in sharings {
                let out = serve_cluster(
                    &cost,
                    &topo,
                    &spec,
                    cluster_config(rate, n_requests, tokens_per_request, balancer, sharing),
                );
                let r = out.report();
                let cell = format!("{}_{}", slug(balancer.name()), slug(sharing.name()));
                report.metric_unit(
                    format!("p99_ms_{cell}_load{:.0}", load * 100.0),
                    r.p99.as_millis_f64(),
                    "ms",
                );
                report.metric_unit(
                    format!("goodput_{cell}_load{:.0}", load * 100.0),
                    r.goodput,
                    "req/s",
                );
                if load == high_load {
                    report.metric_unit(
                        format!("attainment_{cell}_load{:.0}", load * 100.0),
                        r.attainment,
                        "frac",
                    );
                    if sharing == EstimatorSharing::Shared {
                        high_load_p99.push((balancer, r.p99));
                    }
                }
                table.row(&[
                    balancer.name().into(),
                    sharing.name().into(),
                    r.p99.to_string(),
                    format!("{:.1}%", r.attainment * 100.0),
                    format!("{:.0} req/s", r.goodput),
                    format!("{:.2}x", out.routing_imbalance()),
                ]);
            }
        }
        report.table(table);
    }

    // Headline: blind rotation's tail over JSQ's at the highest load,
    // both with shared estimation (≥ 1: queue-awareness wins).
    let p99_of = |kind| {
        high_load_p99
            .iter()
            .find(|&&(b, _)| b == kind)
            .map(|&(_, p)| p.as_secs_f64())
            .expect("swept at high load")
    };
    let rr = p99_of(BalancerKind::RoundRobin);
    let jsq = p99_of(BalancerKind::JoinShortestQueue);
    report.metric("rr_over_jsq_p99_high_load", rr / jsq.max(f64::MIN_POSITIVE));
    report.text(
        "reading the sweep: every burst floods the cluster past capacity\n\
         for a few tens of milliseconds, and round-robin keeps rotating\n\
         into replicas still draining heavy batches — its tail carries the\n\
         backlog of whichever replica each burst happened to overload.\n\
         Join-shortest-queue (outstanding tokens) and least-expected-latency\n\
         (queue over capacity) divert around the busy replica and flatten\n\
         the p99. Estimator sharing re-profiles placement from all\n\
         replicas' batches at the cluster-wide batch rate — three times the\n\
         cadence a per-replica counter manages — though at these sizes both\n\
         track the drift closely enough that routing, not estimation,\n\
         dominates the tail.",
    );
    report
}
