//! Figure 15: training step time of 16-expert models as the tensor
//! partition size sweeps from 10 MB to 100 MB (paper: sizes beyond
//! 50 MB slow Transformer-XL and BERT2GPT2; several sizes around
//! 10-30 MB are equally good; very small partitions pay per-op
//! overhead).

use lina_baselines::TrainScheme;
use lina_model::{A2aChunking, GradCommMode};
use lina_runner::train::StepMetrics;
use lina_simcore::{format_secs, geomean, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let experts = 16usize;
    let sizes_mb = [5.0, 10.0, 30.0, 50.0, 100.0];
    let mut table = Table::new(
        "step time vs partition size (no packing; priority scheduler)",
        &["model", "5MB", "10MB", "30MB", "50MB", "100MB"],
    );
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes_mb.len()];
    for model in ctx.training_models(experts) {
        let topo = crate::topo(experts);
        let cost = crate::train_cost(model.clone());
        let batch = crate::train_batch(&model);
        let mut cells = vec![model.name.clone()];
        for (si, &mb) in sizes_mb.iter().enumerate() {
            let bytes = mb * 1e6;
            let scheme = TrainScheme::LinaNoPack;
            // Override both partition sizes.
            let mut steps: Vec<StepMetrics> = Vec::new();
            for seed in 0..ctx.steps.min(5) as u64 {
                let mut opts = scheme.step_options(experts, &topo);
                opts.grad_comm = GradCommMode::Partitioned { chunk_bytes: bytes };
                opts.a2a_chunking = A2aChunking::FixedBytes(bytes);
                opts.seed = 171 + seed;
                let routing = lina_model::balanced_routing(&cost.model, 16, batch);
                let graph = lina_model::build_train_step(&cost, &topo, batch, &routing, &opts);
                let mut policy = scheme.policy();
                let exec = lina_runner::execute(&graph, &topo, policy.as_mut());
                steps.push(StepMetrics {
                    step_time: exec.makespan,
                    fwd_layer_time: lina_simcore::SimDuration::ZERO,
                    bwd_layer_time: lina_simcore::SimDuration::ZERO,
                    a2a_total: lina_simcore::SimDuration::ZERO,
                    a2a_bwd_times: vec![],
                    a2a_bwd_slowdowns: vec![],
                    a2a_bwd_overlapped: vec![],
                    pipelining_efficiency: 0.0,
                    compute_util: 0.0,
                });
            }
            let mean =
                steps.iter().map(|m| m.step_time.as_secs_f64()).sum::<f64>() / steps.len() as f64;
            per_size[si].push(mean);
            cells.push(format_secs(mean));
        }
        table.row(&cells);
    }
    report.table(table);
    report.text(
        "paper: 30 MB minimizes the period blocked by all-to-all in most\n\
         cases; beyond 50 MB Transformer-XL and BERT2GPT2 slow down; below\n\
         ~10 MB per-micro-op transmission overhead begins to dominate.",
    );
    for (si, &mb) in sizes_mb.iter().enumerate() {
        report.metric_unit(
            format!("step_time_{}mb_geomean", mb as usize),
            geomean(&per_size[si]),
            "s",
        );
    }
    report
}
