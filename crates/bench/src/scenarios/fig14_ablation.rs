//! Figure 14: communication-scheduler ablation — step-time speedup
//! over Baseline when incrementally enabling priority scheduling,
//! tensor partitioning, and pipelining, plus the fixed heuristic.

use lina_baselines::TrainScheme;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_speedup, geomean, Report, Table};

use crate::ScenarioCtx;

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let steps = ctx.steps;
    let mut table = Table::new(
        "step-time speedup over Baseline (no expert packing anywhere)",
        &[
            "model",
            "experts",
            "fixed",
            "priority",
            "+partition",
            "+pipeline (Lina)",
        ],
    );
    let mut lina_speedups = Vec::new();
    for experts in ctx.pick(&[2usize, 4, 8, 16], &[16]) {
        for model in ctx.training_models(experts) {
            let topo = crate::topo(experts);
            let cost = crate::train_cost(model.clone());
            let batch = crate::train_batch(&model);
            let mean_step = |scheme| {
                let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 161);
                ms.iter().map(|m| m.step_time.as_secs_f64()).sum::<f64>() / ms.len() as f64
            };
            let base = mean_step(TrainScheme::Baseline);
            let lina = base / mean_step(TrainScheme::LinaNoPack);
            lina_speedups.push(lina);
            table.row(&[
                model.name.clone(),
                experts.to_string(),
                format_speedup(base / mean_step(TrainScheme::Fixed)),
                format_speedup(base / mean_step(TrainScheme::PriorityOnly)),
                format_speedup(base / mean_step(TrainScheme::PriorityPartition)),
                format_speedup(lina),
            ]);
        }
    }
    report.table(table);
    report.text(
        "paper: priority alone gives ~10-30% (more at scale); partitioning\n\
         lifts the total to ~1.36-1.42x; pipelining adds little without\n\
         packing; the fixed heuristic gains least. In our fluid network\n\
         model, naive priority cannot defer an allreduce that became ready\n\
         in a compute gap (nothing to preempt), so its gain concentrates in\n\
         the partitioned variants — the paper's GPT-2 column shows the same\n\
         model-specific behaviour.",
    );
    report.metric_unit("lina_nopack_speedup_geomean", geomean(&lina_speedups), "x");
    report
}
