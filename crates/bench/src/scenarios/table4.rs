//! Table 4: average GPU utilization and peak memory usage of
//! 16-expert models under Baseline and Lina (paper: utilization
//! 62-66% -> 78-83%; packing pushes Transformer-XL/GPT-2 into
//! DRAM-offloading).

use lina_baselines::TrainScheme;
use lina_core::PackingController;
use lina_model::MoeModelConfig;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_pct, Report, Table};

use super::mean;
use crate::ScenarioCtx;

/// Analytic peak memory: parameters + gradients + optimizer state for
/// everything resident, plus activation working set for the batch.
fn peak_memory_fraction(
    model: &MoeModelConfig,
    experts_per_device: usize,
    tokens: usize,
    capacity: f64,
) -> f64 {
    let resident_params = (model.non_expert_params()
        + model.layers * model.expert_params() * experts_per_device)
        as f64
        * model.dtype_bytes as f64;
    // fp16 params + fp16 grads + fp32 optimizer moments ~ 6x params.
    let states = 3.0 * resident_params;
    // Activations: ~20 tensors of (tokens x hidden) per layer retained
    // for backward.
    let activations = (tokens * model.hidden * model.dtype_bytes * 20 * model.layers) as f64;
    ((states + activations) / capacity).min(1.0)
}

/// Runs the experiment.
pub fn run(ctx: &ScenarioCtx) -> Report {
    let mut report = Report::new();
    let experts = 16usize;
    let steps = ctx.steps.min(5);
    let paper = [
        ("Transformer-XL", "66.2%", "83.4%", "72.1%", "100%", "yes"),
        ("GPT-2", "62.3%", "78.2%", "83.8%", "100%", "yes"),
        ("BERT2GPT2", "63.5%", "82.5%", "74.3%", "94.2%", "no"),
    ];
    let mut table = Table::new(
        "measured",
        &[
            "model",
            "util base",
            "util lina",
            "mem base",
            "mem lina",
            "offload",
        ],
    );
    let mut ptable = Table::new(
        "paper",
        &[
            "model",
            "util base",
            "util lina",
            "mem base",
            "mem lina",
            "offload",
        ],
    );
    let mut base_utils = Vec::new();
    let mut lina_utils = Vec::new();
    for (model, p) in ctx.training_models(experts).into_iter().zip(paper) {
        let topo = crate::topo(experts);
        let cost = crate::train_cost(model.clone());
        let batch = crate::train_batch(&model);
        let util = |scheme| -> f64 {
            let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 151);
            ms.iter().map(|m| m.compute_util).sum::<f64>() / ms.len() as f64
        };
        let base_util = util(TrainScheme::Baseline);
        let packing = crate::paper_packing(&model);
        let lina_util = util(TrainScheme::Lina {
            experts_per_device: packing,
        });
        let cap = topo.spec().device_memory;
        let tokens = batch.tokens_per_device();
        let mem_base = peak_memory_fraction(&model, 1, tokens, cap);
        let mem_lina = peak_memory_fraction(&model, packing, tokens, cap);
        // The packing controller's own memory check decides offloading.
        let mut ctrl = PackingController::new(experts);
        for _ in 0..packing.trailing_zeros() {
            ctrl.decide(lina_core::PackingObservation {
                ffn_micro: lina_simcore::SimDuration::from_micros(1),
                a2a_micro: lina_simcore::SimDuration::from_micros(1000),
            });
        }
        let plan = ctrl.plan(&cost, &topo);
        base_utils.push(base_util);
        lina_utils.push(lina_util);
        table.row(&[
            model.name.clone(),
            format_pct(base_util),
            format_pct(lina_util),
            format_pct(mem_base),
            format_pct(mem_lina),
            if plan.dram_offloading || mem_lina >= 1.0 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
        ptable.row(&[
            p.0.into(),
            p.1.into(),
            p.2.into(),
            p.3.into(),
            p.4.into(),
            p.5.into(),
        ]);
    }
    report.table(table);
    report.table(ptable);
    report.text(
        "paper: Lina raises average GPU utilization by ~17.6% absolute; expert\n\
         packing raises peak memory (Transformer-XL/GPT-2 offload to DRAM).",
    );
    report.metric_unit("gpu_util_baseline_mean", mean(&base_utils), "frac");
    report.metric_unit("gpu_util_lina_mean", mean(&lina_utils), "frac");
    report
}
