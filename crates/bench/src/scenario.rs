//! The declarative experiment registry.
//!
//! Every table and figure of the paper's evaluation (plus the serving
//! load sweep) is a [`Scenario`]: an id, a paper reference, a size
//! tier-aware `run` function from a [`ScenarioCtx`] to a typed
//! [`Report`]. The registry is the single source of truth that the
//! `reproduce` driver, the per-figure wrapper binaries, the smoke-tier
//! integration test, and CI's `bench_summary.json` artifact all drive.

use lina_model::MoeModelConfig;
use lina_simcore::Report;
use lina_workload::WorkloadSpec;

use crate::scenarios;

/// Experiment size tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Seconds-scale sizes: reduced sweeps, few steps/batches. Used by
    /// CI and the `scenarios_smoke` integration test.
    Smoke,
    /// The historical full sizes (env-var scalable): every sweep point
    /// the per-figure binaries have always run.
    Full,
}

impl Tier {
    /// Parses `"smoke"` / `"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Tier> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Tier::Smoke),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// The tier's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Full => "full",
        }
    }
}

/// Shared experiment sizing passed to every scenario. Scenarios read
/// sizes from here (never from the environment) so a context fully
/// determines a run — the determinism the smoke test asserts.
#[derive(Clone, Debug)]
pub struct ScenarioCtx {
    /// Size tier; scenarios reduce their sweep grids at `Smoke`.
    pub tier: Tier,
    /// Training steps per configuration.
    pub steps: usize,
    /// Inference batches per configuration.
    pub batches: usize,
    /// Inference tokens per device.
    pub tokens_per_device: usize,
    /// Requests per serving load point.
    pub requests: usize,
    /// Profiling batches used to fit the popularity estimator.
    pub profile_batches: usize,
}

impl ScenarioCtx {
    /// Full-tier context with the historical env-var-scalable sizes
    /// (`LINA_STEPS`, `LINA_BATCHES`, `LINA_TOKENS`, `LINA_REQUESTS`).
    pub fn full() -> ScenarioCtx {
        ScenarioCtx {
            tier: Tier::Full,
            steps: crate::steps(),
            batches: crate::batches(),
            tokens_per_device: crate::tokens_per_device(),
            requests: crate::requests(),
            profile_batches: 12,
        }
    }

    /// Smoke-tier context: fixed small sizes, independent of the
    /// environment.
    pub fn smoke() -> ScenarioCtx {
        ScenarioCtx {
            tier: Tier::Smoke,
            steps: 2,
            batches: 2,
            tokens_per_device: 1024,
            requests: 12,
            profile_batches: 3,
        }
    }

    /// The standard context for a tier.
    pub fn for_tier(tier: Tier) -> ScenarioCtx {
        match tier {
            Tier::Smoke => ScenarioCtx::smoke(),
            Tier::Full => ScenarioCtx::full(),
        }
    }

    /// Tier-dependent sweep grid: the full list at `Full`, the reduced
    /// list at `Smoke`.
    pub fn pick<T: Clone>(&self, full: &[T], smoke: &[T]) -> Vec<T> {
        match self.tier {
            Tier::Full => full.to_vec(),
            Tier::Smoke => smoke.to_vec(),
        }
    }

    /// The training model roster: the paper's three models at `Full`,
    /// Transformer-XL alone at `Smoke`.
    pub fn training_models(&self, experts: usize) -> Vec<MoeModelConfig> {
        match self.tier {
            Tier::Full => crate::training_models(experts),
            Tier::Smoke => vec![MoeModelConfig::transformer_xl(24, experts)],
        }
    }

    /// Standard inference setup at this context's batch/token sizes.
    pub fn inference_setup(
        &self,
        spec: &WorkloadSpec,
        devices: usize,
        path_length: usize,
    ) -> crate::InferenceSetup {
        self.inference_setup_with(
            spec,
            devices,
            path_length,
            self.batches,
            self.tokens_per_device,
        )
    }

    /// Inference setup with explicit batch/token overrides (profiling
    /// depth still follows the context).
    pub fn inference_setup_with(
        &self,
        spec: &WorkloadSpec,
        devices: usize,
        path_length: usize,
        n_batches: usize,
        tokens_per_dev: usize,
    ) -> crate::InferenceSetup {
        crate::inference_setup_sized(
            spec,
            devices,
            path_length,
            n_batches,
            tokens_per_dev,
            self.profile_batches,
        )
    }
}

/// One registered experiment.
pub struct Scenario {
    /// Stable id — also the name of the standalone wrapper binary
    /// (e.g. `fig10_step_speedup`).
    pub id: &'static str,
    /// The paper artifact it reproduces (`"Table 1"`, `"Figure 10"`).
    pub paper_ref: &'static str,
    /// One-line description (also the banner subtitle).
    pub description: &'static str,
    /// Runs the experiment at the given sizes.
    pub run: fn(&ScenarioCtx) -> Report,
}

/// Every experiment, in paper order (motivation → design → training
/// evaluation → inference evaluation → serving).
pub const REGISTRY: &[Scenario] = &[
    Scenario {
        id: "table1",
        paper_ref: "Table 1",
        description: "all-to-all completion time and ratio (training & inference)",
        run: scenarios::table1::run,
    },
    Scenario {
        id: "fig2_timeline",
        paper_ref: "Figure 2",
        description: "forward-pass timeline of one MoE layer (419M model)",
        run: scenarios::fig2_timeline::run,
    },
    Scenario {
        id: "fig3_slowdown_cdf",
        paper_ref: "Figure 3",
        description: "CDF of all-to-all slowdown under allreduce overlap (baseline)",
        run: scenarios::fig3_slowdown_cdf::run,
    },
    Scenario {
        id: "fig4_expert_sweep",
        paper_ref: "Figure 4",
        description: "all-to-all share of step time vs number of experts",
        run: scenarios::fig4_expert_sweep::run,
    },
    Scenario {
        id: "fig5_backward_timeline",
        paper_ref: "Figure 5",
        description: "backward-pass timeline: all-to-all prolonged by allreduce (GPT-2)",
        run: scenarios::fig5_backward_timeline::run,
    },
    Scenario {
        id: "fig6_popularity",
        paper_ref: "Figure 6",
        description: "expert popularity: training vs inference (enwik8)",
        run: scenarios::fig6_popularity::run,
    },
    Scenario {
        id: "fig7_schedules",
        paper_ref: "Figure 7",
        description: "scheduling strategies for backward all-to-all + allreduce",
        run: scenarios::fig7_schedules::run,
    },
    Scenario {
        id: "fig8_microops",
        paper_ref: "Figure 8",
        description: "tensor partitioning and pipelined micro-ops (Lina)",
        run: scenarios::fig8_microops::run,
    },
    Scenario {
        id: "fig9_pattern",
        paper_ref: "Figure 9",
        description: "token-level expert-selection pattern across layers",
        run: scenarios::fig9_pattern::run,
    },
    Scenario {
        id: "table2",
        paper_ref: "Table 2",
        description: "top-4 popular experts per layer (12-expert inference)",
        run: scenarios::table2::run,
    },
    Scenario {
        id: "fig10_step_speedup",
        paper_ref: "Figure 10",
        description: "training step-time speedup of Lina",
        run: scenarios::fig10_step_speedup::run,
    },
    Scenario {
        id: "fig11_12_layer_speedup",
        paper_ref: "Figures 11/12",
        description: "MoE-layer forward and backward speedup",
        run: scenarios::fig11_12_layer_speedup::run,
    },
    Scenario {
        id: "fig13_a2a_speedup",
        paper_ref: "Figure 13",
        description: "backward all-to-all time speedup",
        run: scenarios::fig13_a2a_speedup::run,
    },
    Scenario {
        id: "table3",
        paper_ref: "Table 3",
        description: "pipelining efficiency with/without expert packing",
        run: scenarios::table3::run,
    },
    Scenario {
        id: "table4",
        paper_ref: "Table 4",
        description: "GPU utilization and peak memory (16-expert models)",
        run: scenarios::table4::run,
    },
    Scenario {
        id: "fig14_ablation",
        paper_ref: "Figure 14",
        description: "scheduler ablation: priority / +partitioning / +pipelining / fixed",
        run: scenarios::fig14_ablation::run,
    },
    Scenario {
        id: "fig15_partition_size",
        paper_ref: "Figure 15",
        description: "partition-size sweep (16-expert models)",
        run: scenarios::fig15_partition_size::run,
    },
    Scenario {
        id: "fig16_inference",
        paper_ref: "Figure 16",
        description: "median/95%ile inference time normalized to Ideal",
        run: scenarios::fig16_inference::run,
    },
    Scenario {
        id: "fig17_layer_time",
        paper_ref: "Figure 17",
        description: "95%ile MoE-layer time, Baseline vs Lina",
        run: scenarios::fig17_layer_time::run,
    },
    Scenario {
        id: "fig18_a2a_tail",
        paper_ref: "Figure 18",
        description: "tail all-to-all time per layer (16-expert)",
        run: scenarios::fig18_a2a_tail::run,
    },
    Scenario {
        id: "fig19_accuracy",
        paper_ref: "Figure 19",
        description: "estimation accuracy per layer (16-expert)",
        run: scenarios::fig19_accuracy::run,
    },
    Scenario {
        id: "table5",
        paper_ref: "Table 5",
        description: "sample-path length sweep (16-expert models)",
        run: scenarios::table5::run,
    },
    Scenario {
        id: "table6",
        paper_ref: "Table 6",
        description: "generalizability across tasks and datasets (l = 3)",
        run: scenarios::table6::run,
    },
    Scenario {
        id: "serve_load_sweep",
        paper_ref: "Serving sweep",
        description: "open-loop latency vs offered load (Transformer-XL, 16 experts)",
        run: scenarios::serve_load_sweep::run,
    },
    Scenario {
        id: "serve_autoscale",
        paper_ref: "Serving autoscale",
        description: "elastic autoscaling: trace shape x policy x SLO cost-vs-attainment frontier",
        run: scenarios::serve_autoscale::run,
    },
    Scenario {
        id: "serve_cluster",
        paper_ref: "Serving cluster",
        description: "multi-replica serving: load balancer x estimator sharing under drift",
        run: scenarios::serve_cluster::run,
    },
    Scenario {
        id: "serve_contention",
        paper_ref: "Serving contention",
        description: "solo vs contended collective pricing under bursty overlap",
        run: scenarios::serve_contention::run,
    },
    Scenario {
        id: "serve_resharding",
        paper_ref: "Serving resharding",
        description: "proactive expert re-sharding: drift rate x policy x transfer cost vs epoch re-placement",
        run: scenarios::serve_resharding::run,
    },
    Scenario {
        id: "serve_affinity",
        paper_ref: "Serving affinity",
        description: "inter-layer affinity placement: map correlation x placement arm under locality-aware all-to-alls",
        run: scenarios::serve_affinity::run,
    },
    Scenario {
        id: "serve_faults",
        paper_ref: "Serving faults",
        description: "fault injection: crash intensity x recovery x degradation policy",
        run: scenarios::serve_faults::run,
    },
    Scenario {
        id: "serve_gray",
        paper_ref: "Serving gray faults",
        description: "gray-failure detection and hedged dispatch: gray intensity x {oracle, detector, detector+hedging}",
        run: scenarios::serve_gray::run,
    },
    Scenario {
        id: "perf_microbench",
        paper_ref: "Simulator perf",
        description: "simulator throughput: reference vs fast perf config on one trace",
        run: scenarios::perf_microbench::run,
    },
];

/// Looks up a scenario by id.
pub fn find(id: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.id == id)
}

/// Entry point for the thin per-figure wrapper binaries: runs the
/// scenario at `Full` tier and reprints the historical stdout (banner,
/// tables, notes).
///
/// # Panics
///
/// Panics if `id` is not registered.
pub fn run_standalone(id: &str) {
    let scenario = find(id).unwrap_or_else(|| panic!("unknown scenario id {id:?}"));
    crate::banner(scenario.paper_ref, scenario.description);
    let report = (scenario.run)(&ScenarioCtx::full());
    print!("{}", report.render());
}

/// Lowercases a display name into a metric-friendly slug
/// (`"Transformer-XL"` → `"transformer_xl"`).
pub fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_32_experiments() {
        assert_eq!(REGISTRY.len(), 32);
        let mut ids: Vec<&str> = REGISTRY.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 32, "scenario ids must be unique");
        assert!(find("table1").is_some());
        assert!(find("perf_microbench").is_some());
        assert!(find("serve_load_sweep").is_some());
        assert!(find("serve_autoscale").is_some());
        assert!(find("serve_cluster").is_some());
        assert!(find("serve_contention").is_some());
        assert!(find("serve_faults").is_some());
        assert!(find("serve_gray").is_some());
        assert!(find("serve_resharding").is_some());
        assert!(find("serve_affinity").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn tier_parsing() {
        assert_eq!(Tier::parse("smoke"), Some(Tier::Smoke));
        assert_eq!(Tier::parse("Full"), Some(Tier::Full));
        assert_eq!(Tier::parse("medium"), None);
        assert_eq!(Tier::Smoke.name(), "smoke");
    }

    #[test]
    fn slugs() {
        assert_eq!(slug("Transformer-XL"), "transformer_xl");
        assert_eq!(slug("BERT-Large"), "bert_large");
        assert_eq!(slug("WMT French"), "wmt_french");
    }

    #[test]
    fn smoke_ctx_is_small() {
        let ctx = ScenarioCtx::smoke();
        assert!(ctx.steps <= 4 && ctx.batches <= 4 && ctx.tokens_per_device <= 4096);
        assert_eq!(ctx.pick(&[2, 4, 8, 16], &[16]), vec![16]);
        assert_eq!(ctx.training_models(8).len(), 1);
        let full = ScenarioCtx::for_tier(Tier::Full);
        assert_eq!(full.pick(&[2, 4, 8, 16], &[16]), vec![2, 4, 8, 16]);
        assert_eq!(full.training_models(8).len(), 3);
    }
}
