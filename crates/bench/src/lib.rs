//! # lina-bench
//!
//! The declarative experiment layer that regenerates every table and
//! figure of the paper's evaluation (see `DESIGN.md` §3 for the full
//! index). Each experiment is a [`Scenario`] in the [`REGISTRY`]: a
//! tier-sized function from a [`ScenarioCtx`] to a typed
//! [`lina_simcore::Report`] (plain-text tables plus named metrics).
//! The `reproduce` binary drives the whole registry — `--list`,
//! `--only <id>`, `--tier smoke|full`, `--threads N`, `--json <path>`
//! — and every historical per-figure binary remains as a thin wrapper
//! over its registry entry, printing the same stdout as always.
//!
//! Full-tier experiment sizes default to quick-but-representative
//! settings and scale up via environment variables:
//!
//! * `LINA_STEPS` — training steps per configuration (default 8),
//! * `LINA_BATCHES` — inference batches per configuration (default 12),
//! * `LINA_TOKENS` — inference tokens per device (default 16384),
//! * `LINA_REQUESTS` — requests per serving run (default 256).

#![warn(missing_docs)]

pub mod scenario;
pub mod scenarios;

pub use scenario::{find, run_standalone, slug, Scenario, ScenarioCtx, Tier, REGISTRY};

use lina_baselines::TrainScheme;
use lina_core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina_model::{BatchShape, CostModel, DeviceSpec, MoeModelConfig};
use lina_netsim::{ClusterSpec, Topology};
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

/// Training steps per configuration.
pub fn steps() -> usize {
    env_usize("LINA_STEPS", 8)
}

/// Inference batches per configuration.
pub fn batches() -> usize {
    env_usize("LINA_BATCHES", 12)
}

/// Inference tokens per device.
pub fn tokens_per_device() -> usize {
    env_usize("LINA_TOKENS", 16_384)
}

/// Requests per serving run (`serve_load_sweep`).
pub fn requests() -> usize {
    env_usize("LINA_REQUESTS", 256)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The benchmark batch shape used throughout training experiments
/// (chosen so the per-device all-to-all tensor is ~67-100 MB, giving
/// the paper's ~37% all-to-all step-time share and several 30 MB
/// micro-ops per tensor).
pub fn train_batch(model: &MoeModelConfig) -> BatchShape {
    BatchShape {
        seqs_per_device: 64,
        seq_len: model.seq_len,
    }
}

/// Training cost model for a model preset.
pub fn train_cost(model: MoeModelConfig) -> CostModel {
    CostModel::new(DeviceSpec::a100(), model)
}

/// Inference cost model (decode-efficiency device profile, top-1 gate).
pub fn infer_cost(model: MoeModelConfig) -> CostModel {
    CostModel::new(DeviceSpec::a100_inference(), model.for_inference())
}

/// Topology for an expert count (experts == GPUs; small jobs scatter
/// across nodes the way the shared cluster allocates them — see
/// `ClusterSpec::with_total_gpus`).
pub fn topo(experts: usize) -> Topology {
    Topology::new(ClusterSpec::with_total_gpus(experts))
}

/// The paper's training model roster: Transformer-XL (24L), GPT-2,
/// BERT2GPT2.
pub fn training_models(experts: usize) -> Vec<MoeModelConfig> {
    vec![
        MoeModelConfig::transformer_xl(24, experts),
        MoeModelConfig::gpt2(experts),
        MoeModelConfig::bert2gpt2(experts),
    ]
}

/// The paper's packing outcome per setting (§7.2): 2 experts per device
/// everywhere except 16-expert Transformer-XL, which uses 4.
pub fn paper_packing(model: &MoeModelConfig) -> usize {
    if model.name == "Transformer-XL" && model.experts == 16 {
        4
    } else {
        2.min(model.experts)
    }
}

/// The full Lina training scheme for a model.
pub fn lina_scheme(model: &MoeModelConfig) -> TrainScheme {
    TrainScheme::Lina {
        experts_per_device: paper_packing(model),
    }
}

/// Workload spec for an inference model preset.
pub fn workload_for(model: &MoeModelConfig, experts: usize, layers: usize) -> WorkloadSpec {
    match model.name.as_str() {
        "Transformer-XL" => WorkloadSpec::enwik8(experts, layers),
        "BERT-Large" => WorkloadSpec::wmt_en_de(experts, layers),
        "T5" => WorkloadSpec::wmt_fr(experts, layers),
        _ => WorkloadSpec::enwik8(experts, layers),
    }
}

/// Builds a profiled two-phase scheduler plus inference batches for a
/// workload: profiling uses training-distribution data (as the paper's
/// profiling stage does), inference uses the skewed request stream.
pub struct InferenceSetup {
    /// The profiled scheduler.
    pub scheduler: TwoPhaseScheduler,
    /// Inference batches.
    pub batches: Vec<TokenBatch>,
}

/// Standard inference setup for a workload spec (12 profiling
/// batches, the historical full-tier depth).
pub fn inference_setup(
    spec: &WorkloadSpec,
    devices: usize,
    path_length: usize,
    n_batches: usize,
    tokens_per_dev: usize,
) -> InferenceSetup {
    inference_setup_sized(spec, devices, path_length, n_batches, tokens_per_dev, 12)
}

/// Inference setup with an explicit profiling depth (the smoke tier
/// profiles fewer batches).
pub fn inference_setup_sized(
    spec: &WorkloadSpec,
    devices: usize,
    path_length: usize,
    n_batches: usize,
    tokens_per_dev: usize,
    profile_batches: usize,
) -> InferenceSetup {
    let mut profile_src = TokenSource::new(spec, 1, 0xBEEF);
    let profile: Vec<TokenBatch> = (0..profile_batches)
        .map(|_| profile_src.sample_batch(devices, 2048, Mode::Train))
        .collect();
    let estimator = PopularityEstimator::profile(&profile, path_length);
    let config = TwoPhaseConfig::paper_defaults(devices);
    let scheduler = TwoPhaseScheduler::new(config, estimator);
    let mut infer_src = TokenSource::new(spec, 1, 0xCAFE);
    let batches = (0..n_batches)
        .map(|_| infer_src.sample_batch(devices, tokens_per_dev, Mode::Inference))
        .collect();
    InferenceSetup { scheduler, batches }
}

/// Formats an optional rate (e.g. [`InferenceSummary::accuracy`]) as a
/// percentage, or `-` when the scheme never produced an estimate.
///
/// [`InferenceSummary::accuracy`]: lina_runner::inference::InferenceSummary::accuracy
pub fn format_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "-".into(),
    }
}

/// Prints a standard header for a benchmark binary.
pub fn banner(id: &str, description: &str) {
    println!("==================================================================");
    println!("{id}: {description}");
    println!("(paper: Accelerating Distributed MoE Training and Inference with");
    println!(" Lina, USENIX ATC 2023 — simulated reproduction)");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_matches_paper() {
        assert_eq!(paper_packing(&MoeModelConfig::transformer_xl(24, 16)), 4);
        assert_eq!(paper_packing(&MoeModelConfig::transformer_xl(24, 8)), 2);
        assert_eq!(paper_packing(&MoeModelConfig::gpt2(16)), 2);
        assert_eq!(paper_packing(&MoeModelConfig::transformer_xl(24, 2)), 2);
    }

    #[test]
    fn setup_builds() {
        let spec = WorkloadSpec::enwik8(4, 12);
        let s = inference_setup(&spec, 4, 3, 2, 256);
        assert_eq!(s.batches.len(), 2);
        assert_eq!(s.scheduler.estimator().path_length(), 3);
    }

    #[test]
    fn roster_is_three_models() {
        assert_eq!(training_models(4).len(), 3);
    }
}
