//! Table 2: the top-4 popular experts of sampled MoE layers differ
//! completely across layers of the same model.

use lina_bench as bench;
use lina_simcore::Table;
use lina_workload::{top_experts, Mode, TokenSource, WorkloadSpec};

fn main() {
    bench::banner(
        "Table 2",
        "top-4 popular experts per layer (12-expert inference)",
    );
    for (name, spec) in [
        (
            "Transformer-XL & enwik8 (text generation)",
            WorkloadSpec::enwik8(12, 12),
        ),
        (
            "BERT-Large & WMT En-De (translation)",
            WorkloadSpec::wmt_en_de(12, 12),
        ),
    ] {
        let mut src = TokenSource::new(&spec, 1, 22);
        let batch = src.sample_batch(12, 4096, Mode::Inference);
        let mut table = Table::new(name, &["layer", "top-1", "top-2", "top-3", "top-4"]);
        for layer in [3usize, 4, 8, 11] {
            let top = top_experts(&batch, layer, 4);
            table.row(&[
                layer.to_string(),
                top[0].to_string(),
                top[1].to_string(),
                top[2].to_string(),
                top[3].to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "paper's observation: every sampled layer has a different top-4 set,\n\
         so resource scheduling must be per-layer."
    );
}
