//! Thin wrapper: runs the `serve_affinity` scenario from the registry
//! at the `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/serve_affinity.rs` for the
//! experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
