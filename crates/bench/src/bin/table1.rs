//! Table 1: all-to-all completion time and its share of step/batch
//! time for Transformer-XL at 12/24/36 layers and 4/16 experts.

use lina_baselines::{InferScheme, TrainScheme};
use lina_bench as bench;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_runner::train::run_train_steps;
use lina_simcore::{format_pct, format_secs, Table};

fn main() {
    bench::banner(
        "Table 1",
        "all-to-all completion time and ratio (training & inference)",
    );
    let mut table = Table::new(
        "Transformer-XL, baseline (DeepSpeed-like) system",
        &[
            "experts",
            "layers",
            "params",
            "train a2a",
            "train ratio",
            "infer a2a",
            "infer ratio",
        ],
    );
    // Paper-reported values for the shape comparison.
    let paper = [
        (4, 12, "259ms", "36.7%", "73ms", "27.4%"),
        (4, 24, "589ms", "35.4%", "103ms", "26.2%"),
        (4, 36, "979ms", "38.2%", "153ms", "28.3%"),
        (16, 12, "333ms", "39.5%", "102ms", "32.5%"),
        (16, 24, "715ms", "37.6%", "177ms", "31.7%"),
        (16, 36, "1145ms", "36.8%", "243ms", "27.4%"),
    ];
    let steps = bench::steps().min(5);
    for experts in [4usize, 16] {
        for layers in [12usize, 24, 36] {
            let model = MoeModelConfig::transformer_xl(layers, experts);
            let topo = bench::topo(experts);
            let params = model.total_params() as f64 / 1e6;

            // Training.
            let cost = bench::train_cost(model.clone());
            let batch = bench::train_batch(&model);
            let metrics = run_train_steps(&cost, &topo, batch, TrainScheme::Baseline, steps, 7);
            let a2a: f64 = metrics
                .iter()
                .map(|m| m.a2a_total.as_secs_f64())
                .sum::<f64>()
                / metrics.len() as f64;
            let step: f64 = metrics
                .iter()
                .map(|m| m.step_time.as_secs_f64())
                .sum::<f64>()
                / metrics.len() as f64;

            // Inference (same batch size, per the paper's note).
            let icost = bench::infer_cost(model.clone());
            let spec = bench::workload_for(&model, experts, layers);
            let setup = bench::inference_setup(
                &spec,
                experts,
                3,
                bench::batches().min(6),
                batch.tokens_per_device(),
            );
            let mut summary = run_inference_batches(
                &icost,
                &topo,
                &InferenceConfig {
                    scheme: InferScheme::Baseline,
                    top_k: 1,
                },
                None,
                &setup.batches,
            );
            let infer_total = summary.totals.median();
            let infer_a2a = summary.a2a_times.sum();
            let infer_a2a_per_batch = infer_a2a / setup.batches.len() as f64;

            table.row(&[
                experts.to_string(),
                layers.to_string(),
                format!("{params:.0}M"),
                format_secs(a2a),
                format_pct(a2a / step),
                format_secs(infer_a2a_per_batch),
                format_pct(infer_a2a_per_batch / infer_total),
            ]);
        }
    }
    println!("{}", table.render());

    let mut ptable = Table::new(
        "paper-reported values",
        &[
            "experts",
            "layers",
            "train a2a",
            "ratio",
            "infer a2a",
            "ratio",
        ],
    );
    for (e, l, ta, tr, ia, ir) in paper {
        ptable.row(&[
            e.to_string(),
            l.to_string(),
            ta.into(),
            tr.into(),
            ia.into(),
            ir.into(),
        ]);
    }
    println!("{}", ptable.render());
    println!(
        "shape check: all-to-all is a consistent ~25-45% of both training and\n\
         inference time, growing with layer count and expert count."
    );
}
