//! Table 5: impact of the sample-path length `l` on inference time,
//! fine-tuning rate, and estimation accuracy (paper, l = 1/3/6:
//! accuracy 31.6/60.4/71.4%, fine-tuning 76.5/25.7/22.5%, normalized
//! median 1.41/1.16/1.19 for Transformer-XL).

use lina_baselines::InferScheme;
use lina_bench as bench;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::Table;

fn main() {
    bench::banner("Table 5", "sample-path length sweep (16-expert models)");
    for model in [
        MoeModelConfig::transformer_xl(12, 16),
        MoeModelConfig::bert_large(16),
    ] {
        let experts = 16;
        let topo = bench::topo(experts);
        let cost = bench::infer_cost(model.clone());
        let spec = bench::workload_for(&model, experts, model.layers);
        let mut table = Table::new(
            model.name.clone(),
            &[
                "path len",
                "norm median",
                "norm p95",
                "fine-tune",
                "accuracy",
            ],
        );
        for l in [1usize, 3, 6] {
            let setup = bench::inference_setup(
                &spec,
                experts,
                l,
                bench::batches(),
                bench::tokens_per_device(),
            );
            let run = |scheme| {
                run_inference_batches(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    &setup.batches,
                )
            };
            let mut ideal = run(InferScheme::Ideal);
            let mut lina = run(InferScheme::Lina);
            table.row(&[
                l.to_string(),
                format!("{:.2}", lina.totals.median() / ideal.totals.median()),
                format!("{:.2}", lina.totals.p95() / ideal.totals.p95()),
                bench::format_rate(lina.finetune_rate()),
                bench::format_rate(lina.accuracy()),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "paper (Transformer-XL): l=1 gives 31.6% accuracy and 76.5% fine-tune\n\
         rate (normalized median 1.41); l=3 reaches 60.4% / 25.7% (1.16);\n\
         l=6 improves accuracy further but starts scheduling later, so the\n\
         end-to-end time does not improve."
    );
}
