//! Thin wrapper: runs the `table6` scenario from the registry at the
//! `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/table6.rs` for the experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
