//! Table 6: generalizability of the popularity estimation across tasks
//! and datasets (paper: normalized 95%ile inference time 1.04-1.11 and
//! estimation accuracy 62.3-68.8% with l = 3).

use lina_baselines::InferScheme;
use lina_bench as bench;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::Table;
use lina_workload::WorkloadSpec;

fn main() {
    bench::banner(
        "Table 6",
        "generalizability across tasks and datasets (l = 3)",
    );
    let experts = 16usize;
    let cases: [(&str, &str, WorkloadSpec, MoeModelConfig); 4] = [
        (
            "sentiment",
            "IMDB reviews",
            WorkloadSpec::imdb(experts, 12),
            MoeModelConfig::bert_large(experts),
        ),
        (
            "sentiment",
            "Twitter",
            WorkloadSpec::twitter(experts, 12),
            MoeModelConfig::bert_large(experts),
        ),
        (
            "translation",
            "WMT French",
            WorkloadSpec::wmt_fr(experts, 12),
            MoeModelConfig::t5(experts),
        ),
        (
            "translation",
            "WMT Russian",
            WorkloadSpec::wmt_ru(experts, 12),
            MoeModelConfig::t5(experts),
        ),
    ];
    let paper = [
        ("1.08", "64.4%"),
        ("1.11", "62.3%"),
        ("1.04", "68.8%"),
        ("1.08", "62.5%"),
    ];
    let mut table = Table::new(
        "Lina vs Ideal per task",
        &[
            "task",
            "dataset",
            "model",
            "norm p95",
            "accuracy",
            "paper p95",
            "paper acc",
        ],
    );
    for ((task, dataset, spec, model), (pp, pa)) in cases.into_iter().zip(paper) {
        let topo = bench::topo(experts);
        let cost = bench::infer_cost(model.clone());
        let setup = bench::inference_setup(
            &spec,
            experts,
            3,
            bench::batches(),
            bench::tokens_per_device(),
        );
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&setup.scheduler),
                &setup.batches,
            )
        };
        let mut ideal = run(InferScheme::Ideal);
        let mut lina = run(InferScheme::Lina);
        table.row(&[
            task.into(),
            dataset.into(),
            model.name.clone(),
            format!("{:.2}", lina.totals.p95() / ideal.totals.p95()),
            bench::format_rate(lina.accuracy()),
            pp.into(),
            pa.into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper's takeaway: the estimation approach transfers across tasks; it\n\
         is profiled per task, so accuracy stays in a consistent band."
    );
}
