//! Thin wrapper: runs the `serve_gray` scenario from the registry at the
//! `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/serve_gray.rs` for the experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
