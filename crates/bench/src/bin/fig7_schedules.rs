//! Figure 7: backward-pass scheduling case study — baseline
//! fair-share, naive priority, and fixed deferral, measured on the
//! same two-MoE-layer backward window.

use lina_baselines::TrainScheme;
use lina_bench as bench;
use lina_model::MoeModelConfig;
use lina_runner::train::run_train_step;
use lina_simcore::{format_secs, Table};

fn main() {
    bench::banner(
        "Figure 7",
        "scheduling strategies for backward all-to-all + allreduce",
    );
    let model = MoeModelConfig::gpt2(16);
    let topo = bench::topo(16);
    let cost = bench::train_cost(model.clone());
    let batch = bench::train_batch(&model);

    let mut table = Table::new(
        "one training step of the 16-expert GPT-2 model",
        &["strategy", "step time", "mean bwd a2a", "mean a2a slowdown"],
    );
    for (scheme, label) in [
        (TrainScheme::Baseline, "(a) baseline fair-share"),
        (TrainScheme::PriorityOnly, "(b) naive priority"),
        (TrainScheme::Fixed, "(c) fixed deferral"),
        (
            TrainScheme::PriorityPartition,
            "(d) priority + partitioning",
        ),
    ] {
        let m = run_train_step(&cost, &topo, batch, scheme, 5).metrics;
        let mean_a2a: f64 = m.a2a_bwd_times.iter().map(|d| d.as_secs_f64()).sum::<f64>()
            / m.a2a_bwd_times.len().max(1) as f64;
        let mean_slow: f64 =
            m.a2a_bwd_slowdowns.iter().sum::<f64>() / m.a2a_bwd_slowdowns.len().max(1) as f64;
        table.row(&[
            label.into(),
            format_secs(m.step_time.as_secs_f64()),
            format_secs(mean_a2a),
            format!("{mean_slow:.2}x"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper's case study (Figure 7): naive priority can be no better than\n\
         the baseline because a launched allreduce cannot be preempted, and\n\
         fixed deferral helps but cannot opportunistically use the gaps; the\n\
         paper's oracle (d) needs exact arrival/running times. Partitioned\n\
         micro-ops (Lina, Figure 8) approach the oracle without that\n\
         knowledge."
    );
}
