//! Thin wrapper: runs the `fig18_a2a_tail` scenario from the registry at the
//! `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/fig18_a2a_tail.rs` for the experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
