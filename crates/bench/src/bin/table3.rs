//! Table 3: pipelining efficiency with and without expert packing
//! (paper, 16-expert: 33-36% without packing, 79-86% with).

use lina_baselines::TrainScheme;
use lina_bench as bench;
use lina_runner::train::run_train_steps;
use lina_simcore::{format_pct, Table};

fn main() {
    bench::banner(
        "Table 3",
        "pipelining efficiency with/without expert packing",
    );
    let experts = 16usize;
    let steps = bench::steps().min(5);
    let mut table = Table::new(
        "16-expert models",
        &[
            "model",
            "w/o packing",
            "w/ packing",
            "experts/device",
            "paper w/o",
            "paper w/",
        ],
    );
    let paper = [
        ("Transformer-XL", "33%", "86%"),
        ("GPT-2", "36%", "85%"),
        ("BERT2GPT2", "34%", "79%"),
    ];
    for (model, (_, pwo, pw)) in bench::training_models(experts).into_iter().zip(paper) {
        let topo = bench::topo(experts);
        let cost = bench::train_cost(model.clone());
        let batch = bench::train_batch(&model);
        let pipeline_eff = |scheme| -> f64 {
            let ms = run_train_steps(&cost, &topo, batch, scheme, steps, 141);
            ms.iter().map(|m| m.pipelining_efficiency).sum::<f64>() / ms.len() as f64
        };
        let without = pipeline_eff(TrainScheme::LinaNoPack);
        let packing = bench::paper_packing(&model);
        let with = pipeline_eff(TrainScheme::Lina {
            experts_per_device: packing,
        });
        table.row(&[
            model.name.clone(),
            format_pct(without),
            format_pct(with),
            packing.to_string(),
            pwo.into(),
            pw.into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "pipelining efficiency = fraction of all-to-all time during which the\n\
         same device's compute stream is busy. Packing lengthens the expert\n\
         FFN micro-op towards the all-to-all micro-op, filling the pipeline."
    );
}
