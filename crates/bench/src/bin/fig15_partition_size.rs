//! Thin wrapper: runs the `fig15_partition_size` scenario from the registry at the
//! `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/fig15_partition_size.rs` for the experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
