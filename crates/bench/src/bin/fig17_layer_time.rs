//! Figure 17: 95th-percentile MoE-layer time of Baseline vs Lina at
//! 8 and 16 experts (paper: reduced 1.87x/1.77x for Transformer-XL and
//! 1.58x/1.81x for BERT-Large).

use lina_baselines::InferScheme;
use lina_bench as bench;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::{format_secs, format_speedup, Table};

fn main() {
    bench::banner("Figure 17", "95%ile MoE-layer time, Baseline vs Lina");
    let mut table = Table::new(
        "per-layer (gate..combine) p95 across batches",
        &[
            "model",
            "experts",
            "baseline p95",
            "lina p95",
            "reduction",
            "paper",
        ],
    );
    let paper = [
        ("Transformer-XL", 8, "1.87x"),
        ("Transformer-XL", 16, "1.77x"),
        ("BERT-Large", 8, "1.58x"),
        ("BERT-Large", 16, "1.81x"),
    ];
    let mut pi = 0;
    for model_ctor in [
        MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig,
        |_l, e| MoeModelConfig::bert_large(e),
    ] {
        for experts in [8usize, 16] {
            let model = model_ctor(12, experts);
            let topo = bench::topo(experts);
            let cost = bench::infer_cost(model.clone());
            let spec = bench::workload_for(&model, experts, model.layers);
            let setup = bench::inference_setup(
                &spec,
                experts,
                3,
                bench::batches(),
                bench::tokens_per_device(),
            );
            let p95 = |scheme| {
                let mut s = run_inference_batches(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    &setup.batches,
                );
                s.layer_times.p95()
            };
            let base = p95(InferScheme::Baseline);
            let lina = p95(InferScheme::Lina);
            table.row(&[
                model.name.clone(),
                experts.to_string(),
                format_secs(base),
                format_secs(lina),
                format_speedup(base / lina),
                paper[pi].2.into(),
            ]);
            pi += 1;
        }
    }
    println!("{}", table.render());
}
