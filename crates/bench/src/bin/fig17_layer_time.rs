//! Thin wrapper: runs the `fig17_layer_time` scenario from the registry at the
//! `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/fig17_layer_time.rs` for the experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
