//! Runs the entire evaluation — every registered table and figure
//! scenario — in paper order, in-process, with optional parallelism
//! and a machine-readable summary:
//!
//! ```text
//! cargo run --release -p lina-bench --bin reproduce -- [flags]
//!
//!   --list            print the registry (id, paper ref, description)
//!   --only <id>       run only this scenario (repeatable)
//!   --tier smoke|full experiment sizes (default: full)
//!   --threads <N>     worker threads (default: available parallelism)
//!   --json <path>     write a consolidated bench_summary.json
//! ```
//!
//! Full-tier scale knobs: `LINA_STEPS`, `LINA_BATCHES`, `LINA_TOKENS`,
//! `LINA_REQUESTS`.

use std::time::Instant;

use lina_bench::{Scenario, ScenarioCtx, Tier, REGISTRY};
use lina_runner::sweep::{default_threads, parallel_map};
use lina_simcore::{Json, Report};

struct Args {
    list: bool,
    only: Vec<String>,
    tier: Tier,
    threads: usize,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        list: false,
        only: Vec::new(),
        tier: Tier::Full,
        threads: default_threads(),
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => args.list = true,
            "--only" => {
                let id = it.next().ok_or("--only needs a scenario id")?;
                if lina_bench::find(&id).is_none() {
                    return Err(format!(
                        "unknown scenario id {id:?}; use --list to see the registry"
                    ));
                }
                args.only.push(id);
            }
            "--tier" => {
                let t = it.next().ok_or("--tier needs smoke|full")?;
                args.tier =
                    Tier::parse(&t).ok_or_else(|| format!("unknown tier {t:?} (smoke|full)"))?;
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                args.threads = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad thread count {n:?}"))?
                    .max(1);
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn print_list() {
    let mut table = lina_simcore::Table::new(
        "registered scenarios (run one with --only <id>)",
        &["id", "paper ref", "description"],
    );
    for s in REGISTRY {
        table.row(&[s.id.into(), s.paper_ref.into(), s.description.into()]);
    }
    print!("{}", table.render());
}

fn summary_json(
    tier: Tier,
    threads: usize,
    wall_secs: f64,
    runs: &[(&'static Scenario, Report, f64)],
) -> Json {
    let scenarios = runs
        .iter()
        .map(|(s, report, secs)| {
            let mut fields = vec![
                ("id".to_string(), Json::str(s.id)),
                ("paper_ref".to_string(), Json::str(s.paper_ref)),
                ("description".to_string(), Json::str(s.description)),
                ("wall_secs".to_string(), Json::Num(*secs)),
            ];
            match report.to_json() {
                Json::Obj(inner) => fields.extend(inner),
                other => fields.push(("report".to_string(), other)),
            }
            Json::Obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::Num(1.0)),
        ("tier", Json::str(tier.name())),
        ("threads", Json::Num(threads as f64)),
        ("wall_secs", Json::Num(wall_secs)),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("reproduce: {e}");
            std::process::exit(2);
        }
    };
    if args.list {
        print_list();
        return;
    }
    let selected: Vec<&'static Scenario> = if args.only.is_empty() {
        REGISTRY.iter().collect()
    } else {
        // Keep registry (paper) order even when --only flags are
        // given out of order.
        REGISTRY
            .iter()
            .filter(|s| args.only.iter().any(|id| id == s.id))
            .collect()
    };
    let ctx = ScenarioCtx::for_tier(args.tier);
    let start = Instant::now();
    let reports = parallel_map(&selected, args.threads, |s| {
        let t0 = Instant::now();
        let report = (s.run)(&ctx);
        (report, t0.elapsed().as_secs_f64())
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let runs: Vec<(&'static Scenario, Report, f64)> = selected
        .iter()
        .zip(reports)
        .map(|(s, (report, secs))| (*s, report, secs))
        .collect();
    for (s, report, _) in &runs {
        println!("\n################ {} ################\n", s.id);
        lina_bench::banner(s.paper_ref, s.description);
        print!("{}", report.render());
    }
    println!("\n================================================================");
    println!(
        "{} scenario(s) completed at tier {} in {wall_secs:.1}s on {} thread(s)",
        runs.len(),
        args.tier.name(),
        args.threads
    );
    if let Some(path) = &args.json {
        let json = summary_json(args.tier, args.threads, wall_secs, &runs);
        if let Err(e) = std::fs::write(path, json.render_pretty()) {
            eprintln!("reproduce: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
