//! Runs the entire evaluation — every table and figure binary — in
//! paper order. Useful for regenerating `EXPERIMENTS.md`'s measured
//! column in one go:
//!
//! ```text
//! cargo run --release -p lina-bench --bin reproduce
//! ```
//!
//! Scale knobs: `LINA_STEPS`, `LINA_BATCHES`, `LINA_TOKENS`.

use std::process::Command;

const BINARIES: &[&str] = &[
    "table1",
    "fig2_timeline",
    "fig3_slowdown_cdf",
    "fig4_expert_sweep",
    "fig5_backward_timeline",
    "fig6_popularity",
    "fig7_schedules",
    "fig8_microops",
    "fig9_pattern",
    "table2",
    "fig10_step_speedup",
    "fig11_12_layer_speedup",
    "fig13_a2a_speedup",
    "table3",
    "table4",
    "fig14_ablation",
    "fig15_partition_size",
    "fig16_inference",
    "fig17_layer_time",
    "fig18_a2a_tail",
    "fig19_accuracy",
    "table5",
    "table6",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe directory").to_path_buf();
    let start = std::time::Instant::now();
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed in {:.0?}",
            BINARIES.len(),
            start.elapsed()
        );
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
