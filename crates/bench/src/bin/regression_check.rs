//! Result-regression gate over `bench_summary.json` artifacts.
//!
//! Diffs the current run's summary against a previous one (typically
//! the artifact from the last green CI run on the main branch), keyed
//! on `(scenario id, metric name)`. A metric whose value drifts by
//! more than the relative tolerance fails the check; metrics that
//! vanished are reported as warnings. Scenarios and metrics present
//! only in the current summary are *additions* — logged for the CI
//! record, never failed — so landing a new experiment does not require
//! a baseline refresh first.
//! Three kinds of numbers are informational by design and can never
//! fail the gate: every metric of the `perf_microbench` scenario (it
//! measures wall-clock time, which varies with the host), the
//! per-scenario `wall_secs` timings, whose deltas are printed as
//! `INFO` lines so CI logs track simulator throughput over time, and
//! hedge/suspicion statistics (operational counters whose latency
//! consequences the gated tail metrics already cover).
//! A missing previous file is the first-run case and passes silently,
//! so the gate bootstraps itself.
//!
//!     cargo run -p lina-bench --bin regression_check -- \
//!         --current bench_summary.json --previous previous.json \
//!         [--tolerance 0.05]
//!
//! The simulator is deterministic, so at equal tier the expected drift
//! is zero; the tolerance band only absorbs intentional re-tuning of a
//! scenario, which should land together with a refreshed baseline.

use std::process::ExitCode;

use lina_simcore::Json;

struct Args {
    current: String,
    previous: String,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut current = None;
    let mut previous = None;
    let mut tolerance = 0.05;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--current" => current = Some(it.next().ok_or("--current needs a path")?),
            "--previous" => previous = Some(it.next().ok_or("--previous needs a path")?),
            "--tolerance" => {
                let t = it.next().ok_or("--tolerance needs a value")?;
                tolerance = t
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or(format!("bad tolerance {t:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        current: current.ok_or("--current is required")?,
        previous: previous.ok_or("--previous is required")?,
        tolerance,
    })
}

/// `(scenario id, metric name)` — the stable key regression tooling
/// compares on.
type MetricKey = (String, String);

/// Scenarios whose metrics are wall-clock measurements: compared and
/// reported, but never allowed to fail the gate.
const INFORMATIONAL_SCENARIOS: &[&str] = &["perf_microbench"];

/// True for metrics the gate reports but never fails on. Beyond the
/// wall-clock scenarios, hedge and suspicion statistics are
/// operational counters (how often speculative dispatch fired, what it
/// cost): the gated p99/attainment metrics already fail on any real
/// regression they would cause, so their own drift under intentional
/// re-tuning stays informational.
fn informational(id: &str, name: &str) -> bool {
    INFORMATIONAL_SCENARIOS.contains(&id) || name.contains("hedge") || name.contains("suspicion")
}

/// Flattens a summary into `(key, value)` pairs, in document order.
fn metrics(doc: &Json) -> Result<Vec<(MetricKey, f64)>, String> {
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("summary has no \"scenarios\" array")?;
    let mut out = Vec::new();
    for s in scenarios {
        let id = s
            .get("id")
            .and_then(Json::as_str)
            .ok_or("scenario without an \"id\"")?;
        let Some(ms) = s.get("metrics").and_then(Json::as_arr) else {
            continue;
        };
        for m in ms {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{id}: metric without a \"name\""))?;
            // A non-finite value serializes as null; carry it as NaN so
            // the comparison still sees the key.
            let value = m.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN);
            out.push(((id.to_string(), name.to_string()), value));
        }
    }
    Ok(out)
}

/// Per-scenario `wall_secs`, in document order. Purely informational:
/// wall-clock timings vary with the host, so their deltas are printed
/// but never gated on.
fn walls(doc: &Json) -> Vec<(String, f64)> {
    let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) else {
        return Vec::new();
    };
    scenarios
        .iter()
        .filter_map(|s| {
            let id = s.get("id").and_then(Json::as_str)?;
            let secs = s.get("wall_secs").and_then(Json::as_f64)?;
            Some((id.to_string(), secs))
        })
        .collect()
}

type Summary = (Vec<(MetricKey, f64)>, Vec<(String, f64)>);

fn load(path: &str) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((metrics(&doc)?, walls(&doc)))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("regression_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !std::path::Path::new(&args.previous).exists() {
        println!(
            "regression_check: no previous summary at {} (first run) — nothing to compare",
            args.previous
        );
        return ExitCode::SUCCESS;
    }
    let ((current, cur_walls), (previous, prev_walls)) =
        match (load(&args.current), load(&args.previous)) {
            (Ok(c), Ok(p)) => (c, p),
            (c, p) => {
                for e in [c.err(), p.err()].into_iter().flatten() {
                    eprintln!("regression_check: {e}");
                }
                return ExitCode::FAILURE;
            }
        };
    let cur: std::collections::BTreeMap<_, _> = current.into_iter().collect();
    // Additions: whole scenarios (or single metrics) only in the
    // current summary. Logged, never failed — a new experiment lands
    // before its baseline exists.
    let prev_keys: std::collections::BTreeSet<&MetricKey> =
        previous.iter().map(|(k, _)| k).collect();
    let prev_ids: std::collections::BTreeSet<&str> =
        previous.iter().map(|((id, _), _)| id.as_str()).collect();
    let mut new_scenarios: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for key in cur.keys() {
        if prev_keys.contains(key) {
            continue;
        }
        let (id, name) = key;
        if prev_ids.contains(id.as_str()) {
            println!("NEW   {id}/{name}: metric added");
        } else {
            *new_scenarios.entry(id.as_str()).or_default() += 1;
        }
    }
    for (id, n) in &new_scenarios {
        println!("NEW   {id}: scenario added ({n} metric(s))");
    }
    let mut failures = 0usize;
    let mut compared = 0usize;
    for ((id, name), prev) in &previous {
        let key = (id.clone(), name.clone());
        let Some(&now) = cur.get(&key) else {
            println!("WARN  {id}/{name}: metric disappeared (was {prev})");
            continue;
        };
        compared += 1;
        // NaN on both sides is "still not finite" — unchanged.
        if prev.is_nan() && now.is_nan() {
            continue;
        }
        let drift = (now - prev).abs() / prev.abs().max(f64::MIN_POSITIVE);
        if !drift.is_finite() || drift > args.tolerance {
            if informational(id, name) {
                // Wall-clock scenario or hedge/suspicion counter: the
                // drift is host noise or re-tuning, not a result
                // regression. Surface it, don't gate on it.
                println!("INFO  {id}/{name}: {prev} -> {now} (informational, not gated)");
                continue;
            }
            println!(
                "FAIL  {id}/{name}: {prev} -> {now} (drift {:.2}% > {:.2}%)",
                drift * 100.0,
                args.tolerance * 100.0
            );
            failures += 1;
        }
    }
    // Locality-fraction trend: how much dispatch traffic the current
    // placements keep off the wire. Informational — the gated p99 and
    // attainment metrics already fail on regressions; these lines let
    // CI logs track the placement quality that produced them.
    for ((id, name), value) in cur.iter() {
        if name.contains("locality_fraction") {
            println!("INFO  {id}/{name}: {value:.4} (informational, not gated)");
        }
    }
    // Hedge and suspicion trend lines: how often speculative dispatch
    // fired, how often it won, and what fraction of compute it burned.
    // Informational for the same reason as above — the gated tail and
    // attainment metrics own the pass/fail decision.
    for ((id, name), value) in cur.iter() {
        if name.contains("hedge") || name.contains("suspicion") {
            println!("INFO  {id}/{name}: {value:.4} (informational, not gated)");
        }
    }
    // Wall-clock throughput trend, per scenario: informational only,
    // so CI logs show when the simulator itself gets faster or slower.
    let cur_wall: std::collections::BTreeMap<_, _> = cur_walls.into_iter().collect();
    for (id, prev_secs) in &prev_walls {
        let Some(&now_secs) = cur_wall.get(id) else {
            continue;
        };
        let delta = if *prev_secs > 0.0 {
            (now_secs - prev_secs) / prev_secs * 100.0
        } else {
            0.0
        };
        println!(
            "INFO  {id}/wall_secs: {prev_secs:.3}s -> {now_secs:.3}s ({delta:+.1}%, informational)"
        );
    }
    println!(
        "regression_check: {compared} metric(s) compared at tolerance {:.2}%, {failures} failure(s)",
        args.tolerance * 100.0
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
