//! Figure 5: timeline of backward-propagating an MoE layer under
//! hybrid parallelism — the first all-to-all is prolonged by the
//! concurrent allreduce.

use lina_baselines::TrainScheme;
use lina_bench as bench;
use lina_model::{CommClass, MoeModelConfig, OpKind};
use lina_runner::train::run_train_step;
use lina_simcore::{format_speedup, SimTime};

fn main() {
    bench::banner(
        "Figure 5",
        "backward-pass timeline: all-to-all prolonged by allreduce (GPT-2)",
    );
    // GPT-2's per-layer gradients flush DDP buckets mid-backward, so
    // allreduce overlaps the expert-parallel all-to-all.
    let model = MoeModelConfig::gpt2(16);
    let topo = bench::topo(16);
    let cost = bench::train_cost(model.clone());
    let batch = bench::train_batch(&model);
    let run = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 5);

    // Find the most-slowed overlapped backward all-to-all and render a
    // window around it.
    let m = &run.metrics;
    let mut worst: Option<(usize, f64)> = None;
    for (i, (&s, &o)) in m
        .a2a_bwd_slowdowns
        .iter()
        .zip(&m.a2a_bwd_overlapped)
        .enumerate()
    {
        if o {
            match worst {
                Some((_, best)) if best >= s => {}
                _ => worst = Some((i, s)),
            }
        }
    }
    let Some((_, slowdown)) = worst else {
        println!("no overlap occurred in this step (try more steps)");
        return;
    };
    println!(
        "worst overlapped backward all-to-all slowdown: {}",
        format_speedup(slowdown)
    );

    // Render the window around an allreduce that overlaps an
    // all-to-all (the Figure 5 situation).
    let mut a2a_windows: Vec<(SimTime, SimTime)> = Vec::new();
    for (i, op) in run.graph.ops().iter().enumerate() {
        if let OpKind::Comm { meta, .. } = &op.kind {
            if meta.class == CommClass::AllToAll && meta.backward {
                a2a_windows.push(run.exec.window(lina_model::OpId(i as u32)));
            }
        }
    }
    let mut window: Option<(SimTime, SimTime)> = None;
    for (i, op) in run.graph.ops().iter().enumerate() {
        if let OpKind::Comm { meta, .. } = &op.kind {
            if meta.class == CommClass::Allreduce {
                let (s, e) = run.exec.window(lina_model::OpId(i as u32));
                let overlaps = a2a_windows.iter().any(|&(as_, ae)| as_ < e && ae > s);
                if overlaps && window.is_none_or(|(ws, we)| (e - s) > (we - ws)) {
                    window = Some((s, e));
                }
            }
        }
    }
    let (s, e) = window.expect("an allreduce overlapped an all-to-all");
    let pad = (e - s) / 3;
    println!("{}", run.exec.timeline.render_ascii(s - pad, e + pad, 110));
    println!("glyphs: A attention, G gate, # all-to-all, F expert FFN, C combine, = allreduce");
    println!("paper: the median slowdown over such overlaps is 1.83x (Figure 3).");
}
