//! Thin wrapper: runs the `fig16_inference` scenario from the registry at the
//! `Full` tier, printing the same banner and tables as always.
//! See `crates/bench/src/scenarios/fig16_inference.rs` for the experiment body.

fn main() {
    lina_bench::run_standalone(env!("CARGO_BIN_NAME"));
}
