//! Figure 16: median and 95th-percentile inference time of Baseline,
//! Lina, and the two ablations, normalized to Ideal (balanced gate),
//! for Transformer-XL and BERT-Large at 4 and 16 experts.

use lina_baselines::InferScheme;
use lina_bench as bench;
use lina_model::MoeModelConfig;
use lina_runner::inference::{run_inference_batches, InferenceConfig};
use lina_simcore::Table;

fn main() {
    bench::banner(
        "Figure 16",
        "median/95%ile inference time normalized to Ideal",
    );
    for (model_ctor, label) in [
        (
            MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig,
            "Transformer-XL / enwik8",
        ),
        (
            |_l, e| MoeModelConfig::bert_large(e),
            "BERT-Large / WMT En-De",
        ),
    ] {
        for experts in [4usize, 16] {
            let model = model_ctor(12, experts);
            let layers = model.layers;
            let topo = bench::topo(experts);
            let cost = bench::infer_cost(model.clone());
            let spec = bench::workload_for(&model, experts, layers);
            let setup = bench::inference_setup(
                &spec,
                experts,
                3,
                bench::batches(),
                bench::tokens_per_device(),
            );
            let mut results = Vec::new();
            let mut ideal_median = 1.0;
            let mut ideal_p95 = 1.0;
            for scheme in InferScheme::all() {
                let mut s = run_inference_batches(
                    &cost,
                    &topo,
                    &InferenceConfig { scheme, top_k: 1 },
                    Some(&setup.scheduler),
                    &setup.batches,
                );
                let med = s.totals.median();
                let p95 = s.totals.p95();
                if scheme == InferScheme::Ideal {
                    ideal_median = med;
                    ideal_p95 = p95;
                }
                results.push((scheme, med, p95, s.finetune_rate(), s.accuracy()));
            }
            let mut table = Table::new(
                format!("{label}, {experts} experts (normalized to Ideal)"),
                &["scheme", "median", "p95", "ft rate", "est acc"],
            );
            for (scheme, med, p95, ft, acc) in &results {
                table.row(&[
                    scheme.name().into(),
                    format!("{:.2}", med / ideal_median),
                    format!("{:.2}", p95 / ideal_p95),
                    bench::format_rate(*ft),
                    bench::format_rate(*acc),
                ]);
            }
            println!("{}", table.render());
        }
    }
    println!(
        "paper: Lina cuts the Baseline's median by 1.45-1.54x (Transformer-XL)\n\
         and 1.36-1.46x (BERT-Large), and the 95%ile by up to 1.82x at 16\n\
         experts; w/o estimation is ~19-24% worse than Lina at the median\n\
         (reactive scheduling blocks each layer); w/o fine-tuning inflates\n\
         the tail by ~27-33%."
    );
}
