//! Micro-benchmarks of the simulator and scheduler hot paths: these
//! quantify the cost of the reproduction's own machinery (as opposed to
//! the table/figure binaries, which report *simulated* time).
//!
//! The harness is self-contained (`harness = false`): each case is
//! warmed up, then timed over enough iterations to fill a ~200 ms
//! window, reporting mean wall-clock time per iteration.

use std::time::Instant;

use lina_baselines::TrainScheme;
use lina_core::{popularity_placement, PlacementConfig, PopularityEstimator};
use lina_model::{
    assign_replicas, balanced_routing, build_train_step, BatchShape, CostModel, DeviceSpec,
    ExpertPlacement, LayerRouting, MoeModelConfig,
};
use lina_netsim::{max_min_rates, AllToAllAlgo, ClusterSpec, CollectiveSpec, FlowDemand, Topology};
use lina_runner::{execute, train::solo_collective_time};
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

/// Times `f` and prints one result line. Returns-value of `f` is
/// black-boxed through `std::hint::black_box` to stop the optimizer
/// from deleting the work.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and per-iteration estimate.
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.2 / once) as u64).clamp(1, 100_000);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<40} {:>12} / iter  ({iters} iters)",
        lina_simcore::format_secs(per)
    );
}

fn bench_fairshare() {
    for &flows in &[16usize, 64, 240] {
        let capacities = vec![12e9; 64];
        let paths: Vec<Vec<u32>> = (0..flows)
            .map(|i| vec![(i % 32) as u32, 32 + (i % 32) as u32])
            .collect();
        let demands: Vec<FlowDemand<'_>> = paths
            .iter()
            .map(|p| FlowDemand {
                weight: 1.0,
                links: p,
            })
            .collect();
        bench(&format!("fairshare/max_min_rates/{flows}"), || {
            max_min_rates(&capacities, &demands)
        });
    }
}

fn bench_collectives() {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    for (name, algo) in [
        ("flat", AllToAllAlgo::Flat),
        ("hierarchical", AllToAllAlgo::Hierarchical),
    ] {
        let spec = CollectiveSpec::uniform_all_to_all(topo.device_ids().collect(), 2e6, algo);
        bench(&format!("collectives/a2a_16dev/{name}"), || {
            solo_collective_time(&topo, &spec)
        });
    }
}

fn bench_placement() {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let pop: Vec<f64> = (0..16).map(|e| 1.0 / (e + 1) as f64).collect();
    let config = PlacementConfig {
        devices: 16,
        max_experts_per_device: 4,
    };
    bench("popularity_placement_16", || {
        popularity_placement(&pop, config)
    });
    let placement = popularity_placement(&pop, config);
    let routing = LayerRouting::balanced(16, 16, 16_384, 1);
    bench("assign_replicas_16", || {
        assign_replicas(&routing, &placement, &topo)
    });
}

fn bench_estimator() {
    let spec = WorkloadSpec::enwik8(16, 12);
    let mut src = TokenSource::new(&spec, 1, 1);
    let profile: Vec<TokenBatch> = (0..4)
        .map(|_| src.sample_batch(16, 1024, Mode::Train))
        .collect();
    bench("estimator_profile_l3", || {
        PopularityEstimator::profile(&profile, 3)
    });
    let est = PopularityEstimator::profile(&profile, 3);
    let batch = src.sample_batch(16, 1024, Mode::Inference);
    bench("estimate_popularity_16k_tokens", || {
        est.estimate_popularity(&batch.tokens, 6, 1)
    });
}

fn bench_step_simulation() {
    let model = MoeModelConfig::transformer_xl(4, 16);
    let topo = Topology::new(ClusterSpec::with_total_gpus(16));
    let cost = CostModel::new(DeviceSpec::a100(), model.clone());
    let batch = BatchShape {
        seqs_per_device: 32,
        seq_len: model.seq_len,
    };
    let routing = balanced_routing(&model, 16, batch);
    for scheme in [TrainScheme::Baseline, TrainScheme::LinaNoPack] {
        let opts = scheme.step_options(16, &topo);
        bench(
            &format!("step_simulation/4layer_16dev/{}", scheme.name()),
            || {
                let graph = build_train_step(&cost, &topo, batch, &routing, &opts);
                let mut policy = scheme.policy();
                execute(&graph, &topo, policy.as_mut())
            },
        );
    }
}

fn bench_workload() {
    let spec = WorkloadSpec::enwik8(16, 12);
    let mut src = TokenSource::new(&spec, 1, 9);
    bench("sample_batch_8k_tokens", move || {
        src.sample_batch(16, 512, Mode::Inference)
    });
}

fn bench_packed_dispatch() {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let placement = ExpertPlacement::packed(16, &topo, 4);
    let routing = LayerRouting::balanced(16, 16, 16_384, 2);
    bench("assign_replicas_packed4", || {
        assign_replicas(&routing, &placement, &topo)
    });
}

fn main() {
    println!("lina micro-benchmarks (wall-clock cost of the simulator itself)");
    println!("----------------------------------------------------------------");
    bench_fairshare();
    bench_collectives();
    bench_placement();
    bench_estimator();
    bench_step_simulation();
    bench_workload();
    bench_packed_dispatch();
}
