//! Criterion micro-benchmarks of the simulator and scheduler hot
//! paths: these quantify the cost of the reproduction's own machinery
//! (as opposed to the table/figure binaries, which report *simulated*
//! time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lina_baselines::TrainScheme;
use lina_core::{popularity_placement, PlacementConfig, PopularityEstimator};
use lina_model::{
    assign_replicas, balanced_routing, build_train_step, BatchShape, CostModel, DeviceSpec,
    ExpertPlacement, LayerRouting, MoeModelConfig,
};
use lina_netsim::{max_min_rates, AllToAllAlgo, ClusterSpec, CollectiveSpec, FlowDemand, Topology};
use lina_runner::{execute, train::solo_collective_time};
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare");
    for &flows in &[16usize, 64, 240] {
        let capacities = vec![12e9; 64];
        let paths: Vec<Vec<u32>> = (0..flows)
            .map(|i| vec![(i % 32) as u32, 32 + (i % 32) as u32])
            .collect();
        let demands: Vec<FlowDemand<'_>> = paths
            .iter()
            .map(|p| FlowDemand { weight: 1.0, links: p })
            .collect();
        group.bench_with_input(BenchmarkId::new("max_min_rates", flows), &flows, |b, _| {
            b.iter(|| max_min_rates(&capacities, &demands))
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let mut group = c.benchmark_group("collectives");
    for (name, algo) in [("flat", AllToAllAlgo::Flat), ("hierarchical", AllToAllAlgo::Hierarchical)]
    {
        let spec =
            CollectiveSpec::uniform_all_to_all(topo.device_ids().collect(), 2e6, algo);
        group.bench_function(BenchmarkId::new("a2a_16dev", name), |b| {
            b.iter(|| solo_collective_time(&topo, &spec))
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let pop: Vec<f64> = (0..16).map(|e| 1.0 / (e + 1) as f64).collect();
    let config = PlacementConfig { devices: 16, max_experts_per_device: 4 };
    c.bench_function("popularity_placement_16", |b| {
        b.iter(|| popularity_placement(&pop, config))
    });
    let placement = popularity_placement(&pop, config);
    let routing = LayerRouting::balanced(16, 16, 16_384, 1);
    c.bench_function("assign_replicas_16", |b| {
        b.iter(|| assign_replicas(&routing, &placement, &topo))
    });
}

fn bench_estimator(c: &mut Criterion) {
    let spec = WorkloadSpec::enwik8(16, 12);
    let mut src = TokenSource::new(&spec, 1, 1);
    let profile: Vec<TokenBatch> =
        (0..4).map(|_| src.sample_batch(16, 1024, Mode::Train)).collect();
    c.bench_function("estimator_profile_l3", |b| {
        b.iter(|| PopularityEstimator::profile(&profile, 3))
    });
    let est = PopularityEstimator::profile(&profile, 3);
    let batch = src.sample_batch(16, 1024, Mode::Inference);
    c.bench_function("estimate_popularity_16k_tokens", |b| {
        b.iter(|| est.estimate_popularity(&batch.tokens, 6, 1))
    });
}

fn bench_step_simulation(c: &mut Criterion) {
    let model = MoeModelConfig::transformer_xl(4, 16);
    let topo = Topology::new(ClusterSpec::with_total_gpus(16));
    let cost = CostModel::new(DeviceSpec::a100(), model.clone());
    let batch = BatchShape { seqs_per_device: 32, seq_len: model.seq_len };
    let routing = balanced_routing(&model, 16, batch);
    let mut group = c.benchmark_group("step_simulation");
    group.sample_size(20);
    for scheme in [TrainScheme::Baseline, TrainScheme::LinaNoPack] {
        let opts = scheme.step_options(16, &topo);
        group.bench_function(BenchmarkId::new("4layer_16dev", scheme.name()), |b| {
            b.iter(|| {
                let graph = build_train_step(&cost, &topo, batch, &routing, &opts);
                let mut policy = scheme.policy();
                execute(&graph, &topo, policy.as_mut())
            })
        });
    }
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let spec = WorkloadSpec::enwik8(16, 12);
    c.bench_function("sample_batch_8k_tokens", |b| {
        let mut src = TokenSource::new(&spec, 1, 9);
        b.iter(|| src.sample_batch(16, 512, Mode::Inference))
    });
}

fn bench_packed_dispatch(c: &mut Criterion) {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let placement = ExpertPlacement::packed(16, &topo, 4);
    let routing = LayerRouting::balanced(16, 16, 16_384, 2);
    c.bench_function("assign_replicas_packed4", |b| {
        b.iter(|| assign_replicas(&routing, &placement, &topo))
    });
}

criterion_group!(
    benches,
    bench_fairshare,
    bench_collectives,
    bench_placement,
    bench_estimator,
    bench_step_simulation,
    bench_workload,
    bench_packed_dispatch
);
criterion_main!(benches);
