//! Smoke-tier integration test: every registered scenario must run,
//! produce a non-empty report with at least one named metric, and be
//! deterministic across repeated runs.

use lina_bench::{ScenarioCtx, REGISTRY};

#[test]
fn registry_is_nonempty_and_ids_unique() {
    assert!(!REGISTRY.is_empty());
    let mut ids: Vec<&str> = REGISTRY.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate scenario ids in registry");
}

#[test]
fn serving_scenarios_are_registered() {
    // Both serving experiments must be reachable from `reproduce`
    // (its --list and --only flags resolve through the same registry).
    for id in [
        "serve_load_sweep",
        "serve_autoscale",
        "serve_cluster",
        "serve_contention",
        "serve_faults",
        "serve_gray",
        "serve_resharding",
        "serve_affinity",
    ] {
        assert!(
            lina_bench::find(id).is_some(),
            "{id} missing from the scenario registry"
        );
    }
}

#[test]
fn every_scenario_runs_at_smoke_tier_and_is_deterministic() {
    let ctx = ScenarioCtx::smoke();
    for scenario in REGISTRY {
        let first = (scenario.run)(&ctx);
        assert!(
            !first.is_empty(),
            "scenario {} produced an empty report",
            scenario.id
        );
        assert!(
            !first.metrics().is_empty(),
            "scenario {} produced no named metrics",
            scenario.id
        );
        for m in first.metrics() {
            assert!(
                m.value.is_finite(),
                "scenario {} metric {} is not finite",
                scenario.id,
                m.name
            );
        }
        if scenario.id == "serve_cluster" {
            let headline = first
                .metrics()
                .iter()
                .find(|m| m.name == "rr_over_jsq_p99_high_load")
                .expect("serve_cluster reports the balancer headline metric");
            assert!(
                headline.value >= 1.0,
                "queue-aware routing must not lose the high-load tail: \
                 round-robin p99 / jsq p99 = {}",
                headline.value
            );
        }
        if scenario.id == "serve_faults" {
            let metric = |name: &str| {
                first
                    .metrics()
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("serve_faults reports {name}"))
                    .value
            };
            // Graceful degradation must strictly beat fail-fast on both
            // availability and SLO attainment at the default cell.
            assert!(
                metric("shed_minus_failfast_availability") > 0.0,
                "retry+failover+shedding must strictly improve availability"
            );
            assert!(
                metric("shed_minus_failfast_attainment") > 0.0,
                "retry+failover+shedding must strictly improve attainment"
            );
            // An empty fault schedule with an armed policy reproduces
            // the healthy path bit for bit.
            assert_eq!(
                metric("empty_schedule_identical"),
                1.0,
                "empty schedule must be bit-identical to the healthy path"
            );
            assert_eq!(metric("empty_schedule_p99_delta_ms"), 0.0);
        }
        if scenario.id == "serve_gray" {
            let metric = |name: &str| {
                first
                    .metrics()
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("serve_gray reports {name}"))
                    .value
            };
            // The phi detector must claw back at least half of the
            // p99 inflation the blind oracle arm suffers under the
            // gray straggler.
            assert!(
                metric("detector_recovers_oracle_gap_frac") >= 0.5,
                "the detector must recover at least half the gray p99 gap, got {}",
                metric("detector_recovers_oracle_gap_frac")
            );
            // Hedged dispatch must not lose tail latency on top of
            // detection.
            assert!(
                metric("hedged_over_unhedged_p99") >= 1.0,
                "hedging must not inflate the detector arm's p99, got {}",
                metric("hedged_over_unhedged_p99")
            );
            // Hedges only fire for genuinely late batches, so wasted
            // compute stays bounded.
            assert!(
                metric("hedge_wasted_compute_frac") <= 0.15,
                "hedge wasted-compute fraction too high: {}",
                metric("hedge_wasted_compute_frac")
            );
            // An armed-but-inert hedge runtime over the same gray
            // schedule reproduces the blind arm bit for bit.
            assert_eq!(
                metric("oracle_inert_hedging_identical"),
                1.0,
                "inert hedging must be bit-identical to the blind arm"
            );
        }
        if scenario.id == "serve_autoscale" {
            let metric = |name: &str| {
                first
                    .metrics()
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("serve_autoscale reports {name}"))
                    .value
            };
            // At least one autoscaling policy must strictly beat the
            // static-min pool on SLO attainment at no more than the
            // static-max pool's replica-second cost.
            assert_eq!(
                metric("frontier_dominates_static_min"),
                1.0,
                "no autoscaling policy dominated static_min on the frontier"
            );
            // An armed-but-inert autoscaler reproduces the fixed pool
            // bit for bit.
            assert_eq!(
                metric("inert_autoscaler_identical"),
                1.0,
                "inert autoscaler must be bit-identical to the fixed pool"
            );
        }
        if scenario.id == "serve_resharding" {
            let metric = |name: &str| {
                first
                    .metrics()
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("serve_resharding reports {name}"))
                    .value
            };
            // Proactive re-sharding must match or beat Lina's
            // epoch-based re-placement on p99 under the drifting trace.
            assert!(
                metric("reshard_over_epoch_p99") >= 1.0,
                "proactive re-sharding must not lose to epoch-based re-placement"
            );
            // An armed-but-inert re-sharder reproduces the fixed
            // cluster bit for bit.
            assert_eq!(
                metric("inert_resharding_identical"),
                1.0,
                "inert re-sharder must be bit-identical to the fixed cluster"
            );
        }
        if scenario.id == "serve_affinity" {
            let metric = |name: &str| {
                first
                    .metrics()
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("serve_affinity reports {name}"))
                    .value
            };
            // Affinity-aware placement must match or beat the
            // canonical layout's tail under the same locality pricing
            // at the strongest swept correlation.
            assert!(
                metric("affinity_over_independent_p99") >= 1.0,
                "affinity placement must not lose to the independent layout"
            );
            // An armed-but-canonical layered base with locality off
            // reproduces the plain cluster bit for bit.
            assert_eq!(
                metric("uniform_layered_identical"),
                1.0,
                "canonical layered base must be bit-identical to the plain run"
            );
        }
        if scenario.id == "serve_contention" {
            let headline = first
                .metrics()
                .iter()
                .find(|m| m.name == "contended_over_solo_p99")
                .expect("serve_contention reports the pricing-gap headline metric");
            assert!(
                headline.value >= 1.0,
                "network contention must not make the tail faster: \
                 contended p99 / solo p99 = {}",
                headline.value
            );
        }
        if scenario.id == "perf_microbench" {
            // The one scenario that measures wall-clock time: its
            // simulated outcomes are deterministic (and it asserts so
            // itself via the `identical` metric), but the timing
            // metrics vary run to run, so repeated-render equality
            // cannot apply. Check the invariants it owns instead.
            let metric = |name: &str| {
                first
                    .metrics()
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("perf_microbench reports {name}"))
                    .value
            };
            assert_eq!(
                metric("identical"),
                1.0,
                "fast perf config must be bit-identical to the reference"
            );
            assert!(metric("speedup_x") > 0.0);
            assert!(metric("plan_cache_hit_rate") >= 0.5);
            continue;
        }
        let second = (scenario.run)(&ctx);
        assert_eq!(
            first.render(),
            second.render(),
            "scenario {} rendered output is nondeterministic",
            scenario.id
        );
        assert_eq!(
            first.to_json().render_compact(),
            second.to_json().render_compact(),
            "scenario {} JSON report is nondeterministic",
            scenario.id
        );
    }
}
