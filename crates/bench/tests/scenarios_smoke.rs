//! Smoke-tier integration test: every registered scenario must run,
//! produce a non-empty report with at least one named metric, and be
//! deterministic across repeated runs.

use lina_bench::{ScenarioCtx, REGISTRY};

#[test]
fn registry_is_nonempty_and_ids_unique() {
    assert!(!REGISTRY.is_empty());
    let mut ids: Vec<&str> = REGISTRY.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate scenario ids in registry");
}

#[test]
fn every_scenario_runs_at_smoke_tier_and_is_deterministic() {
    let ctx = ScenarioCtx::smoke();
    for scenario in REGISTRY {
        let first = (scenario.run)(&ctx);
        assert!(
            !first.is_empty(),
            "scenario {} produced an empty report",
            scenario.id
        );
        assert!(
            !first.metrics().is_empty(),
            "scenario {} produced no named metrics",
            scenario.id
        );
        for m in first.metrics() {
            assert!(
                m.value.is_finite(),
                "scenario {} metric {} is not finite",
                scenario.id,
                m.name
            );
        }
        let second = (scenario.run)(&ctx);
        assert_eq!(
            first.render(),
            second.render(),
            "scenario {} rendered output is nondeterministic",
            scenario.id
        );
        assert_eq!(
            first.to_json().render_compact(),
            second.to_json().render_compact(),
            "scenario {} JSON report is nondeterministic",
            scenario.id
        );
    }
}
