//! Requests and their per-request accounting.

use lina_simcore::{SimDuration, SimTime};
use lina_workload::TokenPath;

/// One inference request: a small token sequence arriving at a known
/// instant. Tokens carry their latent class and full per-layer expert
/// selections (sampled from the workload's gating model at admission),
/// so a formed batch routes exactly like the paper's fixed batches do.
#[derive(Clone, Debug)]
pub struct Request {
    /// Dense request id, in arrival order.
    pub id: usize,
    /// Arrival instant.
    pub arrival: SimTime,
    /// The request's tokens.
    pub tokens: Vec<TokenPath>,
}

impl Request {
    /// Number of tokens in the request.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the request carries no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Everything measured about one served request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id.
    pub id: usize,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Instant its batch was dispatched to the model.
    pub dispatched: SimTime,
    /// Instant its batch completed (all requests of a batch finish
    /// together — the batch is the unit of execution).
    pub completed: SimTime,
    /// Token count.
    pub tokens: usize,
    /// Index of the batch that served it.
    pub batch: usize,
    /// The batch's end-to-end model time.
    pub service: SimDuration,
}

impl RequestRecord {
    /// End-to-end latency: completion minus arrival.
    pub fn latency(&self) -> SimDuration {
        self.completed - self.arrival
    }

    /// Time spent queued before dispatch.
    pub fn queue_delay(&self) -> SimDuration {
        self.dispatched - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decomposes_into_queue_plus_service() {
        let r = RequestRecord {
            id: 0,
            arrival: SimTime::from_millis(10),
            dispatched: SimTime::from_millis(14),
            completed: SimTime::from_millis(19),
            tokens: 128,
            batch: 0,
            service: SimDuration::from_millis(5),
        };
        assert_eq!(r.queue_delay(), SimDuration::from_millis(4));
        assert_eq!(r.latency(), SimDuration::from_millis(9));
        assert_eq!(r.latency(), r.queue_delay() + r.service);
    }
}
