//! Open-loop arrival processes.
//!
//! Arrivals are generated ahead of the serving loop (open loop: the
//! offered load does not react to server backlog, so saturation shows
//! up as unbounded queueing delay rather than as a throttled client).
//! All randomness comes from a caller-provided [`Rng`], so a seed
//! pins the whole arrival trace.
//!
//! Arrivals **stream**: [`ArrivalProcess::stream`] returns an infinite
//! lazy iterator over arrival instants, so a million-request diurnal
//! trace costs O(1) memory instead of materializing a `Vec<SimTime>`.
//! [`ArrivalProcess::arrival_times`] remains as the eager convenience
//! wrapper and draws the *identical* sequence (same rng, same order).

use lina_simcore::{Rng, SimDuration, SimTime};

/// An open-loop arrival process.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests per second.
    Poisson {
        /// Mean arrival rate (requests/s).
        rate: f64,
    },
    /// Bursty arrivals: a two-state Markov-modulated Poisson process
    /// alternating between a calm and a burst phase, with
    /// exponentially distributed dwell times. Mean rate is the
    /// dwell-weighted mix of the two phase rates.
    Mmpp {
        /// Arrival rate in the calm phase (requests/s).
        calm_rate: f64,
        /// Arrival rate in the burst phase (requests/s).
        burst_rate: f64,
        /// Mean dwell time in the calm phase (seconds).
        mean_calm: f64,
        /// Mean dwell time in the burst phase (seconds).
        mean_burst: f64,
    },
    /// Replays a recorded gap sequence, cycling if more arrivals are
    /// requested than the trace holds.
    Trace {
        /// Successive inter-arrival gaps.
        inter_arrivals: Vec<SimDuration>,
    },
    /// Production-shaped traffic: a sinusoidal diurnal envelope with a
    /// seeded MMPP flash-crowd overlay. The instantaneous rate is
    ///
    /// `base_rate · (1 + amplitude · sin(2π t / period)) · m(t)`
    ///
    /// where `m(t)` is 1 in the calm overlay phase and `flash_mult`
    /// while a flash crowd is active; flash onsets arrive memorylessly
    /// every `flash_every` seconds on average and last `flash_mean`
    /// seconds on average. Sampled exactly by Lewis–Shedler thinning
    /// against the envelope peak, so the trace is deterministic in the
    /// seed like every other process.
    Diurnal {
        /// Mean rate of the diurnal envelope (requests/s); the
        /// sinusoid averages back to this over whole periods.
        base_rate: f64,
        /// Relative swing of the envelope, in [0, 1]: the rate ranges
        /// over `base_rate · (1 ± amplitude)`.
        amplitude: f64,
        /// Length of one diurnal cycle.
        period: SimDuration,
        /// Mean calm gap between flash-crowd onsets (seconds). Only
        /// read when `flash_mult > 1`.
        flash_every: f64,
        /// Mean flash-crowd duration (seconds). Only read when
        /// `flash_mult > 1`.
        flash_mean: f64,
        /// Rate multiplier while a flash crowd is active; 1.0 disables
        /// the overlay entirely (no overlay draws are made).
        flash_mult: f64,
    },
}

/// Samples an exponential variate with the given rate (per second).
fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential: bad rate {rate}"
    );
    // 1 - f64() is in (0, 1], so ln() is finite.
    -(1.0 - rng.f64()).ln() / rate
}

/// The lazy arrival iterator: an infinite stream of nondecreasing
/// arrival instants. Owns its [`Rng`], so interleaving draws from
/// other substreams (request sizes, token sampling) cannot perturb
/// the arrival sequence.
pub struct ArrivalStream<'a> {
    process: &'a ArrivalProcess,
    rng: Rng,
    /// Last emitted arrival instant.
    t: SimTime,
    /// Modulating-phase flag: MMPP burst phase, or an active flash
    /// crowd for the diurnal overlay.
    bursting: bool,
    /// Instant the current modulating phase ends ([`SimTime::MAX`]
    /// when the process has no modulation).
    phase_end: SimTime,
    /// Cursor into the recorded gap list (trace replay only).
    trace_idx: usize,
}

impl<'a> ArrivalStream<'a> {
    fn new(process: &'a ArrivalProcess, mut rng: Rng) -> Self {
        let t = SimTime::ZERO;
        // Modulated processes draw their first phase boundary up
        // front, exactly as the eager generator always has (the draw
        // happens even when zero arrivals are consumed).
        let phase_end = match process {
            ArrivalProcess::Mmpp {
                mean_calm,
                mean_burst,
                ..
            } => {
                assert!(
                    *mean_calm > 0.0 && *mean_burst > 0.0,
                    "Mmpp: dwell times must be positive"
                );
                t + SimDuration::from_secs_f64(exponential(&mut rng, 1.0 / mean_calm))
            }
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period,
                flash_every,
                flash_mean,
                flash_mult,
            } => {
                assert!(
                    *base_rate > 0.0 && base_rate.is_finite(),
                    "Diurnal: base_rate must be positive"
                );
                assert!(
                    (0.0..=1.0).contains(amplitude),
                    "Diurnal: amplitude must be in [0, 1]"
                );
                assert!(*period > SimDuration::ZERO, "Diurnal: period must be > 0");
                assert!(*flash_mult >= 1.0, "Diurnal: flash_mult must be >= 1");
                if *flash_mult > 1.0 {
                    assert!(
                        *flash_every > 0.0 && *flash_mean > 0.0,
                        "Diurnal: flash dwell times must be positive"
                    );
                    t + SimDuration::from_secs_f64(exponential(&mut rng, 1.0 / flash_every))
                } else {
                    SimTime::MAX
                }
            }
            _ => SimTime::MAX,
        };
        ArrivalStream {
            process,
            rng,
            t,
            bursting: false,
            phase_end,
            trace_idx: 0,
        }
    }

    /// Recovers the rng, advanced past every draw the stream made (the
    /// eager wrapper hands it back to the caller).
    fn into_rng(self) -> Rng {
        self.rng
    }
}

impl Iterator for ArrivalStream<'_> {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                self.t += SimDuration::from_secs_f64(exponential(&mut self.rng, *rate));
                Some(self.t)
            }
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => loop {
                let rate = if self.bursting {
                    *burst_rate
                } else {
                    *calm_rate
                };
                let next = self.t + SimDuration::from_secs_f64(exponential(&mut self.rng, rate));
                if next <= self.phase_end {
                    self.t = next;
                    return Some(self.t);
                }
                // The candidate falls past the phase boundary: discard
                // it and redraw from the boundary under the next
                // phase's rate (memorylessness makes the restart exact
                // for the exponential gap).
                self.t = self.phase_end;
                self.bursting = !self.bursting;
                let dwell = if self.bursting {
                    *mean_burst
                } else {
                    *mean_calm
                };
                self.phase_end =
                    self.t + SimDuration::from_secs_f64(exponential(&mut self.rng, 1.0 / dwell));
            },
            ArrivalProcess::Trace { inter_arrivals } => {
                assert!(
                    !inter_arrivals.is_empty(),
                    "Trace: empty inter-arrival list"
                );
                self.t += inter_arrivals[self.trace_idx % inter_arrivals.len()];
                self.trace_idx += 1;
                Some(self.t)
            }
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period,
                flash_every,
                flash_mean,
                flash_mult,
            } => {
                let peak = base_rate * (1.0 + amplitude);
                let period_s = period.as_secs_f64();
                loop {
                    // Homogeneous candidates at the envelope peak times
                    // the current overlay multiplier; the overlay phase
                    // switches like the MMPP above.
                    let mult = if self.bursting { *flash_mult } else { 1.0 };
                    let cand = self.t
                        + SimDuration::from_secs_f64(exponential(&mut self.rng, peak * mult));
                    if cand > self.phase_end {
                        self.t = self.phase_end;
                        self.bursting = !self.bursting;
                        let dwell = if self.bursting {
                            *flash_mean
                        } else {
                            *flash_every
                        };
                        self.phase_end = self.t
                            + SimDuration::from_secs_f64(exponential(&mut self.rng, 1.0 / dwell));
                        continue;
                    }
                    self.t = cand;
                    // Thin against the sinusoid (the overlay multiplier
                    // cancels: it scales candidate and target alike).
                    let phase = 2.0 * std::f64::consts::PI * self.t.as_secs_f64() / period_s;
                    let lambda = base_rate * (1.0 + amplitude * phase.sin());
                    if self.rng.f64() * peak < lambda {
                        return Some(self.t);
                    }
                }
            }
        }
    }
}

impl ArrivalProcess {
    /// Streams arrivals lazily: an infinite iterator of nondecreasing
    /// instants, deterministic in the given rng. The stream owns the
    /// rng; use [`ArrivalProcess::arrival_times`] when the caller
    /// needs its rng advanced in place.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or dwell time, an empty trace, or
    /// an out-of-range diurnal amplitude / flash multiplier.
    pub fn stream(&self, rng: Rng) -> ArrivalStream<'_> {
        ArrivalStream::new(self, rng)
    }

    /// Generates the first `n` arrival instants, sorted ascending —
    /// the eager wrapper over [`ArrivalProcess::stream`], drawing the
    /// identical sequence and leaving `rng` in the identical state.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or dwell time, or an empty trace.
    pub fn arrival_times(&self, n: usize, rng: &mut Rng) -> Vec<SimTime> {
        let mut stream = self.stream(rng.clone());
        let out: Vec<SimTime> = stream.by_ref().take(n).collect();
        *rng = stream.into_rng();
        out
    }

    /// The long-run mean arrival rate (requests/s). For the diurnal
    /// process this is exact over whole periods (the sinusoid averages
    /// out) with the overlay's dwell-weighted multiplier applied; a
    /// finite trace truncated mid-period converges to it as the span
    /// grows.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => (calm_rate * mean_calm + burst_rate * mean_burst) / (mean_calm + mean_burst),
            ArrivalProcess::Trace { inter_arrivals } => {
                let total: SimDuration = inter_arrivals.iter().copied().sum();
                if total == SimDuration::ZERO {
                    0.0
                } else {
                    inter_arrivals.len() as f64 / total.as_secs_f64()
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                flash_every,
                flash_mean,
                flash_mult,
                ..
            } => {
                let overlay = if *flash_mult > 1.0 {
                    (flash_every + flash_mean * flash_mult) / (flash_every + flash_mean)
                } else {
                    1.0
                };
                base_rate * overlay
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal(flash_mult: f64) -> ArrivalProcess {
        ArrivalProcess::Diurnal {
            base_rate: 200.0,
            amplitude: 0.75,
            period: SimDuration::from_secs_f64(4.0),
            flash_every: 2.0,
            flash_mean: 0.25,
            flash_mult,
        }
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let times = p.arrival_times(20_000, &mut Rng::new(7));
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let span = times.last().expect("nonempty").as_secs_f64();
        let rate = times.len() as f64 / span;
        assert!((rate - 100.0).abs() < 3.0, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_mixes_the_two_rates() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 50.0,
            burst_rate: 500.0,
            mean_calm: 1.0,
            mean_burst: 0.25,
        };
        let times = p.arrival_times(20_000, &mut Rng::new(3));
        let span = times.last().expect("nonempty").as_secs_f64();
        let rate = times.len() as f64 / span;
        let mean = p.mean_rate();
        assert!(
            (rate - mean).abs() / mean < 0.2,
            "rate {rate} vs mean {mean}"
        );
        // Burstier than Poisson at the same mean: the squared
        // coefficient of variation of the gaps exceeds 1.
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(var / (m * m) > 1.2, "cv2 {}", var / (m * m));
    }

    #[test]
    fn trace_replays_and_cycles() {
        let p = ArrivalProcess::Trace {
            inter_arrivals: vec![SimDuration::from_millis(1), SimDuration::from_millis(3)],
        };
        let times = p.arrival_times(4, &mut Rng::new(1));
        assert_eq!(
            times,
            vec![
                SimTime::from_millis(1),
                SimTime::from_millis(4),
                SimTime::from_millis(5),
                SimTime::from_millis(8),
            ]
        );
        assert!((p.mean_rate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_trace() {
        let p = ArrivalProcess::Poisson { rate: 10.0 };
        assert_eq!(
            p.arrival_times(100, &mut Rng::new(9)),
            p.arrival_times(100, &mut Rng::new(9))
        );
    }

    #[test]
    fn stream_matches_eager_and_advances_the_rng_identically() {
        // The lazy iterator must draw the identical sequence as the
        // eager wrapper for every legacy process — the serving seeds'
        // bit-reproducibility rests on it — and leave the caller's rng
        // in the identical state.
        let processes = [
            ArrivalProcess::Poisson { rate: 250.0 },
            ArrivalProcess::Mmpp {
                calm_rate: 50.0,
                burst_rate: 800.0,
                mean_calm: 0.5,
                mean_burst: 0.05,
            },
            ArrivalProcess::Trace {
                inter_arrivals: vec![SimDuration::from_millis(2), SimDuration::from_millis(5)],
            },
            diurnal(2.5),
        ];
        for p in &processes {
            let mut eager_rng = Rng::new(0xA11);
            let eager = p.arrival_times(500, &mut eager_rng);
            let lazy: Vec<SimTime> = p.stream(Rng::new(0xA11)).take(500).collect();
            assert_eq!(eager, lazy);
            // The wrapper hands back the stream's rng: both paths must
            // continue with the same draws.
            let mut stream = p.stream(Rng::new(0xA11));
            for _ in 0..500 {
                stream.next();
            }
            assert_eq!(eager_rng.next_u64(), stream.into_rng().next_u64());
        }
    }

    #[test]
    fn diurnal_mean_rate_matches_empirical() {
        let p = diurnal(2.5);
        // (2.0 + 0.25·2.5) / 2.25 = 1.1666…: the overlay lifts the
        // 200/s envelope to 233.3/s.
        let mean = p.mean_rate();
        assert!((mean - 200.0 * (2.0 + 0.625) / 2.25).abs() < 1e-9);
        let mut stream = p.stream(Rng::new(0xD1));
        let n = 200_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = stream.next().expect("infinite");
        }
        let rate = n as f64 / last.as_secs_f64();
        assert!(
            (rate - mean).abs() / mean < 0.1,
            "empirical {rate} vs analytic {mean}"
        );
    }

    #[test]
    fn diurnal_rate_tracks_the_sinusoid() {
        // No flash overlay: arrivals in the rising half-period (where
        // sin > 0) must clearly outnumber the falling half.
        let p = ArrivalProcess::Diurnal {
            base_rate: 100.0,
            amplitude: 0.9,
            period: SimDuration::from_secs_f64(10.0),
            flash_every: 0.0,
            flash_mean: 0.0,
            flash_mult: 1.0,
        };
        let times: Vec<SimTime> = p.stream(Rng::new(5)).take(5_000).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
        let in_phase = |t: &SimTime, lo: f64, hi: f64| {
            let frac = (t.as_secs_f64() / 10.0).fract();
            frac >= lo && frac < hi
        };
        let crest = times.iter().filter(|t| in_phase(t, 0.0, 0.5)).count();
        let trough = times.iter().filter(|t| in_phase(t, 0.5, 1.0)).count();
        assert!(
            crest as f64 > 1.5 * trough as f64,
            "crest {crest} vs trough {trough}"
        );
    }

    #[test]
    fn flash_crowds_lift_the_rate_in_bursts() {
        let calm: Vec<SimTime> = diurnal(1.0).stream(Rng::new(11)).take(20_000).collect();
        let flashy: Vec<SimTime> = diurnal(3.0).stream(Rng::new(11)).take(20_000).collect();
        let rate = |ts: &[SimTime]| ts.len() as f64 / ts.last().expect("nonempty").as_secs_f64();
        assert!(
            rate(&flashy) > 1.1 * rate(&calm),
            "overlay must lift the mean rate: {} vs {}",
            rate(&flashy),
            rate(&calm)
        );
        assert!(rate(&flashy) < diurnal(3.0).mean_rate() * 1.15);
    }

    #[test]
    fn million_request_diurnal_trace_streams_in_constant_memory() {
        // The point of the streaming API: fold over a million arrivals
        // without ever materializing them. (With the eager path this
        // run would allocate an 8 MB Vec; the stream holds one
        // instant.)
        let p = diurnal(2.0);
        let n = 1_000_000usize;
        let (count, last) =
            p.stream(Rng::new(0xBEEF))
                .take(n)
                .fold((0usize, SimTime::ZERO), |(c, prev), t| {
                    assert!(t >= prev, "arrivals must be nondecreasing");
                    (c + 1, t)
                });
        assert_eq!(count, n);
        let rate = n as f64 / last.as_secs_f64();
        let mean = p.mean_rate();
        assert!(
            (rate - mean).abs() / mean < 0.05,
            "1M-request empirical rate {rate} vs {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn out_of_range_amplitude_rejected() {
        let p = ArrivalProcess::Diurnal {
            base_rate: 10.0,
            amplitude: 1.5,
            period: SimDuration::from_secs_f64(1.0),
            flash_every: 0.0,
            flash_mean: 0.0,
            flash_mult: 1.0,
        };
        let _ = p.stream(Rng::new(1)).next();
    }
}
