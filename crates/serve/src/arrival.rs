//! Open-loop arrival processes.
//!
//! Arrivals are generated ahead of the serving loop (open loop: the
//! offered load does not react to server backlog, so saturation shows
//! up as unbounded queueing delay rather than as a throttled client).
//! All randomness comes from a caller-provided [`Rng`], so a seed
//! pins the whole arrival trace.

use lina_simcore::{Rng, SimDuration, SimTime};

/// An open-loop arrival process.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests per second.
    Poisson {
        /// Mean arrival rate (requests/s).
        rate: f64,
    },
    /// Bursty arrivals: a two-state Markov-modulated Poisson process
    /// alternating between a calm and a burst phase, with
    /// exponentially distributed dwell times. Mean rate is the
    /// dwell-weighted mix of the two phase rates.
    Mmpp {
        /// Arrival rate in the calm phase (requests/s).
        calm_rate: f64,
        /// Arrival rate in the burst phase (requests/s).
        burst_rate: f64,
        /// Mean dwell time in the calm phase (seconds).
        mean_calm: f64,
        /// Mean dwell time in the burst phase (seconds).
        mean_burst: f64,
    },
    /// Replays a recorded gap sequence, cycling if more arrivals are
    /// requested than the trace holds.
    Trace {
        /// Successive inter-arrival gaps.
        inter_arrivals: Vec<SimDuration>,
    },
}

/// Samples an exponential variate with the given rate (per second).
fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential: bad rate {rate}"
    );
    // 1 - f64() is in (0, 1], so ln() is finite.
    -(1.0 - rng.f64()).ln() / rate
}

impl ArrivalProcess {
    /// Generates the first `n` arrival instants, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or dwell time, or an empty trace.
    pub fn arrival_times(&self, n: usize, rng: &mut Rng) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(n);
        let mut t = SimTime::ZERO;
        match self {
            ArrivalProcess::Poisson { rate } => {
                for _ in 0..n {
                    t += SimDuration::from_secs_f64(exponential(rng, *rate));
                    out.push(t);
                }
            }
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => {
                assert!(
                    *mean_calm > 0.0 && *mean_burst > 0.0,
                    "Mmpp: dwell times must be positive"
                );
                // Current phase (false = calm) and the instant it ends.
                let mut bursting = false;
                let mut phase_end =
                    t + SimDuration::from_secs_f64(exponential(rng, 1.0 / mean_calm));
                while out.len() < n {
                    let rate = if bursting { *burst_rate } else { *calm_rate };
                    let next = t + SimDuration::from_secs_f64(exponential(rng, rate));
                    if next <= phase_end {
                        t = next;
                        out.push(t);
                    } else {
                        // The candidate falls past the phase boundary:
                        // discard it and redraw from the boundary under
                        // the next phase's rate (memorylessness makes
                        // the restart exact for the exponential gap).
                        t = phase_end;
                        bursting = !bursting;
                        let dwell = if bursting { *mean_burst } else { *mean_calm };
                        phase_end = t + SimDuration::from_secs_f64(exponential(rng, 1.0 / dwell));
                    }
                }
            }
            ArrivalProcess::Trace { inter_arrivals } => {
                assert!(
                    !inter_arrivals.is_empty(),
                    "Trace: empty inter-arrival list"
                );
                for i in 0..n {
                    t += inter_arrivals[i % inter_arrivals.len()];
                    out.push(t);
                }
            }
        }
        out
    }

    /// The long-run mean arrival rate (requests/s).
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => (calm_rate * mean_calm + burst_rate * mean_burst) / (mean_calm + mean_burst),
            ArrivalProcess::Trace { inter_arrivals } => {
                let total: SimDuration = inter_arrivals.iter().copied().sum();
                if total == SimDuration::ZERO {
                    0.0
                } else {
                    inter_arrivals.len() as f64 / total.as_secs_f64()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let times = p.arrival_times(20_000, &mut Rng::new(7));
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let span = times.last().expect("nonempty").as_secs_f64();
        let rate = times.len() as f64 / span;
        assert!((rate - 100.0).abs() < 3.0, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_mixes_the_two_rates() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 50.0,
            burst_rate: 500.0,
            mean_calm: 1.0,
            mean_burst: 0.25,
        };
        let times = p.arrival_times(20_000, &mut Rng::new(3));
        let span = times.last().expect("nonempty").as_secs_f64();
        let rate = times.len() as f64 / span;
        let mean = p.mean_rate();
        assert!(
            (rate - mean).abs() / mean < 0.2,
            "rate {rate} vs mean {mean}"
        );
        // Burstier than Poisson at the same mean: the squared
        // coefficient of variation of the gaps exceeds 1.
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(var / (m * m) > 1.2, "cv2 {}", var / (m * m));
    }

    #[test]
    fn trace_replays_and_cycles() {
        let p = ArrivalProcess::Trace {
            inter_arrivals: vec![SimDuration::from_millis(1), SimDuration::from_millis(3)],
        };
        let times = p.arrival_times(4, &mut Rng::new(1));
        assert_eq!(
            times,
            vec![
                SimTime::from_millis(1),
                SimTime::from_millis(4),
                SimTime::from_millis(5),
                SimTime::from_millis(8),
            ]
        );
        assert!((p.mean_rate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_trace() {
        let p = ArrivalProcess::Poisson { rate: 10.0 };
        assert_eq!(
            p.arrival_times(100, &mut Rng::new(9)),
            p.arrival_times(100, &mut Rng::new(9))
        );
    }
}
