//! The serving loop.
//!
//! A [`ServeEngine`] pre-generates an open-loop request trace (arrival
//! process + per-request tokens), then walks a single-server timeline:
//! the [`Batcher`](crate::Batcher) decides when each batch leaves the
//! admission queue, the batch runs through
//! [`run_inference_batch`](lina_runner::inference::run_inference_batch)
//! under the configured scheme, and every member request is charged
//! its queueing delay plus the batch's model time.
//!
//! Two serving-specific mechanisms sit on top of the paper's per-batch
//! machinery:
//!
//! * **popularity drift** — the workload's Zipf class ranking rotates
//!   every [`ServeConfig::drift_period`] requests (via
//!   [`TokenSource::set_class_rotation`]), so the hot experts change
//!   over the run;
//! * **online re-placement** — for the estimating Lina schemes, the
//!   popularity estimator is periodically re-profiled from a sliding
//!   window of recently served batches and the two-phase scheduler
//!   rebuilt, so placement follows the drifted distribution instead of
//!   the stale offline profile.

use std::collections::VecDeque;

use lina_baselines::InferScheme;
use lina_core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina_model::CostModel;
use lina_netsim::Topology;
use lina_runner::inference::{run_inference_batch, InferenceConfig};
use lina_runner::NetworkMode;
use lina_simcore::{Rng, SimDuration};
use lina_workload::{Mode, TokenBatch, TokenPath, TokenSource, WorkloadSpec};

use crate::arrival::{ArrivalProcess, ArrivalStream};
use crate::batcher::BatcherConfig;
use crate::request::Request;
use crate::slo::{SloReport, SloTracker};

/// The paper's inference experiments use 16384 tokens per device; the
/// measured scheduling overheads (6.2 ms schedule, 1.45 ms resume)
/// belong to that scale and shrink proportionally for the much smaller
/// serving batches.
const PAPER_TOKENS_PER_DEVICE: f64 = 16_384.0;

/// Serving-run configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Scheme under test.
    pub scheme: InferScheme,
    /// Gate fan-out (1 in the paper's inference).
    pub top_k: usize,
    /// Estimator sample-path length `l` (paper: 3).
    pub path_length: usize,
    /// Packing depth cap for the re-placement. The paper's 4 suits
    /// 16k-token batches; serving batches are orders of magnitude
    /// smaller, where each packed expert's weight swap (~0.35 ms over
    /// PCIe) is no longer hidden behind expert compute, so shallow
    /// packing (2) is the serving default.
    pub max_experts_per_device: usize,
    /// The open-loop arrival process.
    pub arrival: ArrivalProcess,
    /// Dynamic-batching knobs.
    pub batcher: BatcherConfig,
    /// Latency target for SLO attainment.
    pub slo: SimDuration,
    /// Requests to serve.
    pub n_requests: usize,
    /// Tokens per request (the nominal size when `token_spread > 0`).
    pub tokens_per_request: usize,
    /// Fractional half-width of the per-request size spread: each
    /// request's token count draws uniformly from
    /// `[nominal·(1−s), nominal·(1+s)]`, clamped to ≥ 1 token. At 0.0
    /// every request is exactly `tokens_per_request` tokens and the
    /// trace is bit-identical to the fixed-size serving model. Size
    /// heterogeneity is what separates work-aware balancing
    /// (join-shortest-queue over outstanding *tokens*) from blind
    /// request counting.
    pub token_spread: f64,
    /// Rotate the workload's popular-class ranking every this many
    /// requests (`None`: the popularity distribution is stationary).
    pub drift_period: Option<usize>,
    /// Re-profile the estimator and rebuild the scheduler every this
    /// many dispatched batches (`None`: keep the offline profile).
    /// Ignored by the schemes that never estimate.
    pub reestimate_every: Option<usize>,
    /// How many recently served batches the re-profiling window holds.
    pub reestimate_window: usize,
    /// How in-flight batches price their collectives:
    /// [`NetworkMode::Solo`] is the closed-form uncontended costing
    /// (the historical behaviour, bit-identical to the pre-event-loop
    /// engine), [`NetworkMode::Contended`] runs every in-flight batch's
    /// all-to-alls on one shared network per replica, so concurrent
    /// dispatches fair-share NIC bandwidth.
    pub network: NetworkMode,
    /// Batches a replica may have in flight at once. At 1 (the
    /// busy-until-done default) batches serialize on each replica;
    /// higher values admit the next batch while earlier ones still
    /// run. Solo pricing still charges each overlapped batch its
    /// uncontended time; contended pricing makes the overlap visible
    /// on the wire.
    pub max_inflight: usize,
    /// Master seed: arrivals, request tokens, and the offline profile
    /// all derive from it.
    pub seed: u64,
    /// Simulator performance knobs ([`crate::PerfConfig`]). Purely an
    /// implementation setting: any value must reproduce the default's
    /// outcomes bit for bit.
    pub perf: crate::PerfConfig,
}

/// The seed substreams every consumer of a [`ServeConfig`] derives
/// from its master seed. Centralized so trace generation, capacity
/// probing, and the serving loops (single-server and cluster) can
/// never drift apart in derivation order.
pub(crate) struct Seeds {
    /// Seeds the request [`TokenSource`].
    pub token: u64,
    /// Seeds the offline profiling stage.
    pub profile: u64,
    /// The arrival-process substream (a pure `derive(1)` of the root,
    /// independent of the sequential draws above).
    pub arrival: Rng,
    /// The per-request size substream (a pure `derive(2)` of the root;
    /// drawing from it never perturbs the other streams, so a zero
    /// `token_spread` reproduces the fixed-size traces bit for bit).
    pub sizes: Rng,
    /// The retry-backoff jitter substream (a pure `derive(3)` of the
    /// root; [`DegradationPolicy::backoff_jittered`] sub-derives
    /// per-(request, attempt) streams from it, and a zero jitter never
    /// draws at all).
    ///
    /// [`DegradationPolicy::backoff_jittered`]: crate::DegradationPolicy::backoff_jittered
    pub retry: Rng,
}

impl ServeConfig {
    /// Derives the seed substreams: first sequential draw is the token
    /// seed, second the profile seed; arrivals use a derived substream.
    pub(crate) fn seeds(&self) -> Seeds {
        let mut root = Rng::new(self.seed);
        let arrival = root.derive(1);
        let sizes = root.derive(2);
        let retry = root.derive(3);
        let token = root.next_u64();
        let profile = root.next_u64();
        Seeds {
            token,
            profile,
            arrival,
            sizes,
            retry,
        }
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a zero request count, token count, path length,
    /// drift period, re-estimation period, or re-estimation window.
    pub fn validate(&self) {
        self.batcher.validate();
        assert!(self.n_requests > 0, "serve: n_requests must be > 0");
        assert!(
            self.tokens_per_request > 0,
            "serve: tokens_per_request must be > 0"
        );
        assert!(
            (0.0..1.0).contains(&self.token_spread),
            "serve: token_spread must be in [0, 1)"
        );
        assert!(self.path_length > 0, "serve: path_length must be > 0");
        assert!(
            self.max_experts_per_device > 0,
            "serve: max_experts_per_device must be > 0"
        );
        assert!(
            self.drift_period != Some(0),
            "serve: drift_period must be > 0"
        );
        assert!(
            self.reestimate_every != Some(0),
            "serve: reestimate_every must be > 0"
        );
        if self.reestimate_every.is_some() {
            assert!(
                self.reestimate_window > 0,
                "serve: reestimate_window must be > 0"
            );
        }
        assert!(self.max_inflight > 0, "serve: max_inflight must be > 0");
        self.perf.validate();
    }
}

/// Sliding window of recently served batches feeding online
/// re-profiling. Evicting the oldest batch is O(1) (`VecDeque`), so a
/// long run with a large window stays linear in batches dispatched.
pub(crate) struct ReestimationWindow {
    batches: VecDeque<TokenBatch>,
    cap: usize,
}

impl ReestimationWindow {
    /// An empty window holding at most `cap` batches.
    pub(crate) fn new(cap: usize) -> Self {
        ReestimationWindow {
            batches: VecDeque::new(),
            cap,
        }
    }

    /// Pushes a served batch, evicting the oldest past the cap.
    pub(crate) fn push(&mut self, batch: TokenBatch) {
        self.batches.push_back(batch);
        if self.batches.len() > self.cap {
            self.batches.pop_front();
        }
    }

    /// Re-profiles a popularity estimator from the windowed batches.
    pub(crate) fn profile(&mut self, path_length: usize) -> PopularityEstimator {
        PopularityEstimator::profile(self.batches.make_contiguous(), path_length)
    }

    /// No batches observed yet (an emergency re-placement has nothing
    /// to re-profile from).
    pub(crate) fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Drops every windowed batch. Called when the shard map changes
    /// (re-placement, recovery, re-sharding): samples observed under
    /// the old placement would otherwise blend into post-placement
    /// cost estimates.
    pub(crate) fn clear(&mut self) {
        self.batches.clear();
    }

    /// Token-selections routed to each expert across the windowed
    /// batches, summed over every layer — the per-expert load signal
    /// the re-sharding monitor reads.
    pub(crate) fn expert_token_counts(&self, experts: usize) -> Vec<u64> {
        let mut counts = vec![0u64; experts];
        for batch in &self.batches {
            for tok in &batch.tokens {
                for layer in &tok.selections {
                    for &e in layer {
                        counts[e as usize] += 1;
                    }
                }
            }
        }
        counts
    }
}

/// Everything a serving run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Per-request records and the queue-depth timeline.
    pub tracker: SloTracker,
    /// Batches dispatched.
    pub batches: usize,
    /// Times the estimator was re-profiled online.
    pub reestimations: usize,
}

impl ServeOutcome {
    /// Summarizes the run (see [`SloTracker::report`]).
    pub fn report(&self) -> SloReport {
        self.tracker.report()
    }
}

/// The serving simulator. Holds the model/cluster/workload context and
/// a [`ServeConfig`]; [`ServeEngine::run`] is deterministic in all of
/// them.
pub struct ServeEngine<'a> {
    pub(crate) cost: &'a CostModel,
    pub(crate) topo: &'a Topology,
    pub(crate) spec: &'a WorkloadSpec,
    pub(crate) config: ServeConfig,
}

impl<'a> ServeEngine<'a> {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`ServeConfig::validate`]).
    pub fn new(
        cost: &'a CostModel,
        topo: &'a Topology,
        spec: &'a WorkloadSpec,
        config: ServeConfig,
    ) -> Self {
        config.validate();
        ServeEngine {
            cost,
            topo,
            spec,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Scheduling overheads scaled from the paper's measurement scale
    /// down to this engine's full-batch size.
    pub(crate) fn two_phase_config(&self) -> TwoPhaseConfig {
        let devices = self.topo.devices();
        let full_tokens_per_device = (self.config.batcher.max_batch_requests
            * self.config.tokens_per_request)
            .div_ceil(devices)
            .max(1);
        let factor =
            (full_tokens_per_device as f64 / PAPER_TOKENS_PER_DEVICE).clamp(1.0 / 512.0, 1.0);
        let mut cfg = TwoPhaseConfig::paper_defaults(devices);
        cfg.top_k = self.config.top_k;
        cfg.max_experts_per_device = self.config.max_experts_per_device;
        cfg.schedule_time = cfg.schedule_time.mul_f64(factor);
        cfg.resume_time = cfg.resume_time.mul_f64(factor);
        cfg
    }

    pub(crate) fn needs_scheduler(&self) -> bool {
        matches!(
            self.config.scheme,
            InferScheme::Lina | InferScheme::LinaNoEstimation | InferScheme::LinaNoFinetune
        )
    }

    pub(crate) fn estimates(&self) -> bool {
        matches!(
            self.config.scheme,
            InferScheme::Lina | InferScheme::LinaNoFinetune
        )
    }

    /// Builds the offline-profiled scheduler, as the paper's profiling
    /// stage does: training-distribution batches, no drift.
    pub(crate) fn offline_scheduler(&self, profile_seed: u64) -> TwoPhaseScheduler {
        let devices = self.topo.devices();
        let mut src = TokenSource::new(self.spec, self.config.top_k, profile_seed);
        let profile: Vec<TokenBatch> = (0..8)
            .map(|_| src.sample_batch(devices, 1024, Mode::Train))
            .collect();
        let estimator = PopularityEstimator::profile(&profile, self.config.path_length);
        TwoPhaseScheduler::new(self.two_phase_config(), estimator)
    }

    /// Streams the open-loop request trace lazily: arrival instants
    /// from the arrival process, tokens from the workload's gating
    /// model, with the popular-class ranking rotated every
    /// `drift_period` requests. Yields exactly
    /// [`ServeConfig::n_requests`] requests in `(arrival, id)` order
    /// without materializing them, so a million-request diurnal run
    /// holds only the in-flight backlog in memory. Because every
    /// substream (arrivals, sizes, tokens) draws from its own seeded
    /// rng, the streamed trace is bit-identical to the eager one.
    pub fn request_stream(&self) -> RequestStream<'_> {
        let seeds = self.config.seeds();
        let nominal = self.config.tokens_per_request as f64;
        let size_lo = ((nominal * (1.0 - self.config.token_spread)).round() as u64).max(1);
        let size_hi = ((nominal * (1.0 + self.config.token_spread)).round() as u64).max(size_lo);
        RequestStream {
            arrivals: self.config.arrival.stream(seeds.arrival),
            source: TokenSource::new(self.spec, self.config.top_k, seeds.token),
            sizes: seeds.sizes,
            drift_period: self.config.drift_period,
            size_lo,
            size_hi,
            next_id: 0,
            remaining: self.config.n_requests,
        }
    }

    /// Pre-generates the open-loop request trace eagerly — the
    /// collecting wrapper over [`ServeEngine::request_stream`].
    pub fn generate_requests(&self) -> Vec<Request> {
        self.request_stream().collect()
    }

    /// Upper bound on sustainable throughput (requests/s): a full batch
    /// of nominal-size requests served back-to-back with no queueing.
    /// Load sweeps express offered load as a fraction of this.
    pub fn capacity(&self) -> f64 {
        let seeds = self.config.seeds();
        let scheduler = self
            .needs_scheduler()
            .then(|| self.offline_scheduler(seeds.profile));
        let mut source = TokenSource::new(self.spec, self.config.top_k, seeds.token);
        let per_batch = self.config.batcher.max_batch_requests;
        let tokens: Vec<TokenPath> = (0..per_batch)
            .flat_map(|_| {
                source
                    .sample_batch(1, self.config.tokens_per_request, Mode::Inference)
                    .tokens
            })
            .collect();
        let batch = TokenBatch {
            tokens,
            devices: self.topo.devices(),
            experts: self.spec.experts,
        };
        let infer = InferenceConfig {
            scheme: self.config.scheme,
            top_k: self.config.top_k,
        };
        let report = run_inference_batch(self.cost, self.topo, &infer, scheduler.as_ref(), &batch);
        per_batch as f64 / report.total.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Runs the full serving simulation.
    ///
    /// The single-server timeline is the K = 1 special case of the
    /// cluster event loop ([`crate::cluster`]): one replica, trivially
    /// routed, with its own executor and dispatch slot.
    pub fn run(&self) -> ServeOutcome {
        let mut solo = crate::balancer::RoundRobin::new();
        let outcome = crate::cluster::run_on(
            self,
            1,
            &mut solo,
            crate::EstimatorSharing::Shared,
            0.0,
            &crate::FaultPlan::none(),
            None,
            None,
            crate::HealthConfig::oracle(),
            None,
        );
        ServeOutcome {
            tracker: outcome.tracker,
            batches: outcome.batches,
            reestimations: outcome.reestimations,
        }
    }
}

/// The lazy request trace: an iterator yielding the engine's
/// open-loop requests one at a time, in `(arrival, id)` order. See
/// [`ServeEngine::request_stream`].
pub struct RequestStream<'a> {
    arrivals: ArrivalStream<'a>,
    source: TokenSource,
    sizes: Rng,
    drift_period: Option<usize>,
    size_lo: u64,
    size_hi: u64,
    next_id: usize,
    remaining: usize,
}

impl Iterator for RequestStream<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        let arrival = self.arrivals.next().expect("arrival streams are infinite");
        if let Some(period) = self.drift_period {
            self.source.set_class_rotation(id / period);
        }
        let size = self.sizes.range_inclusive(self.size_lo, self.size_hi) as usize;
        // Sampling each request as a tiny batch keeps the per-batch
        // topic burstiness: a request is "about" a few topics, like
        // the paper's skewed batches.
        let tokens = self.source.sample_batch(1, size, Mode::Inference).tokens;
        Some(Request {
            id,
            arrival,
            tokens,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Convenience wrapper: build a [`ServeEngine`] and run it.
pub fn serve(
    cost: &CostModel,
    topo: &Topology,
    spec: &WorkloadSpec,
    config: ServeConfig,
) -> ServeOutcome {
    ServeEngine::new(cost, topo, spec, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;
    use lina_simcore::SimTime;

    fn world() -> (CostModel, Topology, WorkloadSpec) {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        (cost, topo, spec)
    }

    fn config(scheme: InferScheme, rate: f64) -> ServeConfig {
        ServeConfig {
            scheme,
            top_k: 1,
            path_length: 3,
            max_experts_per_device: 2,
            arrival: ArrivalProcess::Poisson { rate },
            batcher: BatcherConfig {
                max_batch_requests: 4,
                max_wait: SimDuration::from_millis(2),
            },
            slo: SimDuration::from_millis(50),
            n_requests: 64,
            tokens_per_request: 64,
            token_spread: 0.0,
            drift_period: Some(16),
            reestimate_every: Some(4),
            reestimate_window: 8,
            network: NetworkMode::Solo,
            max_inflight: 1,
            seed: 0x5EED,
            perf: crate::PerfConfig::default(),
        }
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let (cost, topo, spec) = world();
        let out = serve(&cost, &topo, &spec, config(InferScheme::Lina, 400.0));
        let mut ids: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
        assert!(out.batches >= 64 / 4);
        assert!(out.reestimations > 0);
    }

    #[test]
    fn dispatch_respects_arrival_and_server_order() {
        let (cost, topo, spec) = world();
        let out = serve(&cost, &topo, &spec, config(InferScheme::Baseline, 1000.0));
        let records = out.tracker.records();
        for r in records {
            assert!(
                r.dispatched >= r.arrival,
                "request {} dispatched early",
                r.id
            );
            assert!(r.completed > r.dispatched);
        }
        // Batches never overlap on the single server.
        let mut spans: Vec<(SimTime, SimTime)> = records
            .iter()
            .map(|r| (r.dispatched, r.completed))
            .collect();
        spans.sort();
        spans.dedup();
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "overlapping batches: {w:?}");
        }
    }

    #[test]
    fn capacity_is_positive_and_finite() {
        let (cost, topo, spec) = world();
        let engine = ServeEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 100.0));
        let c = engine.capacity();
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn drift_rotates_request_classes() {
        let (cost, topo, spec) = world();
        let engine = ServeEngine::new(&cost, &topo, &spec, config(InferScheme::Lina, 100.0));
        let requests = engine.generate_requests();
        let modal = |rs: &[Request]| {
            let mut counts = vec![0usize; spec.classes];
            for r in rs {
                for t in &r.tokens {
                    counts[t.class] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .expect("nonempty")
                .0
        };
        // Drift period 16 with 64 requests: four rotation epochs. The
        // first and last epochs see different modal classes.
        assert_ne!(modal(&requests[..16]), modal(&requests[48..]));
    }

    #[test]
    fn reestimation_disabled_for_non_estimating_schemes() {
        let (cost, topo, spec) = world();
        let out = serve(
            &cost,
            &topo,
            &spec,
            config(InferScheme::LinaNoEstimation, 400.0),
        );
        assert_eq!(out.reestimations, 0);
    }

    #[test]
    fn token_spread_varies_request_sizes_within_bounds() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 100.0);
        c.token_spread = 0.5;
        let engine = ServeEngine::new(&cost, &topo, &spec, c);
        let sizes: Vec<usize> = engine
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .collect();
        assert!(sizes.iter().all(|&s| (32..=96).contains(&s)));
        let distinct: std::collections::HashSet<usize> = sizes.iter().copied().collect();
        assert!(distinct.len() > 1, "spread must actually vary sizes");
        // And the same config reproduces the same sizes.
        assert_eq!(
            sizes,
            engine
                .generate_requests()
                .iter()
                .map(|r| r.tokens.len())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_spread_keeps_sizes_fixed() {
        let (cost, topo, spec) = world();
        let engine = ServeEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 100.0));
        assert!(engine
            .generate_requests()
            .iter()
            .all(|r| r.tokens.len() == 64));
    }

    #[test]
    #[should_panic(expected = "token_spread")]
    fn out_of_range_spread_rejected() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 100.0);
        c.token_spread = 1.0;
        ServeEngine::new(&cost, &topo, &spec, c);
    }

    #[test]
    #[should_panic(expected = "n_requests")]
    fn zero_requests_rejected() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 100.0);
        c.n_requests = 0;
        ServeEngine::new(&cost, &topo, &spec, c);
    }
}
