//! The serving loop.
//!
//! A [`ServeEngine`] pre-generates an open-loop request trace (arrival
//! process + per-request tokens), then walks a single-server timeline:
//! the [`Batcher`](crate::Batcher) decides when each batch leaves the
//! admission queue, the batch runs through
//! [`run_inference_batch`](lina_runner::inference::run_inference_batch)
//! under the configured scheme, and every member request is charged
//! its queueing delay plus the batch's model time.
//!
//! Two serving-specific mechanisms sit on top of the paper's per-batch
//! machinery:
//!
//! * **popularity drift** — the workload's Zipf class ranking rotates
//!   every [`ServeConfig::drift_period`] requests (via
//!   [`TokenSource::set_class_rotation`]), so the hot experts change
//!   over the run;
//! * **online re-placement** — for the estimating Lina schemes, the
//!   popularity estimator is periodically re-profiled from a sliding
//!   window of recently served batches and the two-phase scheduler
//!   rebuilt, so placement follows the drifted distribution instead of
//!   the stale offline profile.

use lina_baselines::InferScheme;
use lina_core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina_model::CostModel;
use lina_netsim::Topology;
use lina_runner::inference::{run_inference_batch, InferenceConfig};
use lina_simcore::{Rng, SimDuration, SimTime};
use lina_workload::{Mode, TokenBatch, TokenPath, TokenSource, WorkloadSpec};

use crate::arrival::ArrivalProcess;
use crate::batcher::{Batcher, BatcherConfig};
use crate::request::{Request, RequestRecord};
use crate::slo::{SloReport, SloTracker};

/// The paper's inference experiments use 16384 tokens per device; the
/// measured scheduling overheads (6.2 ms schedule, 1.45 ms resume)
/// belong to that scale and shrink proportionally for the much smaller
/// serving batches.
const PAPER_TOKENS_PER_DEVICE: f64 = 16_384.0;

/// Serving-run configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Scheme under test.
    pub scheme: InferScheme,
    /// Gate fan-out (1 in the paper's inference).
    pub top_k: usize,
    /// Estimator sample-path length `l` (paper: 3).
    pub path_length: usize,
    /// Packing depth cap for the re-placement. The paper's 4 suits
    /// 16k-token batches; serving batches are orders of magnitude
    /// smaller, where each packed expert's weight swap (~0.35 ms over
    /// PCIe) is no longer hidden behind expert compute, so shallow
    /// packing (2) is the serving default.
    pub max_experts_per_device: usize,
    /// The open-loop arrival process.
    pub arrival: ArrivalProcess,
    /// Dynamic-batching knobs.
    pub batcher: BatcherConfig,
    /// Latency target for SLO attainment.
    pub slo: SimDuration,
    /// Requests to serve.
    pub n_requests: usize,
    /// Tokens per request.
    pub tokens_per_request: usize,
    /// Rotate the workload's popular-class ranking every this many
    /// requests (`None`: the popularity distribution is stationary).
    pub drift_period: Option<usize>,
    /// Re-profile the estimator and rebuild the scheduler every this
    /// many dispatched batches (`None`: keep the offline profile).
    /// Ignored by the schemes that never estimate.
    pub reestimate_every: Option<usize>,
    /// How many recently served batches the re-profiling window holds.
    pub reestimate_window: usize,
    /// Master seed: arrivals, request tokens, and the offline profile
    /// all derive from it.
    pub seed: u64,
}

impl ServeConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a zero request count, token count, path length,
    /// drift period, re-estimation period, or re-estimation window.
    pub fn validate(&self) {
        self.batcher.validate();
        assert!(self.n_requests > 0, "serve: n_requests must be > 0");
        assert!(
            self.tokens_per_request > 0,
            "serve: tokens_per_request must be > 0"
        );
        assert!(self.path_length > 0, "serve: path_length must be > 0");
        assert!(
            self.max_experts_per_device > 0,
            "serve: max_experts_per_device must be > 0"
        );
        assert!(
            self.drift_period != Some(0),
            "serve: drift_period must be > 0"
        );
        assert!(
            self.reestimate_every != Some(0),
            "serve: reestimate_every must be > 0"
        );
        if self.reestimate_every.is_some() {
            assert!(
                self.reestimate_window > 0,
                "serve: reestimate_window must be > 0"
            );
        }
    }
}

/// Everything a serving run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Per-request records and the queue-depth timeline.
    pub tracker: SloTracker,
    /// Batches dispatched.
    pub batches: usize,
    /// Times the estimator was re-profiled online.
    pub reestimations: usize,
}

impl ServeOutcome {
    /// Summarizes the run (see [`SloTracker::report`]).
    pub fn report(&self) -> SloReport {
        self.tracker.report()
    }
}

/// The serving simulator. Holds the model/cluster/workload context and
/// a [`ServeConfig`]; [`ServeEngine::run`] is deterministic in all of
/// them.
pub struct ServeEngine<'a> {
    cost: &'a CostModel,
    topo: &'a Topology,
    spec: &'a WorkloadSpec,
    config: ServeConfig,
}

impl<'a> ServeEngine<'a> {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`ServeConfig::validate`]).
    pub fn new(
        cost: &'a CostModel,
        topo: &'a Topology,
        spec: &'a WorkloadSpec,
        config: ServeConfig,
    ) -> Self {
        config.validate();
        ServeEngine {
            cost,
            topo,
            spec,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Scheduling overheads scaled from the paper's measurement scale
    /// down to this engine's full-batch size.
    fn two_phase_config(&self) -> TwoPhaseConfig {
        let devices = self.topo.devices();
        let full_tokens_per_device = (self.config.batcher.max_batch_requests
            * self.config.tokens_per_request)
            .div_ceil(devices)
            .max(1);
        let factor =
            (full_tokens_per_device as f64 / PAPER_TOKENS_PER_DEVICE).clamp(1.0 / 512.0, 1.0);
        let mut cfg = TwoPhaseConfig::paper_defaults(devices);
        cfg.top_k = self.config.top_k;
        cfg.max_experts_per_device = self.config.max_experts_per_device;
        cfg.schedule_time = cfg.schedule_time.mul_f64(factor);
        cfg.resume_time = cfg.resume_time.mul_f64(factor);
        cfg
    }

    fn needs_scheduler(&self) -> bool {
        matches!(
            self.config.scheme,
            InferScheme::Lina | InferScheme::LinaNoEstimation | InferScheme::LinaNoFinetune
        )
    }

    fn estimates(&self) -> bool {
        matches!(
            self.config.scheme,
            InferScheme::Lina | InferScheme::LinaNoFinetune
        )
    }

    /// Builds the offline-profiled scheduler, as the paper's profiling
    /// stage does: training-distribution batches, no drift.
    fn offline_scheduler(&self, profile_seed: u64) -> TwoPhaseScheduler {
        let devices = self.topo.devices();
        let mut src = TokenSource::new(self.spec, self.config.top_k, profile_seed);
        let profile: Vec<TokenBatch> = (0..8)
            .map(|_| src.sample_batch(devices, 1024, Mode::Train))
            .collect();
        let estimator = PopularityEstimator::profile(&profile, self.config.path_length);
        TwoPhaseScheduler::new(self.two_phase_config(), estimator)
    }

    /// Pre-generates the open-loop request trace: arrival instants from
    /// the arrival process, tokens from the workload's gating model,
    /// with the popular-class ranking rotated every `drift_period`
    /// requests.
    pub fn generate_requests(&self) -> Vec<Request> {
        let mut root = Rng::new(self.config.seed);
        let mut arrival_rng = root.derive(1);
        let token_seed = root.next_u64();
        let arrivals = self
            .config
            .arrival
            .arrival_times(self.config.n_requests, &mut arrival_rng);
        let mut source = TokenSource::new(self.spec, self.config.top_k, token_seed);
        arrivals
            .into_iter()
            .enumerate()
            .map(|(id, arrival)| {
                if let Some(period) = self.config.drift_period {
                    source.set_class_rotation(id / period);
                }
                // Sampling each request as a tiny batch keeps the
                // per-batch topic burstiness: a request is "about"
                // a few topics, like the paper's skewed batches.
                let tokens = source
                    .sample_batch(1, self.config.tokens_per_request, Mode::Inference)
                    .tokens;
                Request {
                    id,
                    arrival,
                    tokens,
                }
            })
            .collect()
    }

    /// Upper bound on sustainable throughput (requests/s): a full batch
    /// served back-to-back with no queueing. Load sweeps express
    /// offered load as a fraction of this.
    pub fn capacity(&self) -> f64 {
        // Same derivation order as `run`/`generate_requests`: first
        // draw is the token seed, second the profile seed (the arrival
        // stream uses a pure `derive(1)` substream).
        let mut root = Rng::new(self.config.seed);
        let token_seed = root.next_u64();
        let profile_seed = root.next_u64();
        let scheduler = self
            .needs_scheduler()
            .then(|| self.offline_scheduler(profile_seed));
        let mut source = TokenSource::new(self.spec, self.config.top_k, token_seed);
        let per_batch = self.config.batcher.max_batch_requests;
        let tokens: Vec<TokenPath> = (0..per_batch)
            .flat_map(|_| {
                source
                    .sample_batch(1, self.config.tokens_per_request, Mode::Inference)
                    .tokens
            })
            .collect();
        let batch = TokenBatch {
            tokens,
            devices: self.topo.devices(),
            experts: self.spec.experts,
        };
        let infer = InferenceConfig {
            scheme: self.config.scheme,
            top_k: self.config.top_k,
        };
        let report = run_inference_batch(self.cost, self.topo, &infer, scheduler.as_ref(), &batch);
        per_batch as f64 / report.total.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Runs the full serving simulation.
    pub fn run(&self) -> ServeOutcome {
        let mut root = Rng::new(self.config.seed);
        let _token_seed = root.next_u64(); // drawn by generate_requests
        let profile_seed = root.next_u64();

        let requests = self.generate_requests();
        let arrivals: Vec<SimTime> = requests.iter().map(|r| r.arrival).collect();
        let batcher = Batcher::new(self.config.batcher.clone());
        let infer = InferenceConfig {
            scheme: self.config.scheme,
            top_k: self.config.top_k,
        };
        let two_phase = self.two_phase_config();
        let mut scheduler = self
            .needs_scheduler()
            .then(|| self.offline_scheduler(profile_seed));

        let mut tracker = SloTracker::new(self.config.slo);
        let mut window: Vec<TokenBatch> = Vec::new();
        let mut server_free = SimTime::ZERO;
        let mut next = 0usize;
        let mut batches = 0usize;
        let mut reestimations = 0usize;

        while let Some(dispatch) = batcher.next_dispatch(&arrivals, next, server_free) {
            let members = &requests[next..next + dispatch.count];
            let tokens: Vec<TokenPath> = members
                .iter()
                .flat_map(|r| r.tokens.iter().cloned())
                .collect();
            let batch = TokenBatch {
                tokens,
                devices: self.topo.devices(),
                experts: self.spec.experts,
            };
            let report =
                run_inference_batch(self.cost, self.topo, &infer, scheduler.as_ref(), &batch);
            let completed = dispatch.at + report.total;
            for r in members {
                tracker.record(RequestRecord {
                    id: r.id,
                    arrival: r.arrival,
                    dispatched: dispatch.at,
                    completed,
                    tokens: r.tokens.len(),
                    batch: batches,
                    service: report.total,
                });
            }
            let backlog = arrivals[next + dispatch.count..]
                .iter()
                .filter(|&&a| a <= dispatch.at)
                .count();
            tracker.record_depth(dispatch.at, backlog);
            server_free = completed;
            next += dispatch.count;
            batches += 1;

            // Online re-placement: re-profile from the recent window.
            if self.estimates() {
                if let Some(every) = self.config.reestimate_every {
                    window.push(batch);
                    if window.len() > self.config.reestimate_window {
                        window.remove(0);
                    }
                    if batches.is_multiple_of(every) {
                        let estimator =
                            PopularityEstimator::profile(&window, self.config.path_length);
                        scheduler = Some(TwoPhaseScheduler::new(two_phase.clone(), estimator));
                        reestimations += 1;
                    }
                }
            }
        }

        ServeOutcome {
            tracker,
            batches,
            reestimations,
        }
    }
}

/// Convenience wrapper: build a [`ServeEngine`] and run it.
pub fn serve(
    cost: &CostModel,
    topo: &Topology,
    spec: &WorkloadSpec,
    config: ServeConfig,
) -> ServeOutcome {
    ServeEngine::new(cost, topo, spec, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;

    fn world() -> (CostModel, Topology, WorkloadSpec) {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        (cost, topo, spec)
    }

    fn config(scheme: InferScheme, rate: f64) -> ServeConfig {
        ServeConfig {
            scheme,
            top_k: 1,
            path_length: 3,
            max_experts_per_device: 2,
            arrival: ArrivalProcess::Poisson { rate },
            batcher: BatcherConfig {
                max_batch_requests: 4,
                max_wait: SimDuration::from_millis(2),
            },
            slo: SimDuration::from_millis(50),
            n_requests: 64,
            tokens_per_request: 64,
            drift_period: Some(16),
            reestimate_every: Some(4),
            reestimate_window: 8,
            seed: 0x5EED,
        }
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let (cost, topo, spec) = world();
        let out = serve(&cost, &topo, &spec, config(InferScheme::Lina, 400.0));
        let mut ids: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
        assert!(out.batches >= 64 / 4);
        assert!(out.reestimations > 0);
    }

    #[test]
    fn dispatch_respects_arrival_and_server_order() {
        let (cost, topo, spec) = world();
        let out = serve(&cost, &topo, &spec, config(InferScheme::Baseline, 1000.0));
        let records = out.tracker.records();
        for r in records {
            assert!(
                r.dispatched >= r.arrival,
                "request {} dispatched early",
                r.id
            );
            assert!(r.completed > r.dispatched);
        }
        // Batches never overlap on the single server.
        let mut spans: Vec<(SimTime, SimTime)> = records
            .iter()
            .map(|r| (r.dispatched, r.completed))
            .collect();
        spans.sort();
        spans.dedup();
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "overlapping batches: {w:?}");
        }
    }

    #[test]
    fn capacity_is_positive_and_finite() {
        let (cost, topo, spec) = world();
        let engine = ServeEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 100.0));
        let c = engine.capacity();
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn drift_rotates_request_classes() {
        let (cost, topo, spec) = world();
        let engine = ServeEngine::new(&cost, &topo, &spec, config(InferScheme::Lina, 100.0));
        let requests = engine.generate_requests();
        let modal = |rs: &[Request]| {
            let mut counts = vec![0usize; spec.classes];
            for r in rs {
                for t in &r.tokens {
                    counts[t.class] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .expect("nonempty")
                .0
        };
        // Drift period 16 with 64 requests: four rotation epochs. The
        // first and last epochs see different modal classes.
        assert_ne!(modal(&requests[..16]), modal(&requests[48..]));
    }

    #[test]
    fn reestimation_disabled_for_non_estimating_schemes() {
        let (cost, topo, spec) = world();
        let out = serve(
            &cost,
            &topo,
            &spec,
            config(InferScheme::LinaNoEstimation, 400.0),
        );
        assert_eq!(out.reestimations, 0);
    }

    #[test]
    #[should_panic(expected = "n_requests")]
    fn zero_requests_rejected() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 100.0);
        c.n_requests = 0;
        ServeEngine::new(&cost, &topo, &spec, c);
    }
}
