//! Elastic autoscaling policies for the serving cluster.
//!
//! The cluster engine evaluates an [`AutoscalePolicy`] at a fixed
//! control interval inside its unified event loop (a dedicated event
//! priority class, between executor completions and admissions at one
//! instant). The policy sees a [`ClusterObservation`] — pool sizes,
//! backlog, and the arrival count since the previous tick — and
//! returns a [`ScaleDecision`]; the engine actuates it elastically:
//!
//! * **scale-up** commissions fresh replicas that pay the modeled
//!   weight-reload/provisioning cost
//!   ([`crate::provisioning::provision_time`]) before becoming
//!   routable;
//! * **scale-down** drains the least-loaded replica — it receives no
//!   new requests but finishes its queued and in-flight work — and
//!   decommissions it once idle.
//!
//! Two shipped policies bracket the design space, in the spirit of
//! Lina's online popularity re-estimation (react to what you observe)
//! versus its offline profile (predict from a window of history):
//!
//! * [`AutoscalePolicyKind::Reactive`] — queue-depth thresholds with
//!   hysteresis (distinct up/down thresholds) and a cooldown;
//! * [`AutoscalePolicyKind::Predictive`] — a least-squares trend
//!   forecast of the arrival rate over a sliding observation window
//!   (a [`ReestimationWindow`](crate::engine)-style history), sized to
//!   land capacity *before* the forecast load arrives.
//!
//! Every policy is deterministic: decisions are pure functions of the
//! observation stream and the policy's own state, so an autoscaled run
//! is bit-reproducible like everything else in the crate — and an
//! armed policy that never triggers leaves the event loop bit-identical
//! to the fixed-replica engine.

use std::collections::VecDeque;

use lina_simcore::{SimDuration, SimTime};

/// One elastic resizing decision, actuated at the control tick that
/// produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current pool.
    Hold,
    /// Commission this many new replicas (clamped to the configured
    /// maximum pool size).
    ScaleUp(usize),
    /// Drain this many replicas toward decommission (clamped to the
    /// configured minimum pool size).
    ScaleDown(usize),
}

/// What a policy observes at a control tick.
#[derive(Clone, Debug)]
pub struct ClusterObservation {
    /// The control tick instant.
    pub now: SimTime,
    /// Replicas up, routable, and past their provisioning reload.
    pub ready: usize,
    /// Replicas commissioned but still loading weights.
    pub provisioning: usize,
    /// Replicas draining toward decommission.
    pub draining: usize,
    /// Requests queued (undispatched) across ready and provisioning
    /// replicas.
    pub queued_requests: usize,
    /// Tokens queued plus in-flight across ready and provisioning
    /// replicas.
    pub outstanding_tokens: usize,
    /// First-arrival admissions since the previous control tick.
    pub arrived_since_last: usize,
    /// The control interval (ticks are `interval` apart).
    pub interval: SimDuration,
    /// Tokens in one full batch (`max_batch_requests ·
    /// tokens_per_request`) — the natural unit of per-replica backlog.
    pub batch_tokens: usize,
    /// One replica's probed sustainable throughput (requests/s); zero
    /// when unprobed.
    pub per_replica_capacity: f64,
    /// Wall-clock cost to bring a new replica online (the weight
    /// reload a scale-up pays before the replica is routable).
    pub provision_time: SimDuration,
    /// Smallest pool the configuration allows.
    pub min_replicas: usize,
    /// Largest pool the configuration allows.
    pub max_replicas: usize,
}

impl ClusterObservation {
    /// Ready plus provisioning replicas: the pool a decision should
    /// size against (provisioning capacity is already paid for and
    /// arrives shortly).
    pub fn pool(&self) -> usize {
        self.ready + self.provisioning
    }

    /// Outstanding work per pooled replica, in full-batch units — the
    /// reactive policy's load signal.
    pub fn batches_per_replica(&self) -> f64 {
        self.outstanding_tokens as f64 / self.batch_tokens.max(1) as f64 / self.pool().max(1) as f64
    }

    /// Arrival rate observed over the last control interval
    /// (requests/s).
    pub fn arrival_rate(&self) -> f64 {
        let secs = self.interval.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.arrived_since_last as f64 / secs
        }
    }
}

/// A deterministic elastic-sizing policy, evaluated once per control
/// interval.
pub trait AutoscalePolicy {
    /// Short display name (table/metric label).
    fn name(&self) -> &'static str;

    /// Decides the pool change for this tick. Must be a pure function
    /// of the observation stream and the policy's own state (the
    /// cluster's bit-reproducibility rests on it).
    fn decide(&mut self, obs: &ClusterObservation) -> ScaleDecision;
}

/// Threshold-reactive policy: scale up when the per-replica backlog
/// exceeds `up_threshold` full batches, drain one replica when it
/// falls below `down_threshold`. The gap between the thresholds is
/// the hysteresis band; `cooldown` spaces consecutive actions.
#[derive(Clone, Debug)]
pub struct ReactivePolicy {
    up_threshold: f64,
    down_threshold: f64,
    cooldown: SimDuration,
    last_action: Option<SimTime>,
}

impl ReactivePolicy {
    /// Creates the policy; thresholds are in full batches of
    /// outstanding work per pooled replica.
    pub fn new(up_threshold: f64, down_threshold: f64, cooldown: SimDuration) -> Self {
        assert!(
            up_threshold > down_threshold,
            "reactive: up_threshold must exceed down_threshold (hysteresis)"
        );
        assert!(up_threshold > 0.0, "reactive: up_threshold must be > 0");
        ReactivePolicy {
            up_threshold,
            down_threshold,
            cooldown,
            last_action: None,
        }
    }

    fn cooling(&self, now: SimTime) -> bool {
        self.last_action.is_some_and(|at| now < at + self.cooldown)
    }
}

impl AutoscalePolicy for ReactivePolicy {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn decide(&mut self, obs: &ClusterObservation) -> ScaleDecision {
        if self.cooling(obs.now) {
            return ScaleDecision::Hold;
        }
        let load = obs.batches_per_replica();
        let pool = obs.pool();
        if load > self.up_threshold && pool < obs.max_replicas {
            // Enough replicas to bring the backlog back under the
            // threshold, capped at the configured maximum.
            let want = (obs.outstanding_tokens as f64
                / (self.up_threshold * obs.batch_tokens.max(1) as f64))
                .ceil() as usize;
            let target = want.clamp(pool + 1, obs.max_replicas);
            self.last_action = Some(obs.now);
            return ScaleDecision::ScaleUp(target - pool);
        }
        if load < self.down_threshold && pool > obs.min_replicas {
            self.last_action = Some(obs.now);
            return ScaleDecision::ScaleDown(1);
        }
        ScaleDecision::Hold
    }
}

/// Predictive policy: keeps a sliding window of observed arrival
/// rates (one sample per control tick), fits a least-squares linear
/// trend, and sizes the pool for the rate forecast one provisioning
/// lead-time ahead — so capacity lands *before* the ramp it serves.
#[derive(Clone, Debug)]
pub struct PredictivePolicy {
    target_util: f64,
    window: VecDeque<f64>,
    cap: usize,
    cooldown: SimDuration,
    last_action: Option<SimTime>,
}

impl PredictivePolicy {
    /// Creates the policy: size the pool so each replica runs at
    /// `target_util` of its probed capacity against the forecast
    /// rate; keep `window` rate samples (≥ 2, one per tick).
    pub fn new(target_util: f64, window: usize, cooldown: SimDuration) -> Self {
        assert!(
            target_util > 0.0 && target_util <= 1.0,
            "predictive: target_util must be in (0, 1]"
        );
        assert!(window >= 2, "predictive: window must hold >= 2 samples");
        PredictivePolicy {
            target_util,
            window: VecDeque::new(),
            cap: window,
            cooldown,
            last_action: None,
        }
    }

    /// Least-squares forecast of the rate `lead_ticks` past the last
    /// sample; clamped at zero (a falling trend never forecasts a
    /// negative rate).
    fn forecast(&self, lead_ticks: f64) -> f64 {
        let n = self.window.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = self.window.iter().sum::<f64>() / n;
        let (mut cov, mut var) = (0.0, 0.0);
        for (i, y) in self.window.iter().enumerate() {
            let dx = i as f64 - mean_x;
            cov += dx * (y - mean_y);
            var += dx * dx;
        }
        let slope = if var > 0.0 { cov / var } else { 0.0 };
        (mean_y + slope * (n - 1.0 - mean_x + lead_ticks)).max(0.0)
    }
}

impl AutoscalePolicy for PredictivePolicy {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn decide(&mut self, obs: &ClusterObservation) -> ScaleDecision {
        self.window.push_back(obs.arrival_rate());
        if self.window.len() > self.cap {
            self.window.pop_front();
        }
        if self.window.len() < 2 || obs.per_replica_capacity <= 0.0 || self.cooling(obs.now) {
            return ScaleDecision::Hold;
        }
        // Forecast at the horizon where newly commissioned capacity
        // would come online: one provisioning reload plus one tick.
        let lead = (obs.provision_time + obs.interval).as_secs_f64()
            / obs.interval.as_secs_f64().max(f64::MIN_POSITIVE);
        let rate = self.forecast(lead);
        let per_replica = self.target_util * obs.per_replica_capacity;
        let target =
            ((rate / per_replica).ceil() as usize).clamp(obs.min_replicas, obs.max_replicas);
        let pool = obs.pool();
        if target > pool {
            self.last_action = Some(obs.now);
            ScaleDecision::ScaleUp(target - pool)
        } else if target < pool && pool > obs.min_replicas {
            // Drain conservatively — one replica per tick — so a noisy
            // forecast dip cannot flush capacity it will want back.
            self.last_action = Some(obs.now);
            ScaleDecision::ScaleDown(1)
        } else {
            ScaleDecision::Hold
        }
    }
}

impl PredictivePolicy {
    fn cooling(&self, now: SimTime) -> bool {
        self.last_action.is_some_and(|at| now < at + self.cooldown)
    }
}

/// Replays a fixed decision script, one entry per control tick
/// ([`ScaleDecision::Hold`] once exhausted). The property tests drive
/// the engine through arbitrary generated decision sequences with it.
#[derive(Clone, Debug)]
pub struct ScriptedPolicy {
    script: Vec<ScaleDecision>,
    next: usize,
}

impl ScriptedPolicy {
    /// Creates the policy from a decision list.
    pub fn new(script: Vec<ScaleDecision>) -> Self {
        ScriptedPolicy { script, next: 0 }
    }
}

impl AutoscalePolicy for ScriptedPolicy {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn decide(&mut self, _obs: &ClusterObservation) -> ScaleDecision {
        let d = self
            .script
            .get(self.next)
            .copied()
            .unwrap_or(ScaleDecision::Hold);
        self.next += 1;
        d
    }
}

/// Constructible policy selector for configs, sweeps, and the bench
/// registry (a `Box<dyn AutoscalePolicy>` itself is not `Clone`).
#[derive(Clone, Debug)]
pub enum AutoscalePolicyKind {
    /// [`ReactivePolicy`]: backlog thresholds with hysteresis.
    Reactive {
        /// Scale up above this per-replica backlog (full batches).
        up_threshold: f64,
        /// Drain below this per-replica backlog; may be negative to
        /// never scale down.
        down_threshold: f64,
    },
    /// [`PredictivePolicy`]: windowed trend forecast.
    Predictive {
        /// Fraction of per-replica capacity to size against.
        target_util: f64,
        /// Rate samples kept (one per control tick).
        window: usize,
    },
    /// [`ScriptedPolicy`]: fixed decision replay (tests).
    Scripted {
        /// One decision per control tick.
        script: Vec<ScaleDecision>,
    },
}

impl AutoscalePolicyKind {
    /// Builds a fresh policy of this kind.
    pub fn build(&self, cooldown: SimDuration) -> Box<dyn AutoscalePolicy> {
        match self {
            AutoscalePolicyKind::Reactive {
                up_threshold,
                down_threshold,
            } => Box::new(ReactivePolicy::new(
                *up_threshold,
                *down_threshold,
                cooldown,
            )),
            AutoscalePolicyKind::Predictive {
                target_util,
                window,
            } => Box::new(PredictivePolicy::new(*target_util, *window, cooldown)),
            AutoscalePolicyKind::Scripted { script } => {
                Box::new(ScriptedPolicy::new(script.clone()))
            }
        }
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AutoscalePolicyKind::Reactive { .. } => "reactive",
            AutoscalePolicyKind::Predictive { .. } => "predictive",
            AutoscalePolicyKind::Scripted { .. } => "scripted",
        }
    }
}

/// Elastic-autoscaling configuration for a cluster run.
#[derive(Clone, Debug)]
pub struct AutoscaleConfig {
    /// The sizing policy.
    pub policy: AutoscalePolicyKind,
    /// Control interval: the policy is evaluated every `interval`
    /// while the run has work outstanding.
    pub interval: SimDuration,
    /// Minimum time between two non-hold decisions of the shipped
    /// policies.
    pub cooldown: SimDuration,
    /// Smallest pool the actuator will drain to.
    pub min_replicas: usize,
    /// Largest pool the actuator will grow to.
    pub max_replicas: usize,
}

impl AutoscaleConfig {
    /// Validates the knobs against the initial pool size.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive interval, a zero minimum, an inverted
    /// min/max range, an initial pool outside it, or invalid policy
    /// parameters.
    pub fn validate(&self, initial_replicas: usize) {
        assert!(
            self.interval > SimDuration::ZERO,
            "autoscale: interval must be > 0"
        );
        assert!(
            self.min_replicas >= 1,
            "autoscale: min_replicas must be >= 1"
        );
        assert!(
            self.max_replicas >= self.min_replicas,
            "autoscale: max_replicas must be >= min_replicas"
        );
        assert!(
            (self.min_replicas..=self.max_replicas).contains(&initial_replicas),
            "autoscale: initial replicas {initial_replicas} outside [{}, {}]",
            self.min_replicas,
            self.max_replicas
        );
        // Surface bad policy parameters at config time, not mid-run.
        let _ = self.policy.build(self.cooldown);
    }

    /// An armed-but-inert configuration: the reactive policy with an
    /// infinite up-threshold and a negative down-threshold can never
    /// trigger, so the control loop runs but the pool stays fixed —
    /// the degeneracy the equivalence tests pin bit-for-bit against
    /// the fixed-replica engine.
    pub fn inert(replicas: usize, interval: SimDuration) -> Self {
        AutoscaleConfig {
            policy: AutoscalePolicyKind::Reactive {
                up_threshold: f64::INFINITY,
                down_threshold: -1.0,
            },
            interval,
            cooldown: SimDuration::ZERO,
            min_replicas: replicas,
            max_replicas: replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_ms: u64, outstanding: usize, pool: usize, arrived: usize) -> ClusterObservation {
        ClusterObservation {
            now: SimTime::from_millis(now_ms),
            ready: pool,
            provisioning: 0,
            draining: 0,
            queued_requests: outstanding / 64,
            outstanding_tokens: outstanding,
            arrived_since_last: arrived,
            interval: SimDuration::from_millis(100),
            batch_tokens: 256,
            per_replica_capacity: 100.0,
            provision_time: SimDuration::from_millis(50),
            min_replicas: 1,
            max_replicas: 8,
        }
    }

    use lina_simcore::SimTime;

    #[test]
    fn reactive_scales_up_proportionally_and_respects_the_cap() {
        let mut p = ReactivePolicy::new(1.5, 0.25, SimDuration::ZERO);
        // 2 replicas, 10 batches outstanding: 5 per replica > 1.5 →
        // grow to ceil(10 / 1.5) = 7 replicas.
        assert_eq!(p.decide(&obs(0, 10 * 256, 2, 0)), ScaleDecision::ScaleUp(5));
        // An absurd backlog clamps at max_replicas.
        assert_eq!(
            p.decide(&obs(100, 1000 * 256, 2, 0)),
            ScaleDecision::ScaleUp(6)
        );
    }

    #[test]
    fn reactive_hysteresis_and_cooldown_prevent_thrash() {
        let mut p = ReactivePolicy::new(1.5, 0.25, SimDuration::from_millis(500));
        assert_eq!(p.decide(&obs(0, 8 * 256, 2, 0)), ScaleDecision::ScaleUp(4));
        // Inside the cooldown even an empty cluster holds.
        assert_eq!(p.decide(&obs(100, 0, 6, 0)), ScaleDecision::Hold);
        // Past it, an idle pool drains one replica per tick.
        assert_eq!(p.decide(&obs(600, 0, 6, 0)), ScaleDecision::ScaleDown(1));
        // In the hysteresis band (0.25 < load < 1.5) nothing happens.
        let mut q = ReactivePolicy::new(1.5, 0.25, SimDuration::ZERO);
        assert_eq!(q.decide(&obs(0, 256, 2, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn reactive_never_leaves_the_configured_range() {
        let mut p = ReactivePolicy::new(1.5, 0.25, SimDuration::ZERO);
        // Already at max: hold even under load.
        assert_eq!(p.decide(&obs(0, 100 * 256, 8, 0)), ScaleDecision::Hold);
        // Already at min: hold even when idle.
        assert_eq!(p.decide(&obs(100, 0, 1, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn predictive_rides_a_rising_ramp_before_it_lands() {
        let mut p = PredictivePolicy::new(0.8, 8, SimDuration::ZERO);
        // Arrival rate climbing 100 → 500 requests/s across ticks
        // (interval 100 ms → samples are arrivals/0.1 s).
        let mut decision = ScaleDecision::Hold;
        for (tick, arrived) in [10, 20, 30, 40, 50].iter().enumerate() {
            decision = p.decide(&obs(tick as u64 * 100, 0, 2, *arrived));
        }
        // Last observed rate 500/s, trend +100/s per tick, ~1.5 ticks
        // of lead → forecast ≥ 600/s; at 0.8·100/s per replica the
        // target outgrows the 2-replica pool by far.
        match decision {
            ScaleDecision::ScaleUp(n) => assert!(n >= 4, "forecast must lead the ramp, got {n}"),
            other => panic!("expected a scale-up, got {other:?}"),
        }
    }

    #[test]
    fn predictive_drains_one_at_a_time_when_the_rate_falls() {
        let mut p = PredictivePolicy::new(0.8, 4, SimDuration::ZERO);
        let mut last = ScaleDecision::Hold;
        for (tick, arrived) in [50, 30, 10, 5, 2].iter().enumerate() {
            last = p.decide(&obs(tick as u64 * 100, 0, 6, *arrived));
        }
        assert_eq!(last, ScaleDecision::ScaleDown(1));
    }

    #[test]
    fn predictive_holds_without_capacity_or_history() {
        let mut p = PredictivePolicy::new(0.8, 4, SimDuration::ZERO);
        // First tick: only one sample.
        assert_eq!(p.decide(&obs(0, 0, 2, 100)), ScaleDecision::Hold);
        // No probed capacity: cannot size, must hold.
        let mut blind = obs(100, 0, 2, 500);
        blind.per_replica_capacity = 0.0;
        assert_eq!(p.decide(&blind), ScaleDecision::Hold);
    }

    #[test]
    fn scripted_replays_then_holds() {
        let mut p = ScriptedPolicy::new(vec![
            ScaleDecision::ScaleUp(2),
            ScaleDecision::Hold,
            ScaleDecision::ScaleDown(1),
        ]);
        assert_eq!(p.decide(&obs(0, 0, 1, 0)), ScaleDecision::ScaleUp(2));
        assert_eq!(p.decide(&obs(1, 0, 3, 0)), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(2, 0, 3, 0)), ScaleDecision::ScaleDown(1));
        assert_eq!(p.decide(&obs(3, 0, 2, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn inert_config_never_triggers() {
        let cfg = AutoscaleConfig::inert(3, SimDuration::from_millis(10));
        cfg.validate(3);
        let mut p = cfg.policy.build(cfg.cooldown);
        for t in 0..50 {
            // Idle, swamped, anything: always hold.
            assert_eq!(p.decide(&obs(t, 0, 3, 0)), ScaleDecision::Hold);
            assert_eq!(
                p.decide(&obs(t, 10_000 * 256, 3, 10_000)),
                ScaleDecision::Hold
            );
        }
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        ReactivePolicy::new(0.25, 1.5, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn initial_pool_outside_range_rejected() {
        let cfg = AutoscaleConfig {
            policy: AutoscalePolicyKind::Reactive {
                up_threshold: 1.0,
                down_threshold: 0.1,
            },
            interval: SimDuration::from_millis(10),
            cooldown: SimDuration::ZERO,
            min_replicas: 2,
            max_replicas: 4,
        };
        cfg.validate(1);
    }
}
