//! Multi-replica serving: a cluster of replica servers behind a
//! pluggable load balancer.
//!
//! A [`ClusterEngine`] serves the *same* pre-generated open-loop
//! request trace a [`ServeEngine`] would (same seeds, same drift), but
//! routes each arriving request to one of `replicas` identical servers
//! via a [`LoadBalancer`]. Every replica keeps its own admission queue,
//! dynamic [`Batcher`](crate::Batcher) timeline, and a
//! [`ReplicaExecutor`] running its in-flight batches; the cluster walks
//! a K-server event loop interleaving executor events (stage
//! boundaries, batch completions) with dispatch commits in global time
//! order, so the run is deterministic down to the bit.
//!
//! Each committed batch is first lowered by the planner
//! ([`plan_batch`]) and then *executed* by the replica's executor under
//! the configured [`NetworkMode`](lina_runner::NetworkMode): solo
//! pricing reproduces the historical closed-form costing bit for bit
//! (completions are known at submit time, so the loop degenerates to
//! busy-until-done), while contended pricing runs the collectives of
//! all in-flight batches on one shared network per replica. The
//! admission depth is [`ServeConfig::max_inflight`]: a replica proposes
//! its next dispatch only while it has a free slot.
//!
//! Two re-estimation topologies compare the value of pooling
//! observations under popularity drift ([`EstimatorSharing`]):
//!
//! * **Shared** — one popularity estimator re-profiled from a sliding
//!   window of *all* replicas' recently served batches; every replica's
//!   scheduler follows it. Every replica benefits from every
//!   observation, so the estimator tracks drift at the cluster-wide
//!   batch rate.
//! * **Per-replica** — each replica re-profiles only from batches it
//!   served itself, as K isolated single-server deployments would.
//!
//! The dispatch-decision core is unchanged: each replica calls
//! [`Batcher::next_dispatch`](crate::Batcher::next_dispatch) on its own
//! routed-arrival trace with the instant its dispatch slot freed. A
//! planned dispatch is *finalized* only once the global clock passes it
//! (no later-arriving request could join the batch), which makes the
//! incremental per-replica traces exactly equivalent to full-trace
//! knowledge — the property the single-server loop relies on, now per
//! replica.

use std::collections::BTreeMap;

use lina_model::CostModel;
use lina_netsim::Topology;
use lina_runner::inference::InferenceConfig;
use lina_runner::{plan_batch, ReplicaExecutor};
use lina_simcore::SimTime;
use lina_workload::{TokenBatch, TokenPath, WorkloadSpec};

use crate::balancer::{BalancerKind, LoadBalancer, ReplicaSnapshot};
use crate::batcher::Batcher;
use crate::engine::{ReestimationWindow, ServeConfig, ServeEngine};
use crate::request::{Request, RequestRecord};
use crate::slo::SloTracker;

use lina_core::TwoPhaseScheduler;

/// How the estimating schemes pool online observations across replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstimatorSharing {
    /// One estimator re-profiled from every replica's recent batches;
    /// all replicas' schedulers follow it.
    Shared,
    /// Each replica re-profiles only from its own recent batches.
    PerReplica,
}

impl EstimatorSharing {
    /// The topology's display name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorSharing::Shared => "shared",
            EstimatorSharing::PerReplica => "per-replica",
        }
    }
}

/// Multi-replica serving configuration: the per-replica serving knobs
/// plus the cluster shape.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-replica serving knobs and the shared request-trace knobs
    /// (arrival process, request count, drift, seeds).
    pub serve: ServeConfig,
    /// Number of identical replica servers.
    pub replicas: usize,
    /// Request routing policy.
    pub balancer: BalancerKind,
    /// Online re-estimation topology.
    pub sharing: EstimatorSharing,
}

impl ClusterConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if the serving config is invalid or `replicas` is zero.
    pub fn validate(&self) {
        self.serve.validate();
        assert!(self.replicas > 0, "cluster: replicas must be > 0");
    }
}

/// Everything a cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Cluster-wide per-request records and queue-depth timeline (the
    /// depth samples are replica-local backlogs at each dispatch, in
    /// global time order).
    pub tracker: SloTracker,
    /// Batches dispatched across all replicas.
    pub batches: usize,
    /// Estimator re-profilings across all replicas (each shared-mode
    /// rebuild counts once).
    pub reestimations: usize,
    /// Requests routed to each replica.
    pub requests_per_replica: Vec<usize>,
    /// Tokens routed to each replica.
    pub tokens_per_replica: Vec<usize>,
    /// Batches dispatched by each replica.
    pub batches_per_replica: Vec<usize>,
}

impl ClusterOutcome {
    /// Summarizes the run (see [`SloTracker::report`]).
    pub fn report(&self) -> crate::SloReport {
        self.tracker.report()
    }

    /// Largest over smallest per-replica request count — 1.0 means the
    /// balancer spread arrivals perfectly evenly.
    pub fn routing_imbalance(&self) -> f64 {
        let max = self.requests_per_replica.iter().copied().max().unwrap_or(0);
        let min = self.requests_per_replica.iter().copied().min().unwrap_or(0);
        max as f64 / (min as f64).max(1.0)
    }
}

/// One replica's mutable state inside the event loop.
struct Replica {
    /// Arrival instants of requests routed here, ascending (routing
    /// happens in global arrival order).
    arrivals: Vec<SimTime>,
    /// The routed requests, parallel to `arrivals`.
    queue: Vec<Request>,
    /// Index of the first request not yet in a finalized dispatch.
    next: usize,
    /// Executes this replica's in-flight batches under the configured
    /// network mode.
    executor: ReplicaExecutor,
    /// Instant the most recently vacated dispatch slot opened (the
    /// completion that brought the replica back under `max_inflight`).
    /// A new dispatch cannot leave before it — at `max_inflight` = 1
    /// this is exactly the old `server_free` busy-until-done gate.
    slot_free: SimTime,
    /// Tokens routed but not yet dispatched.
    queued_tokens: usize,
    /// This replica's scheduler (per-replica sharing; unused while the
    /// cluster runs a shared scheduler).
    scheduler: Option<TwoPhaseScheduler>,
    /// This replica's re-profiling window (per-replica sharing).
    window: ReestimationWindow,
    /// Batches this replica has dispatched.
    batches: usize,
}

impl Replica {
    /// The balancer's view at a routing instant. The event loop drains
    /// every executor event up to `now` before routing, so in-flight
    /// counts here never include batches that already completed.
    fn snapshot(&self, id: usize, capacity: f64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            id,
            queued_requests: self.queue.len() - self.next,
            queued_tokens: self.queued_tokens,
            in_flight_tokens: self.executor.in_flight_tokens(),
            server_free: self.executor.busy_until(),
            capacity,
        }
    }
}

/// What the tracker needs about one batch member, held from dispatch
/// commit until the batch's completion event materializes the records.
struct PendingMember {
    id: usize,
    arrival: SimTime,
    tokens: usize,
}

/// The multi-replica serving simulator. Holds a [`ServeEngine`] for
/// the shared machinery (trace generation, offline profiling, seed
/// derivation) plus the cluster shape; [`ClusterEngine::run`] is
/// deterministic in all of them.
pub struct ClusterEngine<'a> {
    engine: ServeEngine<'a>,
    replicas: usize,
    balancer: BalancerKind,
    sharing: EstimatorSharing,
}

impl<'a> ClusterEngine<'a> {
    /// Creates a cluster engine.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`ClusterConfig::validate`]).
    pub fn new(
        cost: &'a CostModel,
        topo: &'a Topology,
        spec: &'a WorkloadSpec,
        config: ClusterConfig,
    ) -> Self {
        config.validate();
        ClusterEngine {
            engine: ServeEngine::new(cost, topo, spec, config.serve),
            replicas: config.replicas,
            balancer: config.balancer,
            sharing: config.sharing,
        }
    }

    /// The per-replica serving engine (trace generation, capacity).
    pub fn engine(&self) -> &ServeEngine<'a> {
        &self.engine
    }

    /// Upper bound on sustainable cluster throughput (requests/s):
    /// every replica serving full batches back to back.
    pub fn capacity(&self) -> f64 {
        self.replicas as f64 * self.engine.capacity()
    }

    /// Runs the full cluster simulation.
    pub fn run(&self) -> ClusterOutcome {
        let mut balancer = self.balancer.build();
        // Only the capacity-aware policy pays for the probe batch.
        let per_replica_capacity = match self.balancer {
            BalancerKind::LeastExpectedLatency => self.engine.capacity(),
            _ => 0.0,
        };
        run_on(
            &self.engine,
            self.replicas,
            balancer.as_mut(),
            self.sharing,
            per_replica_capacity,
        )
    }
}

/// The K-server event loop. `ServeEngine::run` delegates here with one
/// replica, so the single-server timeline *is* this loop at K = 1.
pub(crate) fn run_on(
    engine: &ServeEngine<'_>,
    n_replicas: usize,
    balancer: &mut dyn LoadBalancer,
    sharing: EstimatorSharing,
    per_replica_capacity: f64,
) -> ClusterOutcome {
    let config = &engine.config;
    let seeds = config.seeds();
    let requests = engine.generate_requests();
    let batcher = Batcher::new(config.batcher.clone());
    let infer = InferenceConfig {
        scheme: config.scheme,
        top_k: config.top_k,
    };
    let two_phase = engine.two_phase_config();
    let offline = engine
        .needs_scheduler()
        .then(|| engine.offline_scheduler(seeds.profile));

    // Shared-mode scheduler and window (used when sharing == Shared or
    // the scheme never re-estimates; per-replica mode uses the copies
    // inside each Replica instead).
    let mut shared_scheduler = offline.clone();
    let mut shared_window = ReestimationWindow::new(config.reestimate_window);

    let mut replicas: Vec<Replica> = (0..n_replicas)
        .map(|_| Replica {
            arrivals: Vec::new(),
            queue: Vec::new(),
            next: 0,
            executor: ReplicaExecutor::new(config.network, engine.topo),
            slot_free: SimTime::ZERO,
            queued_tokens: 0,
            scheduler: offline.clone(),
            window: ReestimationWindow::new(config.reestimate_window),
            batches: 0,
        })
        .collect();

    let mut tracker = SloTracker::new(config.slo);
    let mut total_batches = 0usize;
    let mut reestimations = 0usize;
    let mut requests_per_replica = vec![0usize; n_replicas];
    let mut tokens_per_replica = vec![0usize; n_replicas];
    // Per-request records materialize at the completion *event*, which
    // under concurrent replicas need not follow dispatch order; they are
    // sorted into dispatch order once the run drains.
    let mut records: Vec<RequestRecord> = Vec::new();
    // Member bookkeeping from dispatch commit until completion.
    let mut pending: BTreeMap<u64, Vec<PendingMember>> = BTreeMap::new();

    // Advances the cluster to `horizon`, interleaving two event kinds
    // in global time order (ties break toward the lowest replica
    // index):
    //
    // * **executor events** (`<= horizon`) — stage boundaries and batch
    //   completions inside a replica's executor; a completion frees a
    //   dispatch slot and materializes its members' records;
    // * **dispatch commits** (strictly `< horizon`) — a dispatch with
    //   `at < horizon` is final: every request arriving at or after
    //   `horizon` is too late to join it, and a batch-filling arrival
    //   would itself satisfy `at <= deadline < horizon`, so it is
    //   already routed.
    //
    // Executor events fire before dispatches at the same instant: the
    // completion at `t` is what frees the slot a dispatch at `t` needs.
    // Processing strictly in time order also keeps each executor's
    // submit instants monotone, which the contended network requires.
    let advance = |replicas: &mut Vec<Replica>,
                   horizon: SimTime,
                   shared_scheduler: &mut Option<TwoPhaseScheduler>,
                   shared_window: &mut ReestimationWindow,
                   total_batches: &mut usize,
                   reestimations: &mut usize,
                   tracker: &mut SloTracker,
                   records: &mut Vec<RequestRecord>,
                   pending: &mut BTreeMap<u64, Vec<PendingMember>>| {
        loop {
            let mut event: Option<(SimTime, usize)> = None;
            for (i, rep) in replicas.iter_mut().enumerate() {
                if let Some(t) = rep.executor.next_event() {
                    if t <= horizon && event.is_none_or(|(et, _)| t < et) {
                        event = Some((t, i));
                    }
                }
            }
            let mut best: Option<(SimTime, usize, crate::batcher::Dispatch)> = None;
            for (i, rep) in replicas.iter().enumerate() {
                if rep.executor.in_flight() >= config.max_inflight {
                    continue;
                }
                if let Some(d) = batcher.next_dispatch(&rep.arrivals, rep.next, rep.slot_free) {
                    if d.at < horizon && best.is_none_or(|(at, _, _)| d.at < at) {
                        best = Some((d.at, i, d));
                    }
                }
            }
            let take_event = match (event, &best) {
                (Some((t, _)), Some((at, _, _))) => t <= *at,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_event {
                let (t, i) = event.expect("checked above");
                let rep = &mut replicas[i];
                let mut inflight = rep.executor.in_flight();
                for fb in rep.executor.advance_to(t) {
                    inflight -= 1;
                    if inflight == config.max_inflight - 1 {
                        rep.slot_free = fb.completed;
                    }
                    let members = pending
                        .remove(&fb.id)
                        .expect("finished batch was committed");
                    for m in members {
                        records.push(RequestRecord {
                            id: m.id,
                            arrival: m.arrival,
                            dispatched: fb.dispatched,
                            completed: fb.completed,
                            tokens: m.tokens,
                            batch: fb.id as usize,
                            service: fb.report.total,
                        });
                    }
                }
                continue;
            }
            let Some((_, i, dispatch)) = best else { break };
            let rep = &mut replicas[i];
            let members = &rep.queue[rep.next..rep.next + dispatch.count];
            let member_info: Vec<PendingMember> = members
                .iter()
                .map(|r| PendingMember {
                    id: r.id,
                    arrival: r.arrival,
                    tokens: r.tokens.len(),
                })
                .collect();
            let tokens: Vec<TokenPath> = members
                .iter()
                .flat_map(|r| r.tokens.iter().cloned())
                .collect();
            let batch = TokenBatch {
                tokens,
                devices: engine.topo.devices(),
                experts: engine.spec.experts,
            };
            let scheduler = match sharing {
                EstimatorSharing::Shared => shared_scheduler.as_ref(),
                EstimatorSharing::PerReplica => rep.scheduler.as_ref(),
            };
            let plan = plan_batch(engine.cost, engine.topo, &infer, scheduler, &batch);
            let batch_id = *total_batches as u64;
            rep.executor.submit(batch_id, dispatch.at, plan);
            pending.insert(batch_id, member_info);
            let backlog = rep.arrivals[rep.next + dispatch.count..]
                .iter()
                .filter(|&&a| a <= dispatch.at)
                .count();
            tracker.record_depth(dispatch.at, backlog);
            rep.queued_tokens -= batch.tokens.len();
            rep.next += dispatch.count;
            rep.batches += 1;
            *total_batches += 1;

            // Online re-placement: pool observations cluster-wide
            // (shared) or keep them replica-local (per-replica).
            if engine.estimates() {
                if let Some(every) = config.reestimate_every {
                    match sharing {
                        EstimatorSharing::Shared => {
                            shared_window.push(batch);
                            if total_batches.is_multiple_of(every) {
                                let estimator = shared_window.profile(config.path_length);
                                *shared_scheduler =
                                    Some(TwoPhaseScheduler::new(two_phase.clone(), estimator));
                                *reestimations += 1;
                            }
                        }
                        EstimatorSharing::PerReplica => {
                            rep.window.push(batch);
                            if rep.batches.is_multiple_of(every) {
                                let estimator = rep.window.profile(config.path_length);
                                rep.scheduler =
                                    Some(TwoPhaseScheduler::new(two_phase.clone(), estimator));
                                *reestimations += 1;
                            }
                        }
                    }
                }
            }
        }
    };

    for req in requests {
        advance(
            &mut replicas,
            req.arrival,
            &mut shared_scheduler,
            &mut shared_window,
            &mut total_batches,
            &mut reestimations,
            &mut tracker,
            &mut records,
            &mut pending,
        );
        let snapshots: Vec<ReplicaSnapshot> = replicas
            .iter()
            .enumerate()
            .map(|(i, r)| r.snapshot(i, per_replica_capacity))
            .collect();
        let target = balancer.pick(&snapshots, req.arrival);
        assert!(
            target < n_replicas,
            "balancer {} picked out-of-range replica {target}",
            balancer.name()
        );
        requests_per_replica[target] += 1;
        tokens_per_replica[target] += req.tokens.len();
        let rep = &mut replicas[target];
        rep.arrivals.push(req.arrival);
        rep.queued_tokens += req.tokens.len();
        rep.queue.push(req);
    }
    // Every request is routed; drain the remaining dispatches and
    // completions.
    advance(
        &mut replicas,
        SimTime::MAX,
        &mut shared_scheduler,
        &mut shared_window,
        &mut total_batches,
        &mut reestimations,
        &mut tracker,
        &mut records,
        &mut pending,
    );
    assert!(pending.is_empty(), "every committed batch must complete");

    // Records enter the tracker in dispatch order (batch index, then
    // request id within the batch), exactly as the pre-event-loop
    // engine emitted them.
    records.sort_by_key(|r| (r.batch, r.id));
    for r in records {
        tracker.record(r);
    }

    ClusterOutcome {
        tracker,
        batches: total_batches,
        reestimations,
        requests_per_replica,
        tokens_per_replica,
        batches_per_replica: replicas.iter().map(|r| r.batches).collect(),
    }
}

/// Convenience wrapper: build a [`ClusterEngine`] and run it.
pub fn serve_cluster(
    cost: &CostModel,
    topo: &Topology,
    spec: &WorkloadSpec,
    config: ClusterConfig,
) -> ClusterOutcome {
    ClusterEngine::new(cost, topo, spec, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::batcher::BatcherConfig;
    use lina_baselines::InferScheme;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;
    use lina_simcore::SimDuration;

    fn world() -> (CostModel, Topology, WorkloadSpec) {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        (cost, topo, spec)
    }

    fn config(scheme: InferScheme, rate: f64, replicas: usize) -> ClusterConfig {
        ClusterConfig {
            serve: ServeConfig {
                scheme,
                top_k: 1,
                path_length: 3,
                max_experts_per_device: 2,
                arrival: ArrivalProcess::Poisson { rate },
                batcher: BatcherConfig {
                    max_batch_requests: 4,
                    max_wait: SimDuration::from_millis(2),
                },
                slo: SimDuration::from_millis(50),
                n_requests: 96,
                tokens_per_request: 64,
                token_spread: 0.0,
                drift_period: Some(24),
                reestimate_every: Some(4),
                reestimate_window: 8,
                network: lina_runner::NetworkMode::Solo,
                max_inflight: 1,
                seed: 0xC1A5,
            },
            replicas,
            balancer: BalancerKind::JoinShortestQueue,
            sharing: EstimatorSharing::Shared,
        }
    }

    #[test]
    fn cluster_serves_every_request_exactly_once() {
        let (cost, topo, spec) = world();
        let out = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 800.0, 3));
        let mut ids: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..96).collect::<Vec<_>>());
        assert_eq!(out.requests_per_replica.iter().sum::<usize>(), 96);
        assert_eq!(
            out.batches_per_replica.iter().sum::<usize>(),
            out.batches,
            "per-replica batch counts must add up"
        );
        assert!(out.reestimations > 0, "Lina re-estimates online");
    }

    #[test]
    fn replica_timelines_never_overlap() {
        let (cost, topo, spec) = world();
        let out = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 1500.0, 2),
        );
        // Group batch spans per batch id; all batches of one replica
        // are serialized, and every record obeys arrival <= dispatch.
        for r in out.tracker.records() {
            assert!(
                r.dispatched >= r.arrival,
                "request {} dispatched early",
                r.id
            );
            assert!(r.completed > r.dispatched);
        }
        // With 2 replicas, at most 2 batches may overlap at any time.
        let records = out.tracker.records();
        let mut spans: Vec<(SimTime, SimTime)> = records
            .iter()
            .map(|r| (r.dispatched, r.completed))
            .collect();
        spans.sort();
        spans.dedup();
        for (i, &(start, _)) in spans.iter().enumerate() {
            let concurrent = spans[..i].iter().filter(|&&(_, end)| end > start).count();
            assert!(
                concurrent < 2,
                "more concurrent batches than replicas at {start}"
            );
        }
    }

    #[test]
    fn cluster_is_deterministic() {
        let (cost, topo, spec) = world();
        for balancer in [
            BalancerKind::RoundRobin,
            BalancerKind::JoinShortestQueue,
            BalancerKind::LeastExpectedLatency,
        ] {
            for sharing in [EstimatorSharing::Shared, EstimatorSharing::PerReplica] {
                let mut c = config(InferScheme::Lina, 600.0, 3);
                c.balancer = balancer;
                c.sharing = sharing;
                let a = serve_cluster(&cost, &topo, &spec, c.clone());
                let b = serve_cluster(&cost, &topo, &spec, c);
                assert_eq!(a.tracker.records(), b.tracker.records());
                assert_eq!(a.requests_per_replica, b.requests_per_replica);
                assert_eq!(a.reestimations, b.reestimations);
            }
        }
    }

    #[test]
    fn single_replica_cluster_matches_single_server() {
        let (cost, topo, spec) = world();
        let c = config(InferScheme::Lina, 400.0, 1);
        let cluster = serve_cluster(&cost, &topo, &spec, c.clone());
        let single = crate::engine::serve(&cost, &topo, &spec, c.serve);
        assert_eq!(cluster.tracker.records(), single.tracker.records());
        assert_eq!(cluster.batches, single.batches);
        assert_eq!(cluster.reestimations, single.reestimations);
    }

    #[test]
    fn round_robin_splits_requests_evenly() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 500.0, 3);
        c.balancer = BalancerKind::RoundRobin;
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.requests_per_replica, vec![32, 32, 32]);
        assert!((out.routing_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_replicas_scale_capacity_and_cut_the_tail() {
        let (cost, topo, spec) = world();
        let one = ClusterEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 1.0, 1));
        let three = ClusterEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 1.0, 3));
        assert!((three.capacity() - 3.0 * one.engine().capacity()).abs() < 1e-9);
        // Offer a load that swamps one replica but not three.
        let rate = 1.5 * one.engine().capacity();
        let swamped = serve_cluster(&cost, &topo, &spec, config(InferScheme::Baseline, rate, 1));
        let cruising = serve_cluster(&cost, &topo, &spec, config(InferScheme::Baseline, rate, 3));
        let (s, c) = (swamped.report(), cruising.report());
        assert!(
            c.p99 < s.p99,
            "3 replicas p99 {} must beat 1 replica p99 {} at the same offered load",
            c.p99,
            s.p99
        );
        assert!(c.attainment >= s.attainment);
    }

    #[test]
    fn per_replica_sharing_reestimates_locally() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Lina, 800.0, 2);
        c.sharing = EstimatorSharing::PerReplica;
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert!(out.reestimations > 0);
    }

    #[test]
    #[should_panic(expected = "replicas")]
    fn zero_replicas_rejected() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 100.0, 1);
        c.replicas = 0;
        ClusterEngine::new(&cost, &topo, &spec, c);
    }
}
