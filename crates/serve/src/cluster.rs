//! Multi-replica serving: a cluster of replica servers behind a
//! pluggable load balancer, with deterministic fault injection.
//!
//! A [`ClusterEngine`] serves the *same* pre-generated open-loop
//! request trace a [`ServeEngine`] would (same seeds, same drift), but
//! routes each arriving request to one of `replicas` identical servers
//! via a [`LoadBalancer`]. Every replica keeps its own admission queue,
//! dynamic [`Batcher`](crate::Batcher) timeline, and a
//! [`ReplicaExecutor`] running its in-flight batches; the cluster walks
//! a single K-server event loop over every event kind in global
//! `(time, priority)` order, so the run is deterministic down to the
//! bit.
//!
//! Eight event kinds interleave, with the priority breaking ties at
//! one instant:
//!
//! 1. **faults** — the next [`FaultEvent`] of the configured
//!    [`FaultSchedule`]; a crash at the same instant as a completion
//!    aborts the batch (the failure wins the race);
//! 2. **executor events** — stage boundaries and batch completions
//!    inside a replica's executor; a completion frees a dispatch slot
//!    and materializes its members' records;
//! 3. **hedge timers** — an in-flight batch outlived the hedge delay
//!    ([`HedgeConfig`]): re-dispatch it speculatively to the
//!    least-suspected alternate replica. Placed right after executor
//!    events so a primary completing exactly at the deadline wins (its
//!    completion removes the timer before the timer can fire), and
//!    before admissions so an arrival at the same instant sees the
//!    hedge's in-flight work;
//! 4. **control ticks** — the autoscaler (when armed) observes the
//!    cluster every `interval` and may commission or drain replicas;
//!    it sees the instant's completions but not its admissions, so a
//!    decision never depends on work it could not have observed;
//! 5. **re-shard ticks** — the proactive re-sharder (when armed)
//!    profiles its per-expert load monitor every `interval` and may
//!    replicate, evict, or migrate expert replicas
//!    ([`ReshardPolicy`](crate::ReshardPolicy)); actuation charges the
//!    modeled PCIe transfer and bumps the plan-cache placement epoch;
//! 6. **admissions** — a request (first arrival from the lazily
//!    generated trace stream, or re-admission after a fault) is routed
//!    by the balancer, which sees only routable replicas; an arrival
//!    beats a dispatch at the same instant, so a batch-filling arrival
//!    still joins the batch, exactly as the pre-fault loop's strict
//!    `dispatch < horizon` rule had it;
//! 7. **dispatch commits** — a replica's next batch leaves once no
//!    earlier event can change it;
//! 8. **timeouts** — a queued request whose sojourn since its
//!    *original* arrival exceeds the policy's `request_timeout`
//!    becomes an explicit `TimedOut` outcome (a dispatch at the same
//!    instant wins: the request just made it).
//!
//! With an empty schedule and the inert policy ([`FaultPlan::none`]),
//! no autoscaler, no re-sharder, and no hedging, only kinds 2, 6, and
//! 7 ever fire, in exactly the pre-fault order — the healthy path is
//! reproduced bit for bit.
//!
//! # Gray failures, suspicion, and hedging
//!
//! A [`FaultKind::GrayDegrade`] slows a replica *without telling the
//! control plane*: the health bit stays up and the oracle detector
//! keeps routing into the degraded replica at full weight. An armed
//! phi-accrual detector ([`HealthConfig`], [`crate::HealthMonitor`])
//! instead infers per-replica suspicion from observed batch completion
//! latencies; balancers consume the continuous score through
//! [`ReplicaSnapshot::routable`]. Hedged dispatch ([`HedgeConfig`])
//! covers the residual tail: when an in-flight batch outlives a
//! quantile-derived delay, the batch is speculatively re-submitted on
//! the least-suspected alternate replica, the first completion wins,
//! and the loser is cancelled (per-batch abort). Every request still
//! reaches exactly one terminal outcome — the conservation audit runs
//! with hedging armed — and the wasted-compute fraction of hedging is
//! reported on [`ClusterOutcome`].
//!
//! # Proactive re-sharding
//!
//! An armed [`ReshardConfig`] turns the static expert placement
//! dynamic. At every re-shard tick the policy sees each expert's share
//! of the token-selections in a sliding monitoring window (the same
//! [`ReestimationWindow`] machinery the online re-estimator uses) and
//! may emit [`ReshardAction`]s. Applying any action charges every
//! healthy replica the modeled PCIe transfer for the weights moved
//! ([`provisioning::reshard_transfer`]), flushes every monitoring and
//! re-estimation window (their samples predate the new map), and bumps
//! the plan-cache placement epoch so no memoized plan computed against
//! the old shard map can ever be served again. Dispatch then plans
//! against the live shard map — a replicated expert's tokens split
//! across its replicas inside
//! [`plan_batch_on`](lina_runner::plan_batch_on).
//!
//! # Elastic autoscaling
//!
//! An armed [`AutoscaleConfig`] turns the fixed pool elastic. At every
//! control tick the policy sees pool sizes and backlog
//! ([`ClusterObservation`]) and returns a
//! [`ScaleDecision`](crate::autoscale::ScaleDecision). **Scale-up**
//! commissions fresh replicas that pay the shared provisioning weight
//! reload ([`crate::provisioning::provision_time`] — the same modeled
//! transfer crash recovery pays) before becoming routable.
//! **Scale-down** *drains*: the victim stops receiving admissions but
//! finishes every queued and in-flight request, then retires; its cost
//! stops accruing at the retire instant. The run's integrated pool
//! cost is reported as [`ClusterOutcome::replica_seconds`].
//!
//! # Failure semantics
//!
//! A **replica crash** aborts the replica's in-flight batches and
//! displaces both their members and every queued request; the
//! [`DegradationPolicy`] decides whether displaced work is dropped on
//! the spot (fail-fast) or re-admitted through the balancer with
//! capped exponential backoff and a retry budget. A **recovery**
//! brings the replica back with fresh hardware after a modeled weight
//! reload (PCIe transfer of its expert shard). A **device loss**
//! keeps the replica up but blocks dispatching while the lost experts
//! are re-replicated onto the survivors (an emergency re-placement
//! that re-profiles the scheduler from the re-estimation window) and
//! stretches later batches' expert compute by
//! `devices / (devices - lost)`. **Link degradation** rescales the
//! replica's network bandwidth; **stragglers** stretch expert
//! compute. The shedding policy additionally drops *new* admissions
//! whenever the healthy replicas' outstanding work exceeds the shed
//! threshold, protecting the tail of the requests already admitted.
//!
//! Two re-estimation topologies compare the value of pooling
//! observations under popularity drift ([`EstimatorSharing`]):
//!
//! * **Shared** — one popularity estimator re-profiled from a sliding
//!   window of *all* replicas' recently served batches; every replica's
//!   scheduler follows it. Every replica benefits from every
//!   observation, so the estimator tracks drift at the cluster-wide
//!   batch rate.
//! * **Per-replica** — each replica re-profiles only from batches it
//!   served itself, as K isolated single-server deployments would.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lina_model::{CostModel, ExpertPlacement, LayeredPlacement};
use lina_netsim::{SoloTimer, Topology};
use lina_runner::inference::InferenceConfig;
use lina_runner::{
    execute_plan_solo, hash_batch_content, hash_layered_placement, plan_batch_layered,
    ExecutionPlan, FinishedBatch, PlanCache, PlanCacheStats, PlanKey, ReplicaExecutor,
};
use lina_simcore::{EventQueue, Rng, SimDuration, SimTime};
use lina_workload::{TokenBatch, WorkloadSpec};

use crate::autoscale::{AutoscaleConfig, AutoscalePolicy, ClusterObservation, ScaleDecision};
use crate::balancer::{BalancerKind, LoadBalancer, ReplicaSnapshot, RoundRobin};
use crate::batcher::{Batcher, Dispatch};
use crate::engine::{ReestimationWindow, ServeConfig, ServeEngine};
use crate::faults::{DegradationPolicy, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use crate::health::{DetectorKind, HealthConfig, HealthMonitor, HedgeConfig};
use crate::provisioning;
use crate::request::{Request, RequestRecord};
use crate::resharding::{ReshardAction, ReshardConfig, ReshardObservation, ReshardPolicy};
use crate::slo::{FailureRecord, RequestOutcome, SloTracker};

use lina_core::{TwoPhaseConfig, TwoPhaseScheduler};

/// How the estimating schemes pool online observations across replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstimatorSharing {
    /// One estimator re-profiled from every replica's recent batches;
    /// all replicas' schedulers follow it.
    Shared,
    /// Each replica re-profiles only from its own recent batches.
    PerReplica,
}

impl EstimatorSharing {
    /// The topology's display name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorSharing::Shared => "shared",
            EstimatorSharing::PerReplica => "per-replica",
        }
    }
}

/// Multi-replica serving configuration: the per-replica serving knobs
/// plus the cluster shape and its failure model.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-replica serving knobs and the shared request-trace knobs
    /// (arrival process, request count, drift, seeds).
    pub serve: ServeConfig,
    /// Number of identical replica servers.
    pub replicas: usize,
    /// Request routing policy.
    pub balancer: BalancerKind,
    /// Online re-estimation topology.
    pub sharing: EstimatorSharing,
    /// Fault schedule and graceful-degradation policy
    /// ([`FaultPlan::none`] for the healthy path).
    pub faults: FaultPlan,
    /// Elastic autoscaling; `None` keeps the pool fixed at `replicas`.
    /// (Fault schedules target the initial replicas only — elastically
    /// commissioned replicas are never in a generated schedule.)
    pub autoscale: Option<AutoscaleConfig>,
    /// Proactive expert re-sharding; `None` keeps the canonical
    /// expert-per-device placement for the whole run.
    pub resharding: Option<ReshardConfig>,
    /// Per-layer base expert placement every replica plans against;
    /// `None` keeps the canonical expert-per-device map at every
    /// layer. An armed re-sharder starts from this map and mutates
    /// every layer in lockstep; a device loss resets back to it.
    pub placement: Option<LayeredPlacement>,
    /// Locality-aware all-to-all pricing: tokens whose consecutive
    /// primary experts are co-located skip the dispatch wire (see
    /// [`lina_runner::plan_batch_layered`]). Off reproduces the
    /// historical pricing bit for bit.
    pub locality: bool,
    /// Gray-failure detector ([`HealthConfig::oracle`] reproduces the
    /// historical oracle-health-bit routing bit for bit).
    pub health: HealthConfig,
    /// Hedged dispatch for tail batches; `None` never hedges (the
    /// historical behaviour, bit for bit).
    pub hedging: Option<HedgeConfig>,
}

impl ClusterConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if the serving config, fault plan, or cluster shape is
    /// invalid.
    pub fn validate(&self) {
        self.serve.validate();
        assert!(self.replicas > 0, "cluster: replicas must be > 0");
        self.faults.validate(self.replicas);
        if let Some(autoscale) = &self.autoscale {
            autoscale.validate(self.replicas);
        }
        if let Some(resharding) = &self.resharding {
            resharding.validate();
        }
        self.health.validate();
        if let Some(hedging) = &self.hedging {
            hedging.validate();
        }
    }
}

/// Everything a cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Cluster-wide per-request records, terminal failure outcomes, and
    /// queue-depth timeline (the depth samples are replica-local
    /// backlogs at each dispatch, in global time order).
    pub tracker: SloTracker,
    /// Batches dispatched across all replicas.
    pub batches: usize,
    /// Estimator re-profilings across all replicas (each shared-mode
    /// rebuild counts once; emergency device-loss rebuilds excluded).
    pub reestimations: usize,
    /// Admissions routed to each replica (a re-admitted request counts
    /// at every replica it was routed to).
    pub requests_per_replica: Vec<usize>,
    /// Tokens routed to each replica (same counting rule).
    pub tokens_per_replica: Vec<usize>,
    /// Batches dispatched by each replica.
    pub batches_per_replica: Vec<usize>,
    /// In-flight batches aborted by replica crashes.
    pub aborted_batches: usize,
    /// Fault events injected from the schedule.
    pub faults_injected: usize,
    /// Emergency expert re-placements after device losses.
    pub emergency_replacements: usize,
    /// Time to recover per crash that displaced work: from the crash
    /// instant until every displaced request reached a terminal
    /// outcome (completed elsewhere, dropped, or timed out).
    pub recovery_times: Vec<SimDuration>,
    /// Replicas commissioned by autoscale scale-up actions.
    pub scale_ups: usize,
    /// Replicas put into drain by autoscale scale-down actions.
    pub scale_downs: usize,
    /// Expert replicas added by the proactive re-sharder.
    pub replications: usize,
    /// Expert replicas dropped by the proactive re-sharder.
    pub evictions: usize,
    /// Experts moved wholesale by the proactive re-sharder.
    pub migrations: usize,
    /// Peak concurrently commissioned (not yet retired) replicas.
    pub peak_replicas: usize,
    /// Integrated pool cost in replica-seconds: each replica accrues
    /// from its commission instant until it retires (or the last event
    /// of the run). The currency of the cost-vs-SLO frontier.
    pub replica_seconds: f64,
    /// Instant of the last event the loop processed — the simulated
    /// span of the run (throughput denominators, shard merging).
    pub last_event: SimTime,
    /// Primary-expert hops across all planned batches that were priced
    /// as local handoffs under locality-aware pricing (zero with
    /// locality off).
    pub local_hops: u64,
    /// Primary-expert hops that paid the dispatch wire (zero with
    /// locality off — the planner only counts when it prices).
    pub routed_hops: u64,
    /// Plan-cache counters (all zero when the cache is off).
    pub plan_cache: PlanCacheStats,
    /// Hedges actually issued (a timer that fired and found an
    /// alternate replica); zero with hedging off.
    pub hedges_issued: usize,
    /// Hedges that completed before their primary (the primary was
    /// cancelled and the hedge's completion served the requests).
    pub hedges_won: usize,
    /// Compute spent on cancelled duplicates (the losing side of every
    /// resolved hedge race, plus hedges orphaned by crashes) as a
    /// fraction of all batch compute; zero with hedging off.
    pub hedge_wasted_frac: f64,
}

impl ClusterOutcome {
    /// Summarizes the run (see [`SloTracker::report`]).
    pub fn report(&self) -> crate::SloReport {
        self.tracker.report()
    }

    /// Largest over smallest per-replica request count — 1.0 means the
    /// balancer spread arrivals perfectly evenly.
    pub fn routing_imbalance(&self) -> f64 {
        let max = self.requests_per_replica.iter().copied().max().unwrap_or(0);
        let min = self.requests_per_replica.iter().copied().min().unwrap_or(0);
        max as f64 / (min as f64).max(1.0)
    }

    /// Fraction of primary-expert hops priced as local handoffs under
    /// locality-aware pricing; zero when locality was off (no hops
    /// were counted at all).
    pub fn locality_fraction(&self) -> f64 {
        let total = self.local_hops + self.routed_hops;
        if total == 0 {
            0.0
        } else {
            self.local_hops as f64 / total as f64
        }
    }

    /// Mean time from a work-displacing crash until all of its
    /// displaced requests reached terminal outcomes; zero when no
    /// crash displaced work.
    pub fn mean_time_to_recover(&self) -> SimDuration {
        if self.recovery_times.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.recovery_times.iter().copied().sum();
        total.mul_f64(1.0 / self.recovery_times.len() as f64)
    }
}

/// Where a replica is in its elastic lifecycle. Every replica of a
/// fixed-pool run stays [`ReplicaRole::Active`] forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReplicaRole {
    /// Serving normally (possibly still provisioning until `ready_at`).
    Active,
    /// Scale-down victim: receives no new admissions, finishes its
    /// queued and in-flight work, then retires.
    Draining,
    /// Decommissioned; invisible to every part of the loop and no
    /// longer accruing cost.
    Retired,
}

/// One replica's mutable state inside the event loop.
struct Replica {
    /// Admission instants of requests routed here, ascending (routing
    /// happens in global time order; a re-admitted request's entry is
    /// its re-admission instant, not its original arrival).
    arrivals: Vec<SimTime>,
    /// The routed requests, parallel to `arrivals`.
    queue: Vec<Request>,
    /// Prior displacement count per routed request, parallel to
    /// `arrivals` (0 = first attempt).
    attempts: Vec<u32>,
    /// Index of the first request not yet in a finalized dispatch.
    next: usize,
    /// Executes this replica's in-flight batches under the configured
    /// network mode.
    executor: ReplicaExecutor,
    /// Instant the most recently vacated dispatch slot opened (the
    /// completion that brought the replica back under `max_inflight`).
    /// A new dispatch cannot leave before it — at `max_inflight` = 1
    /// this is exactly the old `server_free` busy-until-done gate.
    /// Recovery weight reloads and emergency re-placements also push
    /// it forward.
    slot_free: SimTime,
    /// Tokens routed but not yet dispatched.
    queued_tokens: usize,
    /// This replica's scheduler (per-replica sharing; unused while the
    /// cluster runs a shared scheduler).
    scheduler: Option<TwoPhaseScheduler>,
    /// Plan-cache epoch of `scheduler`: a run-global counter value
    /// stamped at every rebuild, so two replicas share a cache entry
    /// only while their scheduler state is provably identical (the
    /// initial offline profile, epoch 0).
    epoch: u64,
    /// This replica's re-profiling window (per-replica sharing).
    window: ReestimationWindow,
    /// Batches this replica has dispatched.
    batches: usize,
    /// Up and dispatchable; a crashed replica is invisible to the
    /// balancer until its recovery event.
    healthy: bool,
    /// GPUs lost to [`FaultKind::DeviceLoss`] since the last recovery.
    devices_lost: usize,
    /// Expert-compute stretch from lost devices (survivors absorb the
    /// lost shard): `devices / (devices - devices_lost)`.
    compute_slowdown: f64,
    /// Expert-compute stretch from an active straggler episode.
    straggler: f64,
    /// Expert-compute stretch from an active *gray* degradation
    /// ([`FaultKind::GrayDegrade`]). Deliberately excluded from the
    /// balancer snapshot's capacity: the control plane is never told
    /// about gray faults, only the detector can infer them.
    gray_compute: f64,
    /// Speculative hedge batches currently executing here. Excluded
    /// from dispatch-slot accounting so a hedge never blocks the
    /// replica's own primary dispatches.
    hedges_in_flight: usize,
    /// Elastic lifecycle state.
    role: ReplicaRole,
    /// Instant the provisioning weight reload completes; balancers
    /// skip the replica before it. The initial pool is ready at time
    /// zero (its weights were loaded before the run).
    ready_at: SimTime,
    /// Instant this replica started accruing cost.
    commissioned: SimTime,
    /// Instant it stopped (retired); `None` while commissioned.
    retired_at: Option<SimTime>,
}

impl Replica {
    /// The balancer's view at a routing instant. The event loop fires
    /// every executor event at or before the routing instant first, so
    /// in-flight counts here never include batches that already
    /// completed. `suspicion` comes from the run's [`HealthMonitor`]:
    /// crashed and retired replicas are reported as infinitely suspect
    /// (the balancer contract for "unroutable"), everything else gets
    /// the detector's continuous score. Note the advertised capacity
    /// deliberately ignores `gray_compute`: the control plane never
    /// sees a gray fault directly.
    fn snapshot(&self, id: usize, capacity: f64, now: SimTime, suspicion: f64) -> ReplicaSnapshot {
        let slow = self.compute_slowdown * self.straggler;
        ReplicaSnapshot {
            id,
            suspicion: if self.healthy && self.role != ReplicaRole::Retired {
                suspicion
            } else {
                f64::INFINITY
            },
            draining: self.role == ReplicaRole::Draining,
            provisioning: self.healthy && now < self.ready_at,
            queued_requests: self.queue.len() - self.next,
            queued_tokens: self.queued_tokens,
            in_flight_tokens: self.executor.in_flight_tokens(),
            server_free: self.executor.busy_until(),
            capacity: if slow > 1.0 {
                capacity / slow
            } else {
                capacity
            },
        }
    }
}

/// One admission: a request's first arrival (pulled lazily from the
/// trace stream) or a re-admission waiting in the retry queue after
/// displacement. The retry [`EventQueue`] orders by `(at, push order)`,
/// and re-admissions are pushed in strictly increasing sequence — the
/// same order the old explicit-sequence heap produced — while "stream
/// head vs. retry head, stream wins ties" reproduces the merged order
/// bit for bit.
struct Admission {
    at: SimTime,
    attempts: u32,
    req: Request,
}

/// The next step of the unified event loop, chosen in global
/// `(time, priority)` order with faults < executor events < hedge
/// deadlines < control ticks < re-shard ticks < admissions < dispatch
/// commits < timeouts at one instant, and replica ties breaking
/// toward the lowest index.
enum Step {
    Fault,
    Executor(usize, SimTime),
    /// A hedge timer fired: the primary batch (id carried) is still in
    /// flight past its hedge deadline.
    Hedge(SimTime, u64),
    Control,
    Reshard,
    Admit,
    Dispatch(usize, Dispatch),
    Timeout(SimTime),
}

/// The multi-replica serving simulator. Holds a [`ServeEngine`] for
/// the shared machinery (trace generation, offline profiling, seed
/// derivation) plus the cluster shape and fault plan;
/// [`ClusterEngine::run`] is deterministic in all of them.
pub struct ClusterEngine<'a> {
    engine: ServeEngine<'a>,
    replicas: usize,
    balancer: BalancerKind,
    sharing: EstimatorSharing,
    faults: FaultPlan,
    autoscale: Option<AutoscaleConfig>,
    resharding: Option<ReshardConfig>,
    placement: Option<LayeredPlacement>,
    locality: bool,
    health: HealthConfig,
    hedging: Option<HedgeConfig>,
}

impl<'a> ClusterEngine<'a> {
    /// Creates a cluster engine.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`ClusterConfig::validate`]),
    /// or if a base placement disagrees with the model's layer count or
    /// the workload's expert count, or leaves an expert unhosted.
    pub fn new(
        cost: &'a CostModel,
        topo: &'a Topology,
        spec: &'a WorkloadSpec,
        config: ClusterConfig,
    ) -> Self {
        config.validate();
        if let Some(p) = &config.placement {
            assert_eq!(
                p.n_layers(),
                cost.model.layers,
                "cluster: base placement layer count must match the model"
            );
            assert_eq!(
                p.experts(),
                spec.experts,
                "cluster: base placement expert count must match the workload"
            );
            assert!(
                p.is_complete(),
                "cluster: base placement must host every expert at every layer"
            );
        }
        ClusterEngine {
            engine: ServeEngine::new(cost, topo, spec, config.serve),
            replicas: config.replicas,
            balancer: config.balancer,
            sharing: config.sharing,
            faults: config.faults,
            autoscale: config.autoscale,
            resharding: config.resharding,
            placement: config.placement,
            locality: config.locality,
            health: config.health,
            hedging: config.hedging,
        }
    }

    /// The per-replica serving engine (trace generation, capacity).
    pub fn engine(&self) -> &ServeEngine<'a> {
        &self.engine
    }

    /// Upper bound on sustainable cluster throughput (requests/s):
    /// every replica serving full batches back to back.
    pub fn capacity(&self) -> f64 {
        self.replicas as f64 * self.engine.capacity()
    }

    /// Runs the full cluster simulation.
    pub fn run(&self) -> ClusterOutcome {
        self.run_inner(None)
    }

    /// Runs the cluster over a pre-generated request trace instead of
    /// the engine's lazy arrival stream. The trace must be in
    /// `(arrival, id)` order — [`ServeEngine::generate_requests`]
    /// produces exactly that. Lets benchmarks time the event loop
    /// without arrival-generation cost inside the measured region, and
    /// replay one trace under several perf configurations. Takes the
    /// trace by value so the sequential path moves requests into the
    /// loop instead of deep-cloning their token paths.
    pub fn run_trace(&self, trace: Vec<Request>) -> ClusterOutcome {
        self.run_inner(Some(trace))
    }

    fn run_inner(&self, trace: Option<Vec<Request>>) -> ClusterOutcome {
        let mut balancer = self.balancer.build();
        // Only the capacity-aware consumers pay for the probe batch:
        // the least-expected-latency balancer and any armed autoscaler
        // (the predictive policy sizes the pool against it).
        let per_replica_capacity = if matches!(self.balancer, BalancerKind::LeastExpectedLatency)
            || self.autoscale.is_some()
        {
            self.engine.capacity()
        } else {
            0.0
        };
        run_cluster(
            &self.engine,
            self.replicas,
            balancer.as_mut(),
            self.sharing,
            per_replica_capacity,
            &self.faults,
            self.autoscale.as_ref(),
            self.resharding.as_ref(),
            self.health.clone(),
            self.hedging.clone(),
            self.placement.as_ref(),
            self.locality,
            trace,
        )
    }
}

/// An armed autoscaler's runtime state inside the event loop.
struct AutoscaleRuntime {
    config: AutoscaleConfig,
    policy: Box<dyn AutoscalePolicy>,
    /// Next control tick.
    next_at: SimTime,
    /// First-arrival admissions since the previous tick (the
    /// policies' arrival-rate signal).
    arrived_since_last: usize,
    /// What a scale-up pays before the new replica is routable.
    provision_time: SimDuration,
}

/// An armed proactive re-sharder's runtime state inside the event loop.
struct ReshardRuntime {
    config: ReshardConfig,
    policy: Box<dyn ReshardPolicy>,
    /// Next re-shard tick.
    next_at: SimTime,
    /// The per-expert load monitor: a sliding window over recently
    /// dispatched batches, flushed on every shard-map change so stale
    /// pre-change samples never drive the next decision.
    window: ReestimationWindow,
    /// The live per-layer shard map every dispatch plans against once
    /// `dirty`. Actuation mutates every layer in lockstep (see
    /// [`ExpertPlacement::add_replica`] and friends), so a uniform
    /// starting map stays uniform and the historical single-map counts
    /// are reproduced exactly.
    shard_map: LayeredPlacement,
    /// True once the map diverges from the run's base layout (the
    /// configured placement, or canonical expert-per-device); while
    /// false, dispatch plans exactly as an unarmed run would, so an
    /// inert policy is bit-identical off-path.
    dirty: bool,
    replications: usize,
    evictions: usize,
    migrations: usize,
}

/// Batch-id namespace for speculative hedge dispatches. Primary ids
/// are dense counters from zero; hedge ids live in the top half of the
/// `u64` space so the two streams can share one executor without
/// collision and a hedge id is recognizable at a glance in a debugger.
const HEDGE_BASE: u64 = 1 << 63;

/// A speculative duplicate of one primary batch, in flight on an
/// alternate replica.
struct HedgeFlight {
    /// The hedge's own batch id (`HEDGE_BASE + seq`).
    id: u64,
    /// Replica executing the hedge.
    replica: usize,
    /// Instant the hedge was dispatched.
    dispatched: SimTime,
}

/// Per-primary hedge bookkeeping, from dispatch commit until both the
/// primary and any hedge reach a terminal state.
struct HedgeState {
    /// Replica executing the primary.
    primary_replica: usize,
    /// Instant the primary was dispatched (latency sample base).
    primary_dispatched: SimTime,
    /// When the hedge timer fires if the primary is still running.
    deadline: SimTime,
    /// The primary's execution plan as planned against the *base*
    /// shard map (cloned cheaply; a hedge re-runs the same plan on the
    /// alternate replica).
    plan: Arc<ExecutionPlan>,
    /// Set when the primary's replica crashed with the hedge still
    /// live; the hedge is then the batch's only path to completion.
    primary_gone: bool,
    /// The live hedge, if the timer already fired.
    hedge: Option<HedgeFlight>,
}

/// An armed hedged-dispatch runtime: quantile-tracked completion
/// latencies, per-primary timers, and waste accounting.
struct HedgeRuntime {
    config: HedgeConfig,
    /// Observed primary batch service times, kept sorted for O(log n)
    /// insertion and O(1) quantile lookup.
    samples: Vec<SimDuration>,
    /// Armed hedge timers keyed `(deadline, primary batch id)`.
    timers: BTreeMap<(SimTime, u64), ()>,
    /// Live hedge state per primary batch id.
    live: BTreeMap<u64, HedgeState>,
    /// Reverse index: hedge batch id → primary batch id.
    by_hedge: BTreeMap<u64, u64>,
    /// Allocator for hedge batch ids.
    next_hedge_seq: u64,
    issued: usize,
    won: usize,
    /// Executor time burned by hedges that lost (or primaries that
    /// lost to their hedge) — the duplicated work.
    wasted: SimDuration,
    /// Executor time of winning flights — the useful work baseline for
    /// the waste fraction.
    useful: SimDuration,
}

impl HedgeRuntime {
    fn new(config: HedgeConfig) -> Self {
        HedgeRuntime {
            config,
            samples: Vec::new(),
            timers: BTreeMap::new(),
            live: BTreeMap::new(),
            by_hedge: BTreeMap::new(),
            next_hedge_seq: 0,
            issued: 0,
            won: 0,
            wasted: SimDuration::ZERO,
            useful: SimDuration::ZERO,
        }
    }

    /// Records one observed primary service time (sorted insert).
    fn observe(&mut self, service: SimDuration) {
        let at = self.samples.partition_point(|&s| s <= service);
        self.samples.insert(at, service);
    }

    /// The hedge delay once enough samples exist: the configured
    /// quantile of observed service times, scaled by the multiplier.
    fn delay(&self) -> Option<SimDuration> {
        if self.samples.len() < self.config.min_samples {
            return None;
        }
        let idx = (((self.samples.len() - 1) as f64) * self.config.quantile).round() as usize;
        Some(self.samples[idx].mul_f64(self.config.multiplier))
    }
}

/// Prices dispatched plans at nominal speed — no degradation, clean
/// links, solo collectives — for the health detector's expected-latency
/// estimate. The detector compares each completion against this
/// expectation, so batch size and composition drop out of the signal
/// entirely: a healthy solo replica observes exactly ratio 1.0.
/// Memoized by plan identity (consecutive batches overwhelmingly share
/// the cached plan `Arc`), and only constructed when a non-oracle
/// detector is armed — the oracle path never prices an expectation.
struct ExpectedPricer {
    timer: SoloTimer,
    memo: Option<(Arc<ExecutionPlan>, SimDuration)>,
}

impl ExpectedPricer {
    fn total(&mut self, plan: &Arc<ExecutionPlan>) -> SimDuration {
        if let Some((p, total)) = &self.memo {
            if Arc::ptr_eq(p, plan) {
                return *total;
            }
        }
        let total = execute_plan_solo(plan, &mut self.timer).total;
        self.memo = Some((plan.clone(), total));
        total
    }
}

/// The base per-layer map a run plans against while no re-shard
/// action has diverged from it: the configured placement, or the
/// canonical expert-per-device layout repeated at every layer.
fn default_shard_map(
    base: Option<&LayeredPlacement>,
    experts: usize,
    devices: usize,
    layers: usize,
) -> LayeredPlacement {
    match base {
        Some(p) => p.clone(),
        None => {
            LayeredPlacement::uniform(ExpertPlacement::one_per_device(experts, devices), layers)
        }
    }
}

/// The unified cluster event loop's state.
struct ClusterSim<'e, 'a> {
    engine: &'e ServeEngine<'a>,
    /// One shared topology handle for every executor the run creates
    /// (initial pool and elastic scale-ups alike): one deep clone per
    /// run instead of one per replica.
    topo: Arc<Topology>,
    balancer: &'e mut dyn LoadBalancer,
    schedule: &'e FaultSchedule,
    policy: DegradationPolicy,
    batcher: Batcher,
    infer: InferenceConfig,
    two_phase: TwoPhaseConfig,
    sharing: EstimatorSharing,
    per_replica_capacity: f64,
    /// Modeled PCIe transfer to (re)load one device's expert shard:
    /// `expert_swap * ceil(experts / devices)`. Charged before the
    /// first dispatch after a recovery (parallel per-device weight
    /// reload) and after a device loss (re-replicating the lost shard
    /// onto the survivors).
    reload: SimDuration,
    shared_scheduler: Option<TwoPhaseScheduler>,
    shared_window: ReestimationWindow,
    /// Plan-cache epoch of the shared scheduler (see [`Replica::epoch`]).
    shared_epoch: u64,
    /// Run-global epoch allocator: every scheduler rebuild anywhere in
    /// the cluster draws a fresh value, so no two distinct scheduler
    /// states ever share a plan-cache key.
    epoch_counter: u64,
    /// Plan memoization across submissions ([`PerfConfig::plan_cache`](crate::PerfConfig)).
    plan_cache: Option<PlanCache>,
    /// The configured per-layer base placement; `None` plans against
    /// the canonical expert-per-device map at every layer.
    base_map: Option<&'e LayeredPlacement>,
    /// Locality-aware all-to-all pricing toggle (see
    /// [`lina_runner::plan_batch_layered`]).
    locality: bool,
    /// [`PlanKey::placement`] for this run, computed once: the base
    /// placement and locality toggle never change mid-run, and every
    /// dynamic shard-map change already bumps the plan-cache epoch, so
    /// the digest never needs a refresh.
    placement_digest: u128,
    /// Primary-expert hops priced as local handoffs, accumulated from
    /// every planned batch (cache hits included — a memoized plan's
    /// counters are as real as a fresh one's).
    local_hops: u64,
    /// Primary-expert hops that paid the dispatch wire.
    routed_hops: u64,
    replicas: Vec<Replica>,
    /// First arrivals in `(arrival, id)` order: the lazily generated
    /// trace stream, a shard's filtered view of it, or a pre-generated
    /// trace under test. Memory stays bounded by the live backlog.
    stream: std::iter::Peekable<Box<dyn Iterator<Item = Request> + 'e>>,
    /// Re-admissions only (first arrivals come from `stream`).
    admissions: EventQueue<Admission>,
    /// Reused balancer-snapshot buffer: `admit` is per-request hot, so
    /// it must not allocate in steady state.
    snapshot_scratch: Vec<ReplicaSnapshot>,
    /// Armed autoscaler, if any.
    autoscale: Option<AutoscaleRuntime>,
    /// Armed proactive re-sharder, if any.
    resharding: Option<ReshardRuntime>,
    /// The health detector the balancer consults. An
    /// [`DetectorKind::Oracle`] monitor reports zero suspicion for
    /// every commissioned replica, reproducing the historical boolean
    /// health bit exactly.
    monitor: HealthMonitor,
    /// Nominal-latency pricer feeding the detector's expectations;
    /// `None` under the oracle detector.
    expect: Option<ExpectedPricer>,
    /// Expected nominal totals of in-flight batches (primaries and
    /// hedges alike), consumed at completion to form the detector's
    /// actual-over-expected observation.
    expected_service: BTreeMap<u64, SimDuration>,
    /// Armed hedged dispatch, if any.
    hedging: Option<HedgeRuntime>,
    /// Seed stream for per-request retry-backoff jitter (inert at
    /// `jitter == 0`).
    retry: Rng,
    /// Instant of the most recently processed event (the loop runs in
    /// nondecreasing time order); the cost-accounting end of the run.
    now: SimTime,
    next_fault: usize,
    tracker: SloTracker,
    /// Per-request records materialize at the completion *event*,
    /// which under concurrent replicas need not follow dispatch order;
    /// they are sorted into dispatch order once the run drains.
    records: Vec<RequestRecord>,
    /// Member bookkeeping (request plus prior displacement count) from
    /// dispatch commit until the batch completes or aborts.
    pending: BTreeMap<u64, Vec<(Request, u32)>>,
    total_batches: usize,
    reestimations: usize,
    requests_per_replica: Vec<usize>,
    tokens_per_replica: Vec<usize>,
    aborted_batches: usize,
    faults_injected: usize,
    emergency_replacements: usize,
    scale_ups: usize,
    scale_downs: usize,
    peak_replicas: usize,
    /// Open crash groups: the crash instant and the displaced request
    /// ids still lacking a terminal outcome.
    crashes: Vec<(SimTime, BTreeSet<usize>)>,
    /// Which open crash group a displaced request belongs to.
    req_crash: BTreeMap<usize, usize>,
    /// Closed crash groups' time-to-recover.
    recovery_times: Vec<SimDuration>,
    /// Conservation audit: ids that reached a terminal outcome.
    #[cfg(debug_assertions)]
    terminal_ids: BTreeSet<usize>,
    /// Conservation audit: ids pulled from the trace stream (a shard's
    /// stream sees only its slice of the trace).
    #[cfg(debug_assertions)]
    admitted_ids: BTreeSet<usize>,
}

impl ClusterSim<'_, '_> {
    /// Picks the next event in `(time, priority)` order; `None` when
    /// the run has drained.
    fn next_step(&mut self) -> Option<Step> {
        fn consider(best: &mut Option<(SimTime, u8, Step)>, t: SimTime, prio: u8, step: Step) {
            if best
                .as_ref()
                .is_none_or(|(bt, bp, _)| (t, prio) < (*bt, *bp))
            {
                *best = Some((t, prio, step));
            }
        }
        let mut best: Option<(SimTime, u8, Step)> = None;
        if let Some(e) = self.schedule.events().get(self.next_fault) {
            consider(&mut best, e.at, 0, Step::Fault);
        }
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            if let Some(t) = rep.executor.next_event() {
                consider(&mut best, t, 1, Step::Executor(i, t));
            }
        }
        // Hedge timers never drive the loop alone: one only exists
        // while its primary batch is in flight, which keeps an
        // executor event pending too. No `best.is_some()` gate needed.
        if let Some(rt) = &self.hedging {
            if let Some((&(t, primary), ())) = rt.timers.iter().next() {
                consider(&mut best, t, 2, Step::Hedge(t, primary));
            }
        }
        let next_arrival = self.stream.peek().map(|req| req.arrival);
        let next_retry = self.admissions.peek_time();
        if let Some(at) = match (next_arrival, next_retry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        } {
            consider(&mut best, at, 5, Step::Admit);
        }
        let max_inflight = self.engine.config.max_inflight;
        for (i, rep) in self.replicas.iter().enumerate() {
            // Hedges ride along outside the slot budget: a replica's
            // own dispatch pipeline only counts primary batches.
            if !rep.healthy
                || rep.role == ReplicaRole::Retired
                || rep.executor.in_flight() - rep.hedges_in_flight >= max_inflight
            {
                continue;
            }
            if let Some(d) = self
                .batcher
                .next_dispatch(&rep.arrivals, rep.next, rep.slot_free)
            {
                consider(&mut best, d.at, 6, Step::Dispatch(i, d));
            }
        }
        if let Some(to) = self.policy.request_timeout {
            for rep in &self.replicas {
                for r in &rep.queue[rep.next..] {
                    let deadline = r.arrival + to;
                    consider(&mut best, deadline, 7, Step::Timeout(deadline));
                }
            }
        }
        // Control and re-shard ticks recur forever, so one never
        // drives the loop on its own: the controllers only observe
        // while some other event still gives the run work to do.
        if let Some(rt) = &self.autoscale {
            if best.is_some() {
                consider(&mut best, rt.next_at, 3, Step::Control);
            }
        }
        if let Some(rt) = &self.resharding {
            if best.is_some() {
                consider(&mut best, rt.next_at, 4, Step::Reshard);
            }
        }
        best.map(|(_, _, step)| step)
    }

    fn run(mut self) -> ClusterOutcome {
        while let Some(step) = self.next_step() {
            match step {
                Step::Fault => {
                    let e = self.schedule.events()[self.next_fault];
                    self.next_fault += 1;
                    self.now = e.at;
                    self.apply_fault(e);
                }
                Step::Executor(i, t) => {
                    self.now = t;
                    self.complete_on(i, t);
                }
                Step::Hedge(t, primary) => {
                    self.now = t;
                    self.fire_hedge(t, primary);
                }
                Step::Control => self.control(),
                Step::Reshard => self.reshard(),
                Step::Admit => self.admit_next(),
                Step::Dispatch(i, d) => {
                    self.now = d.at;
                    self.dispatch(i, d);
                }
                Step::Timeout(deadline) => {
                    self.now = deadline;
                    self.expire(deadline);
                }
            }
        }
        self.finish()
    }

    fn apply_fault(&mut self, e: FaultEvent) {
        self.faults_injected += 1;
        match e.kind {
            FaultKind::ReplicaCrash => self.crash(e.replica, e.at),
            FaultKind::ReplicaRecover => self.recover(e.replica, e.at),
            FaultKind::DeviceLoss => self.device_loss(e.replica, e.at),
            // Non-crash faults are no-ops on a down replica: recovery
            // resets all degradation state anyway.
            FaultKind::LinkDegrade { scale } => {
                let rep = &mut self.replicas[e.replica];
                if rep.healthy {
                    rep.executor.set_link_scale(scale);
                }
            }
            FaultKind::LinkRestore => {
                let rep = &mut self.replicas[e.replica];
                if rep.healthy {
                    rep.executor.set_link_scale(1.0);
                }
            }
            FaultKind::StragglerStart { factor } => {
                let rep = &mut self.replicas[e.replica];
                if rep.healthy {
                    rep.straggler = factor;
                }
            }
            FaultKind::StragglerEnd => {
                let rep = &mut self.replicas[e.replica];
                if rep.healthy {
                    rep.straggler = 1.0;
                }
            }
            // Gray faults degrade silently: service stretches but the
            // health bit stays up, so only the detector (if armed with
            // one that actually looks) can notice.
            FaultKind::GrayDegrade {
                compute_scale,
                nic_scale,
            } => {
                let rep = &mut self.replicas[e.replica];
                if rep.healthy {
                    rep.gray_compute = compute_scale;
                    rep.executor.set_link_scale(nic_scale);
                }
            }
            FaultKind::GrayClear => {
                let rep = &mut self.replicas[e.replica];
                if rep.healthy {
                    rep.gray_compute = 1.0;
                    rep.executor.set_link_scale(1.0);
                }
            }
        }
    }

    /// The whole replica goes down: abort its in-flight batches,
    /// displace its queued requests, and hand everything displaced to
    /// the degradation policy.
    fn crash(&mut self, i: usize, at: SimTime) {
        let rep = &mut self.replicas[i];
        if !rep.healthy {
            return;
        }
        rep.healthy = false;
        rep.devices_lost = 0;
        rep.compute_slowdown = 1.0;
        rep.straggler = 1.0;
        rep.gray_compute = 1.0;
        let aborted = rep.executor.abort_all();
        rep.hedges_in_flight = 0;
        self.monitor.reset(i);
        self.aborted_batches += aborted.len();
        let mut displaced: Vec<(Request, u32)> = Vec::new();
        for id in aborted {
            // An aborted flight never completes, so its expectation is
            // never consumed — drop it here.
            self.expected_service.remove(&id);
            if id >= HEDGE_BASE {
                // A speculative hedge died with its host replica. The
                // primary (elsewhere) usually still carries the batch;
                // only if it had already crashed too do the members
                // finally displace.
                let rt = self.hedging.as_mut().expect("hedge id without a runtime");
                let primary = rt.by_hedge.remove(&id).expect("hedge id was registered");
                let st = rt.live.get_mut(&primary).expect("hedge had live state");
                let hf = st.hedge.take().expect("hedge flight was recorded");
                rt.wasted += at.saturating_since(hf.dispatched);
                if st.primary_gone {
                    rt.live.remove(&primary);
                    displaced.extend(
                        self.pending
                            .remove(&primary)
                            .expect("orphaned batch was committed"),
                    );
                }
                continue;
            }
            if let Some(rt) = self.hedging.as_mut() {
                if let Some(st) = rt.live.get_mut(&id) {
                    if st.hedge.is_some() {
                        // A hedge is still racing this batch elsewhere:
                        // the members ride the hedge instead of being
                        // displaced, so the crash costs them nothing
                        // beyond the head start they lose.
                        st.primary_gone = true;
                        continue;
                    }
                    // Timer armed but never fired: disarm it.
                    rt.timers.remove(&(st.deadline, id));
                    rt.live.remove(&id);
                }
            }
            displaced.extend(
                self.pending
                    .remove(&id)
                    .expect("aborted batch was committed"),
            );
        }
        let rep = &mut self.replicas[i];
        // Drain the undispatched tail by move — a displaced request's
        // token paths travel to the retry queue without a deep clone.
        displaced.extend(
            rep.queue
                .drain(rep.next..)
                .zip(rep.attempts.drain(rep.next..)),
        );
        rep.arrivals.truncate(rep.next);
        rep.queued_tokens = 0;
        // A crashed drain victim has nothing left to finish draining:
        // retire it on the spot (a recovery would revive a replica the
        // autoscaler already decided to shed).
        if rep.role == ReplicaRole::Draining {
            rep.role = ReplicaRole::Retired;
            rep.retired_at = Some(at);
        }

        // Open a crash group for time-to-recover accounting; a request
        // displaced a second time migrates to the newest group (its
        // old group closes now if that emptied it).
        if !displaced.is_empty() {
            let ids: BTreeSet<usize> = displaced.iter().map(|(r, _)| r.id).collect();
            for &id in &ids {
                if let Some(ci) = self.req_crash.get(&id).copied() {
                    self.crashes[ci].1.remove(&id);
                    if self.crashes[ci].1.is_empty() {
                        self.recovery_times
                            .push(at.saturating_since(self.crashes[ci].0));
                    }
                }
            }
            let ci = self.crashes.len();
            for &id in &ids {
                self.req_crash.insert(id, ci);
            }
            self.crashes.push((at, ids));
        }

        for (req, attempts) in displaced {
            if !self.policy.retries() {
                self.fail(req, at, RequestOutcome::Dropped);
                continue;
            }
            let n = attempts + 1;
            if n > self.policy.retry_budget {
                self.fail(req, at, RequestOutcome::Dropped);
                continue;
            }
            let retry_at = at + self.policy.backoff_jittered(n, req.id, &self.retry);
            if let Some(to) = self.policy.request_timeout {
                let deadline = req.arrival + to;
                if retry_at > deadline {
                    self.fail(req, deadline.max(at), RequestOutcome::TimedOut);
                    continue;
                }
            }
            self.admissions.push(
                retry_at,
                Admission {
                    at: retry_at,
                    attempts: n,
                    req,
                },
            );
        }
    }

    /// Fresh hardware comes back: clear all degradation state and gate
    /// the first dispatch behind the weight reload.
    fn recover(&mut self, i: usize, at: SimTime) {
        let reload = self.reload;
        let rep = &mut self.replicas[i];
        if rep.healthy || rep.role == ReplicaRole::Retired {
            return;
        }
        rep.healthy = true;
        rep.devices_lost = 0;
        rep.compute_slowdown = 1.0;
        rep.straggler = 1.0;
        rep.gray_compute = 1.0;
        rep.executor.set_link_scale(1.0);
        // The replica's own monitoring samples predate the crash:
        // flush them so a per-replica re-profile after recovery starts
        // from post-recovery observations only. (Under shared sharing
        // dispatch never fills the per-replica window, so this is a
        // no-op there — the pooled shared window survives untouched.)
        rep.window.clear();
        rep.slot_free = rep.slot_free.max(at + reload);
        // Post-recovery hardware is fresh: pre-crash latency history
        // (and any suspicion it earned) no longer describes it.
        self.monitor.reset(i);
    }

    /// One GPU dies but the replica survives: emergency re-placement
    /// of the lost experts onto the survivors (modeled PCIe transfer
    /// gating the next dispatch, scheduler re-profiled from the
    /// re-estimation window) and a permanent compute stretch until
    /// recovery. Losing the last device escalates to a crash.
    fn device_loss(&mut self, i: usize, at: SimTime) {
        if !self.replicas[i].healthy {
            return;
        }
        let devices = self.engine.topo.devices();
        if self.replicas[i].devices_lost + 1 >= devices {
            self.crash(i, at);
            return;
        }
        let reload = self.reload;
        let rep = &mut self.replicas[i];
        rep.devices_lost += 1;
        rep.compute_slowdown = devices as f64 / (devices - rep.devices_lost) as f64;
        rep.slot_free = rep.slot_free.max(at + reload);
        self.emergency_replacements += 1;
        // The emergency re-placement rebuilt the expert layout, so
        // every memoized plan was computed against a placement that no
        // longer exists: bump the plan-cache epoch *unconditionally* —
        // even for non-estimating schemes and empty windows — or a
        // same-content batch after the loss would be served a stale
        // cached plan.
        self.epoch_counter += 1;
        match self.sharing {
            EstimatorSharing::Shared => self.shared_epoch = self.epoch_counter,
            EstimatorSharing::PerReplica => self.replicas[i].epoch = self.epoch_counter,
        }
        // Re-profile immediately from whatever the window holds — an
        // out-of-cycle rebuild (not counted as a periodic
        // re-estimation) so the next plan reflects current popularity
        // — then flush the source window: its samples were gathered
        // under the pre-loss placement.
        if self.engine.estimates() {
            let path_length = self.engine.config.path_length;
            match self.sharing {
                EstimatorSharing::Shared => {
                    if !self.shared_window.is_empty() {
                        let estimator = self.shared_window.profile(path_length);
                        self.shared_scheduler =
                            Some(TwoPhaseScheduler::new(self.two_phase.clone(), estimator));
                        self.shared_window.clear();
                    }
                }
                EstimatorSharing::PerReplica => {
                    let rep = &mut self.replicas[i];
                    if !rep.window.is_empty() {
                        let estimator = rep.window.profile(path_length);
                        rep.scheduler =
                            Some(TwoPhaseScheduler::new(self.two_phase.clone(), estimator));
                        rep.window.clear();
                    }
                }
            }
        }
        // A dynamic shard map does not survive the loss either: the
        // emergency re-replication restores the run's base layout, and
        // the proactive controller restarts from scratch.
        let base_map = self.base_map;
        if let Some(rt) = &mut self.resharding {
            rt.shard_map = default_shard_map(
                base_map,
                self.engine.spec.experts,
                self.engine.topo.devices(),
                self.engine.cost.model.layers,
            );
            rt.dirty = false;
            rt.window.clear();
        }
    }

    /// Pops the earliest admission — the trace stream's head or the
    /// retry queue's head, the stream winning ties (a first arrival
    /// always precedes any re-admission at the same instant).
    fn admit_next(&mut self) {
        let take_stream = match (self.stream.peek(), self.admissions.peek_time()) {
            (Some(req), Some(at)) => req.arrival <= at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("Step::Admit without a pending admission"),
        };
        let adm = if take_stream {
            let req = self.stream.next().expect("peeked above");
            #[cfg(debug_assertions)]
            self.admitted_ids.insert(req.id);
            Admission {
                at: req.arrival,
                attempts: 0,
                req,
            }
        } else {
            self.admissions.pop().expect("peeked above").1
        };
        self.now = adm.at;
        if let Some(rt) = &mut self.autoscale {
            if adm.attempts == 0 {
                rt.arrived_since_last += 1;
            }
        }
        self.admit(adm);
    }

    /// One autoscaler control tick: observe the pool and the backlog,
    /// ask the policy, actuate its decision.
    fn control(&mut self) {
        let batch_tokens =
            self.engine.config.batcher.max_batch_requests * self.engine.config.tokens_per_request;
        let per_replica_capacity = self.per_replica_capacity;
        let rt = self
            .autoscale
            .as_mut()
            .expect("control event without an autoscaler");
        let at = rt.next_at;
        rt.next_at = at + rt.config.interval;
        self.now = at;
        let (mut ready, mut provisioning, mut draining) = (0usize, 0usize, 0usize);
        let (mut queued_requests, mut outstanding) = (0usize, 0usize);
        for rep in &self.replicas {
            if !rep.healthy || rep.role == ReplicaRole::Retired {
                continue;
            }
            match rep.role {
                ReplicaRole::Draining => draining += 1,
                ReplicaRole::Active => {
                    if at < rep.ready_at {
                        provisioning += 1;
                    } else {
                        ready += 1;
                    }
                    // A draining replica's leftover work is its own to
                    // finish; only active replicas' backlog argues for
                    // more capacity.
                    queued_requests += rep.queue.len() - rep.next;
                    outstanding += rep.queued_tokens + rep.executor.in_flight_tokens();
                }
                ReplicaRole::Retired => unreachable!(),
            }
        }
        let obs = ClusterObservation {
            now: at,
            ready,
            provisioning,
            draining,
            queued_requests,
            outstanding_tokens: outstanding,
            arrived_since_last: rt.arrived_since_last,
            interval: rt.config.interval,
            batch_tokens,
            per_replica_capacity,
            provision_time: rt.provision_time,
            min_replicas: rt.config.min_replicas,
            max_replicas: rt.config.max_replicas,
        };
        rt.arrived_since_last = 0;
        match rt.policy.decide(&obs) {
            ScaleDecision::Hold => {}
            ScaleDecision::ScaleUp(n) => self.scale_up(n, at),
            ScaleDecision::ScaleDown(n) => self.scale_down(n, at),
        }
    }

    /// Commissions up to `n` fresh replicas. `max_replicas` is a
    /// hardware budget: it caps every not-yet-retired replica —
    /// draining (and even crashed) replicas hold their slot until they
    /// retire. Each new replica pays the provisioning weight reload
    /// before its first dispatch and stays invisible to the balancers
    /// until then.
    fn scale_up(&mut self, n: usize, at: SimTime) {
        let engine = self.engine;
        let rt = self
            .autoscale
            .as_ref()
            .expect("scale-up without an autoscaler");
        let max = rt.config.max_replicas;
        let ready_at = at + rt.provision_time;
        for _ in 0..n {
            let pool = self
                .replicas
                .iter()
                .filter(|r| r.retired_at.is_none())
                .count();
            if pool >= max {
                break;
            }
            self.replicas.push(Replica {
                arrivals: Vec::new(),
                queue: Vec::new(),
                attempts: Vec::new(),
                next: 0,
                executor: ReplicaExecutor::new_shared(
                    engine.config.network,
                    self.topo.clone(),
                    engine.config.perf.queue,
                ),
                slot_free: ready_at,
                queued_tokens: 0,
                // Starts from the cluster's current shared profile
                // (per-replica sharing never re-profiles the shared
                // copy, so this is the offline profile there — the
                // same starting point the initial pool had).
                scheduler: self.shared_scheduler.clone(),
                epoch: self.shared_epoch,
                window: ReestimationWindow::new(engine.config.reestimate_window),
                batches: 0,
                healthy: true,
                devices_lost: 0,
                compute_slowdown: 1.0,
                straggler: 1.0,
                gray_compute: 1.0,
                hedges_in_flight: 0,
                role: ReplicaRole::Active,
                ready_at,
                commissioned: at,
                retired_at: None,
            });
            self.monitor.ensure(self.replicas.len());
            self.requests_per_replica.push(0);
            self.tokens_per_replica.push(0);
            self.scale_ups += 1;
            let live = self
                .replicas
                .iter()
                .filter(|r| r.retired_at.is_none())
                .count();
            self.peak_replicas = self.peak_replicas.max(live);
        }
    }

    /// Drains up to `n` replicas toward decommission (stopping at
    /// `min_replicas`): the least-loaded active replica — ties toward
    /// the newest, so a still-provisioning replica goes first — stops
    /// receiving admissions and retires once idle.
    fn scale_down(&mut self, n: usize, at: SimTime) {
        let min = self
            .autoscale
            .as_ref()
            .expect("scale-down without an autoscaler")
            .config
            .min_replicas;
        for _ in 0..n {
            let pool = self
                .replicas
                .iter()
                .filter(|r| r.healthy && r.role == ReplicaRole::Active)
                .count();
            if pool <= min {
                break;
            }
            let victim = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.healthy && r.role == ReplicaRole::Active)
                .min_by_key(|(i, r)| (r.queued_tokens + r.executor.in_flight_tokens(), Reverse(*i)))
                .map(|(i, _)| i)
                .expect("pool above minimum has a drain candidate");
            self.replicas[victim].role = ReplicaRole::Draining;
            self.scale_downs += 1;
            self.try_retire(victim, at);
        }
    }

    /// Retires a draining replica the moment it has nothing queued and
    /// nothing in flight; cost accrual stops at `at`.
    fn try_retire(&mut self, i: usize, at: SimTime) {
        let rep = &mut self.replicas[i];
        if rep.role == ReplicaRole::Draining
            && rep.next == rep.queue.len()
            && rep.executor.in_flight() == 0
        {
            rep.role = ReplicaRole::Retired;
            rep.retired_at = Some(at);
        }
    }

    /// One proactive re-sharding tick: profile the monitoring window
    /// into per-expert load shares, ask the policy, apply its shard-map
    /// mutations deterministically, and — when anything changed —
    /// charge the modeled PCIe transfer for the weights moved, flush
    /// every monitoring and re-estimation window, and bump the
    /// plan-cache placement epochs so no plan computed against the old
    /// map survives.
    fn reshard(&mut self) {
        let experts = self.engine.spec.experts;
        let devices = self.engine.topo.devices();
        let layers = self.engine.cost.model.layers;
        let base_map = self.base_map;
        let rt = self
            .resharding
            .as_mut()
            .expect("reshard event without a re-sharder");
        let at = rt.next_at;
        rt.next_at = at + rt.config.interval;
        self.now = at;
        let counts = rt.window.expert_token_counts(experts);
        let total: u64 = counts.iter().sum();
        let share: Vec<f64> = counts
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect();
        // The policy sees one layer's replica counts: actuation keeps
        // every layer in lockstep, so layer 0 speaks for the map.
        let replicas_per_expert: Vec<usize> =
            rt.shard_map.layer(0).hosts.iter().map(Vec::len).collect();
        // Per-device capacity: the canonical density plus one slot of
        // headroom, so replication always has somewhere to go without
        // letting the map degenerate into every-expert-everywhere.
        let cap = experts.div_ceil(devices) + 1;
        let actions = rt.policy.decide(&ReshardObservation {
            now: at,
            expert_share: &share,
            replicas: &replicas_per_expert,
            devices,
            max_experts_per_device: cap,
        });
        // Each action mutates every layer of the map in lockstep; a
        // layer where the deterministic rule finds no eligible move is
        // skipped, and the action counts once if any layer moved. On a
        // uniform map every layer accepts or refuses identically, so
        // the historical single-map counts are reproduced exactly.
        let mut moved = 0usize;
        let mut applied = false;
        for action in actions {
            match action {
                ReshardAction::Replicate(e) => {
                    let mut ok = false;
                    for layer in rt.shard_map.layers_mut() {
                        ok |= layer.add_replica(e, devices, cap);
                    }
                    if ok {
                        rt.replications += 1;
                        moved += 1;
                        applied = true;
                    }
                }
                ReshardAction::Evict(e) => {
                    let mut ok = false;
                    for layer in rt.shard_map.layers_mut() {
                        ok |= layer.drop_replica(e, devices);
                    }
                    if ok {
                        rt.evictions += 1;
                        applied = true;
                    }
                }
                ReshardAction::Migrate(e) => {
                    let mut ok = false;
                    for layer in rt.shard_map.layers_mut() {
                        ok |= layer.migrate_replica(e, devices, cap);
                    }
                    if ok {
                        rt.migrations += 1;
                        moved += 1;
                        applied = true;
                    }
                }
            }
        }
        if !applied {
            return;
        }
        rt.dirty = rt.shard_map != default_shard_map(base_map, experts, devices, layers);
        rt.window.clear();
        // Actuation: each healthy replica stalls behind the PCIe
        // transfer for the replicas that moved (evictions are free),
        // priced by the same primitive recovery reloads use.
        if moved > 0 {
            let charge = provisioning::reshard_transfer(
                self.engine.cost,
                self.engine.topo,
                moved,
                rt.config.transfer_cost,
            );
            for rep in &mut self.replicas {
                if rep.healthy && rep.role != ReplicaRole::Retired {
                    rep.slot_free = rep.slot_free.max(at + charge);
                }
            }
        }
        // The placement changed: no memoized plan and no window sample
        // gathered under the old map may survive it.
        self.epoch_counter += 1;
        self.shared_epoch = self.epoch_counter;
        self.shared_window.clear();
        for rep in &mut self.replicas {
            self.epoch_counter += 1;
            rep.epoch = self.epoch_counter;
            rep.window.clear();
        }
    }

    /// Routes one admission (first arrival or re-admission) through
    /// the balancer, which sees only routable replicas; applies the
    /// shedding admission controller to first arrivals.
    fn admit(&mut self, adm: Admission) {
        let now = adm.at;
        let n_alive = self
            .replicas
            .iter()
            .filter(|r| r.healthy && r.role != ReplicaRole::Retired)
            .count();
        if n_alive == 0 {
            // Total outage. Retry policies park the admission until
            // the next scheduled recovery (the recovery fault fires
            // first at that instant, so a replica is healthy by then);
            // fail-fast, or a cluster that never recovers, drops.
            if self.policy.retries() {
                if let Some(rec) = self.schedule.next_recovery_after(now) {
                    if let Some(to) = self.policy.request_timeout {
                        let deadline = adm.req.arrival + to;
                        if rec > deadline {
                            self.fail(adm.req, deadline.max(now), RequestOutcome::TimedOut);
                            return;
                        }
                    }
                    self.admissions.push(
                        rec,
                        Admission {
                            at: rec,
                            attempts: adm.attempts,
                            req: adm.req,
                        },
                    );
                    return;
                }
            }
            self.fail(adm.req, now, RequestOutcome::Dropped);
            return;
        }

        // Admission control: shed a *new* request when the surviving
        // capacity already has more than the threshold outstanding.
        // Re-admissions are exempt — shedding protects admitted work.
        if adm.attempts == 0 && self.policy.sheds() {
            let outstanding: usize = self
                .replicas
                .iter()
                .filter(|r| r.healthy && r.role != ReplicaRole::Retired)
                .map(|r| r.queued_tokens + r.executor.in_flight_tokens())
                .sum();
            let batch_tokens = self.engine.config.batcher.max_batch_requests
                * self.engine.config.tokens_per_request;
            let cap = self.policy.shed_batches_per_replica * n_alive as f64 * batch_tokens as f64;
            if outstanding as f64 > cap {
                self.fail(adm.req, now, RequestOutcome::Dropped);
                return;
            }
        }

        // Build the balancer's view into the reusable scratch buffer:
        // one admission per request makes this the loop's hottest
        // allocation site without it.
        let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
        snapshots.clear();
        let monitor = &self.monitor;
        snapshots.extend(self.replicas.iter().enumerate().map(|(i, r)| {
            r.snapshot(i, self.per_replica_capacity, now, monitor.suspicion(i, now))
        }));
        if !snapshots.iter().any(|s| s.routable()) {
            // Every live replica is draining, still provisioning, or
            // fully suspected. Rather than drop admitted work, un-gate
            // the live ones for this pick: the request queues behind
            // the drain, the weight reload, or the suspect replica
            // (deterministic emergency fallback). Infinite suspicion
            // means crashed/retired and stays out of bounds.
            for s in &mut snapshots {
                if s.suspicion.is_finite() {
                    s.suspicion = 0.0;
                    s.draining = false;
                    s.provisioning = false;
                }
            }
        }
        let target = self.balancer.pick(&snapshots, now);
        assert!(
            target < self.replicas.len()
                && self.replicas[target].healthy
                && self.replicas[target].role != ReplicaRole::Retired,
            "balancer {} picked unroutable or out-of-range replica {target}",
            self.balancer.name()
        );
        self.snapshot_scratch = snapshots;
        self.requests_per_replica[target] += 1;
        self.tokens_per_replica[target] += adm.req.tokens.len();
        let rep = &mut self.replicas[target];
        rep.arrivals.push(now);
        rep.queued_tokens += adm.req.tokens.len();
        rep.attempts.push(adm.attempts);
        rep.queue.push(adm.req);
    }

    /// Fires the replica's executor events at `t`; completions free
    /// dispatch slots, feed the health detector, resolve hedge races,
    /// and materialize their members' records.
    fn complete_on(&mut self, i: usize, t: SimTime) {
        let max_inflight = self.engine.config.max_inflight;
        let rep = &mut self.replicas[i];
        // Slot accounting counts primary batches only: hedges ride
        // along outside the dispatch budget.
        let mut inflight = rep.executor.in_flight() - rep.hedges_in_flight;
        let finished = rep.executor.advance_to(t);
        for fb in &finished {
            if fb.id >= HEDGE_BASE {
                rep.hedges_in_flight -= 1;
                continue;
            }
            inflight -= 1;
            if inflight == max_inflight - 1 {
                rep.slot_free = fb.completed;
            }
        }
        for fb in finished {
            // Every real completion on this replica is a latency
            // observation for the detector, hedge duplicates included:
            // actual service over the batch's nominal expectation. The
            // map only ever holds entries when a non-oracle detector
            // priced them at dispatch.
            if let Some(nominal) = self.expected_service.remove(&fb.id) {
                self.monitor
                    .observe(i, nominal, fb.report.total, fb.completed);
            }
            if fb.id >= HEDGE_BASE {
                self.hedge_finished(fb, t);
                continue;
            }
            if let Some(rt) = self.hedging.as_mut() {
                rt.observe(fb.report.total);
                rt.useful += fb.report.total;
                if let Some(st) = rt.live.remove(&fb.id) {
                    rt.timers.remove(&(st.deadline, fb.id));
                    if let Some(hf) = st.hedge {
                        // The primary beat its hedge: cancel the
                        // speculative copy and charge its burn.
                        rt.by_hedge.remove(&hf.id);
                        rt.wasted += t.saturating_since(hf.dispatched);
                        self.expected_service.remove(&hf.id);
                        let hrep = &mut self.replicas[hf.replica];
                        let ok = hrep.executor.abort(hf.id);
                        debug_assert!(ok, "live hedge was in flight");
                        hrep.hedges_in_flight -= 1;
                    }
                }
            }
            let members = self
                .pending
                .remove(&fb.id)
                .expect("finished batch was committed");
            for (r, _) in members {
                self.records.push(RequestRecord {
                    id: r.id,
                    // The original arrival: latency spans failed
                    // attempts and backoff waits.
                    arrival: r.arrival,
                    dispatched: fb.dispatched,
                    completed: fb.completed,
                    tokens: r.tokens.len(),
                    batch: fb.id as usize,
                    service: fb.report.total,
                });
                self.on_terminal(r.id, fb.completed);
            }
        }
        // A drain victim decommissions at its last completion.
        self.try_retire(i, t);
    }

    /// A hedge batch completed: it wins whatever race is still open
    /// (the executor's abort-wins-ties rule already purged it if the
    /// primary resolved first this instant) and its members' records
    /// materialize against the *primary* batch id.
    fn hedge_finished(&mut self, fb: FinishedBatch, t: SimTime) {
        let max_inflight = self.engine.config.max_inflight;
        let rt = self.hedging.as_mut().expect("hedge id without a runtime");
        let primary = rt
            .by_hedge
            .remove(&fb.id)
            .expect("finished hedge was registered");
        let st = rt
            .live
            .remove(&primary)
            .expect("finished hedge had live state");
        rt.won += 1;
        rt.useful += fb.report.total;
        if !st.primary_gone {
            // The hedge beat a still-running primary: abort the
            // original and free its dispatch slot now.
            rt.wasted += t.saturating_since(st.primary_dispatched);
            self.expected_service.remove(&primary);
            let prep = &mut self.replicas[st.primary_replica];
            let ok = prep.executor.abort(primary);
            debug_assert!(ok, "raced primary was in flight");
            if prep.executor.in_flight() - prep.hedges_in_flight == max_inflight - 1 {
                prep.slot_free = t;
            }
        }
        let members = self
            .pending
            .remove(&primary)
            .expect("hedged batch was committed");
        for (r, _) in members {
            self.records.push(RequestRecord {
                id: r.id,
                arrival: r.arrival,
                // The winning flight's timeline: the batch completed
                // via the hedge's dispatch.
                dispatched: fb.dispatched,
                completed: fb.completed,
                tokens: r.tokens.len(),
                batch: primary as usize,
                service: fb.report.total,
            });
            self.on_terminal(r.id, fb.completed);
        }
        if !st.primary_gone {
            // The abort may have emptied a drain victim.
            self.try_retire(st.primary_replica, t);
        }
    }

    /// A hedge timer fired: the primary is still running past its
    /// deadline. Duplicate the batch onto the least-suspected routable
    /// alternate with spare executor capacity; first completion wins.
    fn fire_hedge(&mut self, t: SimTime, primary: u64) {
        let max_inflight = self.engine.config.max_inflight;
        let rt = self
            .hedging
            .as_mut()
            .expect("hedge timer without a runtime");
        rt.timers.remove(&(t, primary));
        let primary_replica = rt
            .live
            .get(&primary)
            .expect("hedge timer had live state")
            .primary_replica;
        // Candidate pool: commissioned, not the primary's host, with a
        // genuinely free executor slot (the hedge consumes capacity
        // even though it skips the dispatch budget). Least suspicion
        // wins; ties break toward the lighter backlog, then the lower
        // index — fully deterministic.
        let monitor = &self.monitor;
        let candidate = self
            .replicas
            .iter()
            .enumerate()
            .filter(|&(j, r)| {
                j != primary_replica
                    && r.healthy
                    && r.role == ReplicaRole::Active
                    && t >= r.ready_at
                    && r.executor.in_flight() < max_inflight
            })
            .min_by(|&(a, ra), &(b, rb)| {
                monitor
                    .suspicion(a, t)
                    .total_cmp(&monitor.suspicion(b, t))
                    .then_with(|| {
                        ra.executor
                            .in_flight_tokens()
                            .cmp(&rb.executor.in_flight_tokens())
                    })
                    .then_with(|| a.cmp(&b))
            })
            .map(|(j, _)| j);
        let Some(target) = candidate else {
            // Nowhere to hedge (single live replica, or everyone
            // saturated): the primary keeps the batch alone.
            return;
        };
        let rt = self.hedging.as_mut().expect("checked above");
        let id = HEDGE_BASE + rt.next_hedge_seq;
        rt.next_hedge_seq += 1;
        rt.issued += 1;
        rt.by_hedge.insert(id, primary);
        let st = rt.live.get_mut(&primary).expect("checked above");
        st.hedge = Some(HedgeFlight {
            id,
            replica: target,
            dispatched: t,
        });
        let base = st.plan.clone();
        // The hedge's completion feeds the detector like any other, so
        // it needs the same nominal expectation as its primary.
        if let Some(nominal) = self.expect.as_mut().map(|exp| exp.total(&base)) {
            self.expected_service.insert(id, nominal);
        }
        let trep = &mut self.replicas[target];
        trep.hedges_in_flight += 1;
        // The duplicate runs at the target's true speed — visible
        // degradation and silent gray stretch alike.
        let slow = trep.compute_slowdown * trep.straggler * trep.gray_compute;
        let plan = if slow > 1.0 {
            let mut degraded = (*base).clone();
            degraded.scale_compute(slow);
            Arc::new(degraded)
        } else {
            base
        };
        trep.executor.submit(id, t, plan);
    }

    /// Commits the replica's next batch: plan (or fetch the memoized
    /// plan), degrade, submit.
    fn dispatch(&mut self, i: usize, d: Dispatch) {
        let rep = &self.replicas[i];
        let members = &rep.queue[rep.next..rep.next + d.count];
        // Gray degradation stretches service exactly like a visible
        // slowdown would — it is only the *control plane* that cannot
        // see it.
        let slow = rep.compute_slowdown * rep.straggler * rep.gray_compute;
        let batch_tokens: usize = members.iter().map(|r| r.tokens.len()).sum();
        // Key the cache on everything the planner reads: scheme/top_k,
        // the scheduler-state epoch, and the batch-content digest
        // (hashed straight off the queued requests — no intermediate
        // token vector on the lookup path).
        let key = self.plan_cache.is_some().then(|| PlanKey {
            scheme: self.infer.scheme,
            top_k: self.infer.top_k,
            epoch: match self.sharing {
                EstimatorSharing::Shared => self.shared_epoch,
                EstimatorSharing::PerReplica => rep.epoch,
            },
            content: hash_batch_content(
                self.infer.scheme,
                batch_tokens,
                members.iter().flat_map(|r| r.tokens.iter()),
            ),
            placement: self.placement_digest,
        });
        let cached = match (&key, &mut self.plan_cache) {
            (Some(k), Some(cache)) => cache.get(k),
            _ => None,
        };
        // The re-estimation and re-shard monitoring windows consume
        // the materialized batch, so estimating and re-sharding runs
        // always build it; otherwise a cache hit skips the token-path
        // copy entirely.
        let reestimates = self.engine.estimates() && self.engine.config.reestimate_every.is_some();
        let needs_window = reestimates || self.resharding.is_some();
        let rep = &self.replicas[i];
        let members = &rep.queue[rep.next..rep.next + d.count];
        let mut batch = (needs_window || cached.is_none()).then(|| TokenBatch {
            tokens: members
                .iter()
                .flat_map(|r| r.tokens.iter().cloned())
                .collect(),
            devices: self.engine.topo.devices(),
            experts: self.engine.spec.experts,
        });
        let base_plan = match cached {
            Some(plan) => plan,
            None => {
                let scheduler = match self.sharing {
                    EstimatorSharing::Shared => self.shared_scheduler.as_ref(),
                    EstimatorSharing::PerReplica => self.replicas[i].scheduler.as_ref(),
                };
                // A dirty shard map overrides the configured base
                // placement; while at the base, planning sees exactly
                // the configured map (or the canonical one when none
                // was set) — an armed-but-inert re-sharder stays
                // bit-identical.
                let base = self
                    .resharding
                    .as_ref()
                    .filter(|rt| rt.dirty)
                    .map(|rt| &rt.shard_map)
                    .or(self.base_map);
                let plan = Arc::new(plan_batch_layered(
                    self.engine.cost,
                    self.engine.topo,
                    &self.infer,
                    scheduler,
                    batch.as_ref().expect("a cache miss materializes the batch"),
                    base,
                    self.locality,
                ));
                if let (Some(k), Some(cache)) = (key, &mut self.plan_cache) {
                    cache.insert(k, plan.clone());
                }
                plan
            }
        };
        self.local_hops += base_plan.local_hops;
        self.routed_hops += base_plan.routed_hops;
        // A hedge re-runs the pristine base plan on an alternate (its
        // own degradation applied at issue time), so capture the Arc
        // before the degraded-copy branch moves it.
        let hedge_plan = self.hedging.is_some().then(|| base_plan.clone());
        // The armed detector's expectation: the pristine plan at
        // nominal replica speed, priced before degradation stretches a
        // copy. Whatever the replica silently adds on top of this is
        // exactly the gray signal.
        let nominal = self.expect.as_mut().map(|exp| exp.total(&base_plan));
        // Degraded replicas stretch a private copy — the pristine plan
        // stays cached (and the executor's solo memo keys on the Arc,
        // so a degraded copy never poisons it).
        let plan = if slow > 1.0 {
            let mut degraded = (*base_plan).clone();
            degraded.scale_compute(slow);
            Arc::new(degraded)
        } else {
            base_plan
        };
        let batch_id = self.total_batches as u64;
        if let Some(nominal) = nominal {
            self.expected_service.insert(batch_id, nominal);
        }
        let rep = &mut self.replicas[i];
        rep.executor.submit(batch_id, d.at, plan);
        // Move the members into the pending map — taking each slot's
        // token paths rather than deep-cloning them (a crash can still
        // re-admit the request with its paths intact). The emptied
        // queue slots also bound a long trace's memory by the live
        // backlog, not the run length.
        let member_info: Vec<(Request, u32)> = rep.queue[rep.next..rep.next + d.count]
            .iter_mut()
            .zip(rep.attempts[rep.next..rep.next + d.count].iter().copied())
            .map(|(slot, attempts)| {
                (
                    Request {
                        id: slot.id,
                        arrival: slot.arrival,
                        tokens: std::mem::take(&mut slot.tokens),
                    },
                    attempts,
                )
            })
            .collect();
        self.pending.insert(batch_id, member_info);
        let backlog = rep.arrivals[rep.next + d.count..]
            .iter()
            .filter(|&&a| a <= d.at)
            .count();
        self.tracker.record_depth(d.at, backlog);
        rep.queued_tokens -= batch_tokens;
        rep.next += d.count;
        rep.batches += 1;
        self.total_batches += 1;

        // Arm the hedge timer: once enough service samples exist to
        // estimate the delay quantile, any primary still running past
        // it gets a speculative duplicate.
        if let Some(rt) = &mut self.hedging {
            if let Some(delay) = rt.delay() {
                let deadline = d.at + delay;
                rt.timers.insert((deadline, batch_id), ());
                rt.live.insert(
                    batch_id,
                    HedgeState {
                        primary_replica: i,
                        primary_dispatched: d.at,
                        deadline,
                        plan: hedge_plan
                            .clone()
                            .expect("armed hedging captured the base plan"),
                        primary_gone: false,
                        hedge: None,
                    },
                );
            }
        }

        // The re-shard load monitor samples every dispatched batch
        // (sharing the materialized copy with the re-estimator when
        // both are armed).
        if let Some(rt) = &mut self.resharding {
            let sample = if reestimates {
                batch.clone()
            } else {
                batch.take()
            };
            rt.window
                .push(sample.expect("armed re-sharding materializes the batch"));
        }

        // Online re-placement: pool observations cluster-wide (shared)
        // or keep them replica-local (per-replica). Every rebuild
        // stamps a fresh plan-cache epoch.
        if reestimates {
            if let Some(every) = self.engine.config.reestimate_every {
                let path_length = self.engine.config.path_length;
                let batch = batch.expect("estimating runs materialize the batch");
                match self.sharing {
                    EstimatorSharing::Shared => {
                        self.shared_window.push(batch);
                        if self.total_batches.is_multiple_of(every) {
                            let estimator = self.shared_window.profile(path_length);
                            self.shared_scheduler =
                                Some(TwoPhaseScheduler::new(self.two_phase.clone(), estimator));
                            self.reestimations += 1;
                            self.epoch_counter += 1;
                            self.shared_epoch = self.epoch_counter;
                        }
                    }
                    EstimatorSharing::PerReplica => {
                        self.epoch_counter += 1;
                        let epoch = self.epoch_counter;
                        let rep = &mut self.replicas[i];
                        rep.window.push(batch);
                        if rep.batches.is_multiple_of(every) {
                            let estimator = rep.window.profile(path_length);
                            rep.scheduler =
                                Some(TwoPhaseScheduler::new(self.two_phase.clone(), estimator));
                            self.reestimations += 1;
                            rep.epoch = epoch;
                        }
                    }
                }
            }
        }
    }

    /// Expires every queued request whose deadline has passed; the
    /// loop fires this at the earliest deadline, so `TimedOut` records
    /// carry exactly their deadline as the end instant.
    fn expire(&mut self, now: SimTime) {
        let to = self
            .policy
            .request_timeout
            .expect("timeout event without a timeout policy");
        let mut expired: Vec<(Request, SimTime)> = Vec::new();
        for rep in &mut self.replicas {
            let mut k = rep.next;
            while k < rep.queue.len() {
                let deadline = rep.queue[k].arrival + to;
                if deadline <= now {
                    let req = rep.queue.remove(k);
                    rep.arrivals.remove(k);
                    rep.attempts.remove(k);
                    rep.queued_tokens -= req.tokens.len();
                    expired.push((req, deadline));
                } else {
                    k += 1;
                }
            }
        }
        for (req, deadline) in expired {
            self.fail(req, deadline, RequestOutcome::TimedOut);
        }
    }

    /// Records a terminal failure outcome.
    fn fail(&mut self, req: Request, ended: SimTime, outcome: RequestOutcome) {
        let id = req.id;
        self.tracker.record_failure(FailureRecord {
            id,
            arrival: req.arrival,
            ended,
            tokens: req.tokens.len(),
            outcome,
        });
        self.on_terminal(id, ended);
    }

    /// Terminal-outcome bookkeeping: close the request's crash group
    /// when it was the last displaced member, and audit conservation.
    fn on_terminal(&mut self, id: usize, at: SimTime) {
        #[cfg(debug_assertions)]
        assert!(
            self.terminal_ids.insert(id),
            "request {id} reached two terminal outcomes"
        );
        if let Some(ci) = self.req_crash.remove(&id) {
            self.crashes[ci].1.remove(&id);
            if self.crashes[ci].1.is_empty() {
                self.recovery_times
                    .push(at.saturating_since(self.crashes[ci].0));
            }
        }
    }

    fn finish(mut self) -> ClusterOutcome {
        assert!(
            self.pending.is_empty(),
            "every committed batch must complete or abort"
        );
        if let Some(rt) = &self.hedging {
            assert!(
                rt.live.is_empty() && rt.timers.is_empty() && rt.by_hedge.is_empty(),
                "every hedge race must resolve by the end of the run"
            );
        }
        #[cfg(debug_assertions)]
        {
            for rep in &self.replicas {
                assert_eq!(rep.queue.len(), rep.next, "queued requests left behind");
            }
            assert_eq!(
                self.terminal_ids, self.admitted_ids,
                "every admitted request must reach exactly one terminal outcome"
            );
        }
        // Records enter the tracker in dispatch order (batch index,
        // then request id within the batch), exactly as the
        // pre-event-loop engine emitted them.
        self.records.sort_by_key(|r| (r.batch, r.id));
        for r in std::mem::take(&mut self.records) {
            self.tracker.record(r);
        }
        let (hedges_issued, hedges_won, hedge_wasted_frac) = match &self.hedging {
            Some(rt) => {
                let useful = rt.useful.as_secs_f64();
                let wasted = rt.wasted.as_secs_f64();
                let frac = if useful + wasted > 0.0 {
                    wasted / (useful + wasted)
                } else {
                    0.0
                };
                (rt.issued, rt.won, frac)
            }
            None => (0, 0, 0.0),
        };
        self.tracker
            .record_hedges(hedges_issued, hedges_won, hedge_wasted_frac);
        // Pool cost: every replica accrues from commission until it
        // retired (or the last event of the run for survivors).
        let end = self.now;
        let replica_seconds: f64 = self
            .replicas
            .iter()
            .map(|r| {
                r.retired_at
                    .unwrap_or(end)
                    .saturating_since(r.commissioned)
                    .as_secs_f64()
            })
            .sum();
        ClusterOutcome {
            tracker: self.tracker,
            batches: self.total_batches,
            reestimations: self.reestimations,
            requests_per_replica: self.requests_per_replica,
            tokens_per_replica: self.tokens_per_replica,
            batches_per_replica: self.replicas.iter().map(|r| r.batches).collect(),
            aborted_batches: self.aborted_batches,
            faults_injected: self.faults_injected,
            emergency_replacements: self.emergency_replacements,
            recovery_times: self.recovery_times,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            replications: self.resharding.as_ref().map_or(0, |rt| rt.replications),
            evictions: self.resharding.as_ref().map_or(0, |rt| rt.evictions),
            migrations: self.resharding.as_ref().map_or(0, |rt| rt.migrations),
            peak_replicas: self.peak_replicas,
            hedges_issued,
            hedges_won,
            hedge_wasted_frac,
            replica_seconds,
            last_event: end,
            local_hops: self.local_hops,
            routed_hops: self.routed_hops,
            plan_cache: self
                .plan_cache
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
        }
    }
}

/// The K-server event loop. `ServeEngine::run` delegates here with one
/// replica and no faults, so the single-server timeline *is* this loop
/// at K = 1.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_on(
    engine: &ServeEngine<'_>,
    n_replicas: usize,
    balancer: &mut dyn LoadBalancer,
    sharing: EstimatorSharing,
    per_replica_capacity: f64,
    faults: &FaultPlan,
    autoscale: Option<&AutoscaleConfig>,
    resharding: Option<&ReshardConfig>,
    health: HealthConfig,
    hedging: Option<HedgeConfig>,
) -> ClusterOutcome {
    run_cluster(
        engine,
        n_replicas,
        balancer,
        sharing,
        per_replica_capacity,
        faults,
        autoscale,
        resharding,
        health,
        hedging,
        None,
        false,
        None,
    )
}

/// Dispatches between the sequential loop and the sharded fast path;
/// `trace` substitutes a pre-generated request trace for the engine's
/// lazy stream (the `perf_microbench` timed region).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cluster<'x>(
    engine: &'x ServeEngine<'_>,
    n_replicas: usize,
    balancer: &mut dyn LoadBalancer,
    sharing: EstimatorSharing,
    per_replica_capacity: f64,
    faults: &FaultPlan,
    autoscale: Option<&AutoscaleConfig>,
    resharding: Option<&ReshardConfig>,
    health: HealthConfig,
    hedging: Option<HedgeConfig>,
    placement: Option<&'x LayeredPlacement>,
    locality: bool,
    trace: Option<Vec<Request>>,
) -> ClusterOutcome {
    if shardable(
        engine,
        n_replicas,
        balancer.name(),
        sharing,
        faults,
        autoscale,
        resharding,
        &health,
        hedging.as_ref(),
    ) {
        return run_sharded(
            engine,
            n_replicas,
            sharing,
            per_replica_capacity,
            placement,
            locality,
            trace.as_deref(),
        );
    }
    let stream: Box<dyn Iterator<Item = Request> + 'x> = match trace {
        Some(t) => Box::new(t.into_iter()),
        None => Box::new(engine.request_stream()),
    };
    run_stream(
        engine,
        n_replicas,
        balancer,
        sharing,
        per_replica_capacity,
        faults,
        autoscale,
        resharding,
        health,
        hedging,
        placement,
        locality,
        stream,
    )
}

/// True when the replicas are provably independent, so the run can be
/// sharded one replica per thread and merged bit-identically:
/// round-robin routing (request `i` goes to replica `i mod K`, load
/// blind), no faults, no shedding or timeouts (no cross-replica
/// displacement), no autoscaler, no re-sharder (a shard-map change is
/// cluster-global), no phi-accrual detector and no hedging (both read
/// cross-replica latency state), and no *shared* online re-estimation
/// coupling the schedulers.
#[allow(clippy::too_many_arguments)]
fn shardable(
    engine: &ServeEngine<'_>,
    n_replicas: usize,
    balancer_name: &str,
    sharing: EstimatorSharing,
    faults: &FaultPlan,
    autoscale: Option<&AutoscaleConfig>,
    resharding: Option<&ReshardConfig>,
    health: &HealthConfig,
    hedging: Option<&HedgeConfig>,
) -> bool {
    engine.config.perf.shard_threads > 1
        && n_replicas > 1
        && balancer_name == "round-robin"
        && faults.schedule.events().is_empty()
        && faults.policy.request_timeout.is_none()
        && !faults.policy.sheds()
        && autoscale.is_none()
        && resharding.is_none()
        && health.detector == DetectorKind::Oracle
        && hedging.is_none()
        && (sharing == EstimatorSharing::PerReplica
            || !engine.estimates()
            || engine.config.reestimate_every.is_none())
}

/// Runs each replica as an independent 1-replica simulation over its
/// `id mod K` slice of the trace, shards spread across
/// [`PerfConfig::shard_threads`](crate::PerfConfig) OS threads, then
/// merges the per-shard outcomes into exactly the sequential result:
/// global batch ids are re-derived from the `(dispatch instant,
/// replica, local order)` order — the order the unified event loop
/// commits batches in — and the records and depth timeline are rebuilt
/// from it.
fn run_sharded(
    engine: &ServeEngine<'_>,
    n_replicas: usize,
    sharing: EstimatorSharing,
    per_replica_capacity: f64,
    placement: Option<&LayeredPlacement>,
    locality: bool,
    trace: Option<&[Request]>,
) -> ClusterOutcome {
    let threads = engine.config.perf.shard_threads.min(n_replicas);
    let run_shard = |r: usize| -> ClusterOutcome {
        let mut rr = RoundRobin::new();
        let stream: Box<dyn Iterator<Item = Request> + '_> = match trace {
            Some(t) => Box::new(
                t.iter()
                    .filter(move |req| req.id % n_replicas == r)
                    .cloned(),
            ),
            None => Box::new(
                engine
                    .request_stream()
                    .filter(move |req| req.id % n_replicas == r),
            ),
        };
        run_stream(
            engine,
            1,
            &mut rr,
            sharing,
            per_replica_capacity,
            &FaultPlan::none(),
            None,
            None,
            HealthConfig::oracle(),
            None,
            placement,
            locality,
            stream,
        )
    };
    let mut shards: Vec<Option<ClusterOutcome>> = (0..n_replicas).map(|_| None).collect();
    if threads <= 1 {
        for (r, slot) in shards.iter_mut().enumerate() {
            *slot = Some(run_shard(r));
        }
    } else {
        let run_shard = &run_shard;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        (t..n_replicas)
                            .step_by(threads)
                            .map(|r| (r, run_shard(r)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (r, out) in handle.join().expect("shard thread panicked") {
                    shards[r] = Some(out);
                }
            }
        });
    }
    let shards: Vec<ClusterOutcome> = shards
        .into_iter()
        .map(|s| s.expect("every shard ran"))
        .collect();
    merge_shards(engine, shards)
}

/// Stitches per-shard outcomes back into the sequential result.
fn merge_shards(engine: &ServeEngine<'_>, shards: Vec<ClusterOutcome>) -> ClusterOutcome {
    let n_replicas = shards.len();
    // Re-derive global batch ids. The unified loop commits same-instant
    // dispatches lowest-replica-first, and a replica's own dispatches in
    // local order — so sorting (instant, replica, local id) reproduces
    // the sequential numbering exactly. Each shard's depth timeline has
    // one sample per dispatch, in the same local order.
    let mut batches: Vec<(SimTime, usize, usize)> = Vec::new();
    for (r, shard) in shards.iter().enumerate() {
        let mut seen = BTreeMap::new();
        for rec in shard.tracker.records() {
            seen.entry(rec.batch).or_insert(rec.dispatched);
        }
        batches.extend(seen.into_iter().map(|(local, at)| (at, r, local)));
    }
    batches.sort_unstable_by_key(|&(at, r, local)| (at, r, local));
    let global_id: BTreeMap<(usize, usize), usize> = batches
        .iter()
        .enumerate()
        .map(|(g, &(_, r, local))| ((r, local), g))
        .collect();

    let mut tracker = SloTracker::new(engine.config.slo);
    for &(at, r, local) in &batches {
        let depth = shards[r].tracker.depth_timeline()[local].1;
        debug_assert_eq!(shards[r].tracker.depth_timeline()[local].0, at);
        tracker.record_depth(at, depth);
    }
    let global_id = &global_id;
    let mut records: Vec<RequestRecord> = shards
        .iter()
        .enumerate()
        .flat_map(|(r, shard)| {
            shard.tracker.records().iter().map(move |rec| {
                let mut rec = rec.clone();
                rec.batch = global_id[&(r, rec.batch)];
                rec
            })
        })
        .collect();
    records.sort_by_key(|rec| (rec.batch, rec.id));
    for rec in records {
        tracker.record(rec);
    }

    // The sequential loop's clock ends at the last event anywhere; its
    // replica_seconds is K repeated f64 additions of that instant.
    let end = shards
        .iter()
        .map(|s| s.last_event)
        .max()
        .unwrap_or(SimTime::ZERO);
    let replica_seconds: f64 = (0..n_replicas)
        .map(|_| end.saturating_since(SimTime::ZERO).as_secs_f64())
        .sum();
    let plan_cache = shards
        .iter()
        .fold(PlanCacheStats::default(), |acc, s| PlanCacheStats {
            hits: acc.hits + s.plan_cache.hits,
            misses: acc.misses + s.plan_cache.misses,
        });
    ClusterOutcome {
        tracker,
        batches: batches.len(),
        reestimations: shards.iter().map(|s| s.reestimations).sum(),
        requests_per_replica: shards.iter().map(|s| s.requests_per_replica[0]).collect(),
        tokens_per_replica: shards.iter().map(|s| s.tokens_per_replica[0]).collect(),
        batches_per_replica: shards.iter().map(|s| s.batches_per_replica[0]).collect(),
        aborted_batches: 0,
        faults_injected: 0,
        emergency_replacements: 0,
        recovery_times: Vec::new(),
        scale_ups: 0,
        scale_downs: 0,
        replications: 0,
        evictions: 0,
        migrations: 0,
        peak_replicas: n_replicas,
        hedges_issued: 0,
        hedges_won: 0,
        hedge_wasted_frac: 0.0,
        replica_seconds,
        last_event: end,
        local_hops: shards.iter().map(|s| s.local_hops).sum(),
        routed_hops: shards.iter().map(|s| s.routed_hops).sum(),
        plan_cache,
    }
}

/// The sequential K-server event loop over an explicit admission
/// stream (the engine's lazy trace, one shard's filtered slice of it,
/// or a pre-generated trace), in `(arrival, id)` order.
#[allow(clippy::too_many_arguments)]
fn run_stream<'x>(
    engine: &'x ServeEngine<'_>,
    n_replicas: usize,
    balancer: &mut dyn LoadBalancer,
    sharing: EstimatorSharing,
    per_replica_capacity: f64,
    faults: &FaultPlan,
    autoscale: Option<&AutoscaleConfig>,
    resharding: Option<&ReshardConfig>,
    health: HealthConfig,
    hedging: Option<HedgeConfig>,
    placement: Option<&'x LayeredPlacement>,
    locality: bool,
    stream: Box<dyn Iterator<Item = Request> + 'x>,
) -> ClusterOutcome {
    let config = &engine.config;
    let seeds = config.seeds();
    let offline = engine
        .needs_scheduler()
        .then(|| engine.offline_scheduler(seeds.profile));
    let reload = provisioning::weight_reload(engine.cost, engine.topo, engine.spec.experts);
    // One topology clone per run, shared by every executor.
    let topo = Arc::new(engine.topo.clone());

    let replicas: Vec<Replica> = (0..n_replicas)
        .map(|_| Replica {
            arrivals: Vec::new(),
            queue: Vec::new(),
            attempts: Vec::new(),
            next: 0,
            executor: ReplicaExecutor::new_shared(config.network, topo.clone(), config.perf.queue),
            slot_free: SimTime::ZERO,
            queued_tokens: 0,
            scheduler: offline.clone(),
            epoch: 0,
            window: ReestimationWindow::new(config.reestimate_window),
            batches: 0,
            healthy: true,
            devices_lost: 0,
            compute_slowdown: 1.0,
            straggler: 1.0,
            gray_compute: 1.0,
            hedges_in_flight: 0,
            role: ReplicaRole::Active,
            ready_at: SimTime::ZERO,
            commissioned: SimTime::ZERO,
            retired_at: None,
        })
        .collect();

    // The phi detector needs a per-batch nominal expectation to compare
    // completions against; the oracle never looks, so the pricer (and
    // its per-dispatch solo pricing cost) only exists when armed.
    let expect = (health.detector != DetectorKind::Oracle).then(|| ExpectedPricer {
        timer: SoloTimer::new_shared(topo.clone()),
        memo: None,
    });
    let monitor = HealthMonitor::new(health, n_replicas);
    let hedging = hedging.map(HedgeRuntime::new);

    let autoscale = autoscale.map(|cfg| AutoscaleRuntime {
        policy: cfg.policy.build(cfg.cooldown),
        next_at: SimTime::ZERO + cfg.interval,
        arrived_since_last: 0,
        provision_time: reload,
        config: cfg.clone(),
    });

    let resharding = resharding.map(|cfg| ReshardRuntime {
        policy: cfg.policy.build(),
        next_at: SimTime::ZERO + cfg.interval,
        window: ReestimationWindow::new(cfg.window),
        shard_map: default_shard_map(
            placement,
            engine.spec.experts,
            engine.topo.devices(),
            engine.cost.model.layers,
        ),
        dirty: false,
        replications: 0,
        evictions: 0,
        migrations: 0,
        config: cfg.clone(),
    });

    let sim = ClusterSim {
        balancer,
        schedule: &faults.schedule,
        policy: faults.policy,
        batcher: Batcher::new(config.batcher.clone()),
        infer: InferenceConfig {
            scheme: config.scheme,
            top_k: config.top_k,
        },
        two_phase: engine.two_phase_config(),
        sharing,
        per_replica_capacity,
        reload,
        // Shared-mode scheduler and window (used when sharing == Shared
        // or the scheme never re-estimates; per-replica mode uses the
        // copies inside each Replica instead).
        shared_scheduler: offline,
        shared_window: ReestimationWindow::new(config.reestimate_window),
        shared_epoch: 0,
        epoch_counter: 0,
        plan_cache: config.perf.plan_cache.then(PlanCache::new),
        base_map: placement,
        locality,
        placement_digest: hash_layered_placement(placement, locality),
        local_hops: 0,
        routed_hops: 0,
        replicas,
        // First arrivals stream lazily in `(arrival, id)` order; the
        // retry queue holds only re-admissions.
        stream: stream.peekable(),
        admissions: EventQueue::with_kind(config.perf.queue),
        snapshot_scratch: Vec::new(),
        autoscale,
        resharding,
        monitor,
        expect,
        expected_service: BTreeMap::new(),
        hedging,
        retry: seeds.retry,
        now: SimTime::ZERO,
        next_fault: 0,
        tracker: SloTracker::new(config.slo),
        records: Vec::new(),
        pending: BTreeMap::new(),
        total_batches: 0,
        reestimations: 0,
        requests_per_replica: vec![0; n_replicas],
        tokens_per_replica: vec![0; n_replicas],
        aborted_batches: 0,
        faults_injected: 0,
        emergency_replacements: 0,
        scale_ups: 0,
        scale_downs: 0,
        peak_replicas: n_replicas,
        crashes: Vec::new(),
        req_crash: BTreeMap::new(),
        recovery_times: Vec::new(),
        #[cfg(debug_assertions)]
        terminal_ids: BTreeSet::new(),
        #[cfg(debug_assertions)]
        admitted_ids: BTreeSet::new(),
        engine,
        topo,
    };
    sim.run()
}

/// Convenience wrapper: build a [`ClusterEngine`] and run it.
pub fn serve_cluster(
    cost: &CostModel,
    topo: &Topology,
    spec: &WorkloadSpec,
    config: ClusterConfig,
) -> ClusterOutcome {
    ClusterEngine::new(cost, topo, spec, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::batcher::BatcherConfig;
    use lina_baselines::InferScheme;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;
    use lina_simcore::SimDuration;

    fn world() -> (CostModel, Topology, WorkloadSpec) {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        (cost, topo, spec)
    }

    fn config(scheme: InferScheme, rate: f64, replicas: usize) -> ClusterConfig {
        ClusterConfig {
            serve: ServeConfig {
                scheme,
                top_k: 1,
                path_length: 3,
                max_experts_per_device: 2,
                arrival: ArrivalProcess::Poisson { rate },
                batcher: BatcherConfig {
                    max_batch_requests: 4,
                    max_wait: SimDuration::from_millis(2),
                },
                slo: SimDuration::from_millis(50),
                n_requests: 96,
                tokens_per_request: 64,
                token_spread: 0.0,
                drift_period: Some(24),
                reestimate_every: Some(4),
                reestimate_window: 8,
                network: lina_runner::NetworkMode::Solo,
                max_inflight: 1,
                seed: 0xC1A5,
                perf: Default::default(),
            },
            replicas,
            balancer: BalancerKind::JoinShortestQueue,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        }
    }

    fn crash_at(ms: u64, replica: usize) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_millis(ms),
            replica,
            kind: FaultKind::ReplicaCrash,
        }
    }

    fn recover_at(ms: u64, replica: usize) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_millis(ms),
            replica,
            kind: FaultKind::ReplicaRecover,
        }
    }

    #[test]
    fn cluster_serves_every_request_exactly_once() {
        let (cost, topo, spec) = world();
        let out = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 800.0, 3));
        let mut ids: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..96).collect::<Vec<_>>());
        assert_eq!(out.requests_per_replica.iter().sum::<usize>(), 96);
        assert_eq!(
            out.batches_per_replica.iter().sum::<usize>(),
            out.batches,
            "per-replica batch counts must add up"
        );
        assert!(out.reestimations > 0, "Lina re-estimates online");
        assert_eq!(out.faults_injected, 0);
        assert_eq!(out.aborted_batches, 0);
        assert!(out.tracker.failures().is_empty());
    }

    #[test]
    fn replica_timelines_never_overlap() {
        let (cost, topo, spec) = world();
        let out = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 1500.0, 2),
        );
        // Group batch spans per batch id; all batches of one replica
        // are serialized, and every record obeys arrival <= dispatch.
        for r in out.tracker.records() {
            assert!(
                r.dispatched >= r.arrival,
                "request {} dispatched early",
                r.id
            );
            assert!(r.completed > r.dispatched);
        }
        // With 2 replicas, at most 2 batches may overlap at any time.
        let records = out.tracker.records();
        let mut spans: Vec<(SimTime, SimTime)> = records
            .iter()
            .map(|r| (r.dispatched, r.completed))
            .collect();
        spans.sort();
        spans.dedup();
        for (i, &(start, _)) in spans.iter().enumerate() {
            let concurrent = spans[..i].iter().filter(|&&(_, end)| end > start).count();
            assert!(
                concurrent < 2,
                "more concurrent batches than replicas at {start}"
            );
        }
    }

    #[test]
    fn cluster_is_deterministic() {
        let (cost, topo, spec) = world();
        for balancer in [
            BalancerKind::RoundRobin,
            BalancerKind::JoinShortestQueue,
            BalancerKind::LeastExpectedLatency,
        ] {
            for sharing in [EstimatorSharing::Shared, EstimatorSharing::PerReplica] {
                let mut c = config(InferScheme::Lina, 600.0, 3);
                c.balancer = balancer;
                c.sharing = sharing;
                let a = serve_cluster(&cost, &topo, &spec, c.clone());
                let b = serve_cluster(&cost, &topo, &spec, c);
                assert_eq!(a.tracker.records(), b.tracker.records());
                assert_eq!(a.requests_per_replica, b.requests_per_replica);
                assert_eq!(a.reestimations, b.reestimations);
            }
        }
    }

    #[test]
    fn single_replica_cluster_matches_single_server() {
        let (cost, topo, spec) = world();
        let c = config(InferScheme::Lina, 400.0, 1);
        let cluster = serve_cluster(&cost, &topo, &spec, c.clone());
        let single = crate::engine::serve(&cost, &topo, &spec, c.serve);
        assert_eq!(cluster.tracker.records(), single.tracker.records());
        assert_eq!(cluster.batches, single.batches);
        assert_eq!(cluster.reestimations, single.reestimations);
    }

    #[test]
    fn round_robin_splits_requests_evenly() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 500.0, 3);
        c.balancer = BalancerKind::RoundRobin;
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.requests_per_replica, vec![32, 32, 32]);
        assert!((out.routing_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_replicas_scale_capacity_and_cut_the_tail() {
        let (cost, topo, spec) = world();
        let one = ClusterEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 1.0, 1));
        let three = ClusterEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 1.0, 3));
        assert!((three.capacity() - 3.0 * one.engine().capacity()).abs() < 1e-9);
        // Offer a load that swamps one replica but not three.
        let rate = 1.5 * one.engine().capacity();
        let swamped = serve_cluster(&cost, &topo, &spec, config(InferScheme::Baseline, rate, 1));
        let cruising = serve_cluster(&cost, &topo, &spec, config(InferScheme::Baseline, rate, 3));
        let (s, c) = (swamped.report(), cruising.report());
        assert!(
            c.p99 < s.p99,
            "3 replicas p99 {} must beat 1 replica p99 {} at the same offered load",
            c.p99,
            s.p99
        );
        assert!(c.attainment >= s.attainment);
    }

    #[test]
    fn per_replica_sharing_reestimates_locally() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Lina, 800.0, 2);
        c.sharing = EstimatorSharing::PerReplica;
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert!(out.reestimations > 0);
    }

    #[test]
    #[should_panic(expected = "replicas")]
    fn zero_replicas_rejected() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 100.0, 1);
        c.replicas = 0;
        ClusterEngine::new(&cost, &topo, &spec, c);
    }

    #[test]
    fn empty_fault_schedule_matches_healthy_path() {
        let (cost, topo, spec) = world();
        let healthy = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 700.0, 3));
        // A live retry policy over an empty schedule must be inert:
        // nothing ever displaces, and without a timeout no new event
        // kind fires.
        let mut c = config(InferScheme::Lina, 700.0, 3);
        c.faults = FaultPlan {
            schedule: FaultSchedule::none(),
            policy: DegradationPolicy::retry_failover(None),
        };
        let armed = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(healthy.tracker.records(), armed.tracker.records());
        assert_eq!(
            healthy.tracker.depth_timeline(),
            armed.tracker.depth_timeline()
        );
        assert_eq!(healthy.report(), armed.report());
        assert_eq!(healthy.requests_per_replica, armed.requests_per_replica);
        assert!((armed.report().availability - 1.0).abs() < 1e-15);
    }

    #[test]
    fn crash_with_fail_fast_drops_displaced_work() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2000.0, 3);
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![crash_at(10, 0)]),
            policy: DegradationPolicy::fail_fast(),
        };
        let out = serve_cluster(&cost, &topo, &spec, c);
        let report = out.report();
        assert!(report.dropped > 0, "the crash must displace something");
        assert_eq!(report.offered, 96, "every request reaches an outcome");
        assert_eq!(report.requests + report.dropped, 96);
        assert!(report.availability < 1.0);
        // Fail-fast terminates displaced work at the crash instant.
        assert_eq!(out.mean_time_to_recover(), SimDuration::ZERO);
        // The downed replica served nothing after the crash: all its
        // post-crash admissions went elsewhere.
        let mut ids: Vec<usize> = out
            .tracker
            .records()
            .iter()
            .map(|r| r.id)
            .chain(out.tracker.failures().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..96).collect::<Vec<_>>(), "conservation");
    }

    #[test]
    fn crash_and_recovery_with_retries_completes_everything() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2000.0, 3);
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![
                crash_at(10, 0),
                crash_at(10, 1),
                crash_at(10, 2),
                recover_at(30, 0),
                recover_at(30, 1),
                recover_at(30, 2),
            ]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let out = serve_cluster(&cost, &topo, &spec, c);
        let report = out.report();
        assert_eq!(report.requests, 96, "retries recover every request");
        assert!((report.availability - 1.0).abs() < 1e-15);
        assert!(out.aborted_batches > 0, "in-flight work was aborted");
        assert!(
            !out.recovery_times.is_empty(),
            "displaced work closes a crash group"
        );
        assert!(out.mean_time_to_recover() > SimDuration::ZERO);
        assert_eq!(out.faults_injected, 6);
    }

    #[test]
    fn overload_with_timeout_produces_timed_out_outcomes() {
        let (cost, topo, spec) = world();
        // Swamp a single replica so the queue outgrows the timeout.
        let mut c = config(InferScheme::Baseline, 100_000.0, 1);
        c.faults = FaultPlan {
            schedule: FaultSchedule::none(),
            policy: DegradationPolicy::retry_failover(Some(SimDuration::from_millis(10))),
        };
        let out = serve_cluster(&cost, &topo, &spec, c);
        let report = out.report();
        assert!(report.timed_out > 0, "overload must time requests out");
        assert_eq!(report.offered, 96);
        assert_eq!(report.requests + report.dropped + report.timed_out, 96);
        for f in out.tracker.failures() {
            assert!(f.ended >= f.arrival);
            if f.outcome == RequestOutcome::TimedOut {
                assert_eq!(f.ended, f.arrival + SimDuration::from_millis(10));
            }
        }
    }

    #[test]
    fn down_replica_is_never_routed() {
        let (cost, topo, spec) = world();
        for balancer in [
            BalancerKind::RoundRobin,
            BalancerKind::JoinShortestQueue,
            BalancerKind::LeastExpectedLatency,
        ] {
            let mut c = config(InferScheme::Baseline, 800.0, 3);
            c.balancer = balancer;
            // Replica 0 dies before the first arrival and never comes
            // back; nothing may ever be routed to it.
            c.faults = FaultPlan {
                schedule: FaultSchedule::from_script(vec![crash_at(0, 0)]),
                policy: DegradationPolicy::retry_failover(None),
            };
            let out = serve_cluster(&cost, &topo, &spec, c);
            assert_eq!(
                out.requests_per_replica[0],
                0,
                "{} routed to a dead replica",
                balancer.name()
            );
            assert_eq!(out.report().requests, 96);
            assert!((out.report().availability - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn generated_fault_schedule_is_deterministic() {
        let (cost, topo, spec) = world();
        let rates = crate::faults::FaultRateConfig::crashes(20.0, SimDuration::from_millis(20));
        let schedule = FaultSchedule::generate(&rates, 3, SimDuration::from_secs_f64(0.25), 0xFA17);
        let mut c = config(InferScheme::Lina, 1200.0, 3);
        c.faults = FaultPlan {
            schedule,
            policy: DegradationPolicy::retry_failover_shed(Some(SimDuration::from_millis(200))),
        };
        let a = serve_cluster(&cost, &topo, &spec, c.clone());
        let b = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(a.tracker.records(), b.tracker.records());
        assert_eq!(a.tracker.failures(), b.tracker.failures());
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.aborted_batches, b.aborted_batches);
        assert_eq!(a.recovery_times, b.recovery_times);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn device_loss_slows_the_replica_and_replaces_experts() {
        let (cost, topo, spec) = world();
        let healthy = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 2000.0, 1),
        );
        let mut c = config(InferScheme::Baseline, 2000.0, 1);
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![FaultEvent {
                at: SimTime::from_millis(5),
                replica: 0,
                kind: FaultKind::DeviceLoss,
            }]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let degraded = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(degraded.emergency_replacements, 1);
        assert_eq!(degraded.report().requests, 96, "the replica stays up");
        assert!(
            degraded.report().makespan > healthy.report().makespan,
            "a lost device must stretch the run"
        );
    }

    #[test]
    fn link_degrade_and_straggler_stretch_service() {
        let (cost, topo, spec) = world();
        let healthy = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 2000.0, 1),
        );
        for kind in [
            FaultKind::LinkDegrade { scale: 0.25 },
            FaultKind::StragglerStart { factor: 4.0 },
        ] {
            let mut c = config(InferScheme::Baseline, 2000.0, 1);
            c.faults = FaultPlan {
                schedule: FaultSchedule::from_script(vec![FaultEvent {
                    at: SimTime::ZERO,
                    replica: 0,
                    kind,
                }]),
                policy: DegradationPolicy::retry_failover(None),
            };
            let slow = serve_cluster(&cost, &topo, &spec, c);
            assert_eq!(slow.report().requests, 96);
            assert!(
                slow.report().makespan > healthy.report().makespan,
                "{kind:?} must stretch the run"
            );
        }
    }

    use crate::autoscale::{AutoscaleConfig, AutoscalePolicyKind, ScaleDecision};

    fn scripted(
        script: Vec<ScaleDecision>,
        min: usize,
        max: usize,
        interval_ms: u64,
    ) -> AutoscaleConfig {
        AutoscaleConfig {
            policy: AutoscalePolicyKind::Scripted { script },
            interval: SimDuration::from_millis(interval_ms),
            cooldown: SimDuration::ZERO,
            min_replicas: min,
            max_replicas: max,
        }
    }

    #[test]
    fn armed_inert_autoscaler_matches_the_fixed_cluster() {
        let (cost, topo, spec) = world();
        let fixed = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 800.0, 3));
        let mut c = config(InferScheme::Lina, 800.0, 3);
        c.autoscale = Some(AutoscaleConfig::inert(3, SimDuration::from_millis(1)));
        let armed = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(fixed.tracker.records(), armed.tracker.records());
        assert_eq!(
            fixed.tracker.depth_timeline(),
            armed.tracker.depth_timeline()
        );
        assert_eq!(fixed.report(), armed.report());
        assert_eq!(fixed.requests_per_replica, armed.requests_per_replica);
        assert_eq!(armed.scale_ups, 0);
        assert_eq!(armed.scale_downs, 0);
        assert_eq!(armed.peak_replicas, 3);
        assert_eq!(fixed.replica_seconds, armed.replica_seconds);
    }

    #[test]
    fn scripted_scale_up_commissions_a_replica_that_serves() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2000.0, 1);
        c.balancer = BalancerKind::JoinShortestQueue;
        c.autoscale = Some(scripted(vec![ScaleDecision::ScaleUp(1)], 1, 4, 1));
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.scale_ups, 1);
        assert_eq!(out.peak_replicas, 2);
        assert_eq!(out.requests_per_replica.len(), 2);
        assert!(
            out.requests_per_replica[1] > 0,
            "the commissioned replica must serve once provisioned"
        );
        assert_eq!(out.report().requests, 96, "nothing is lost while scaling");
        // The elastic replica commissioned after t=0, so the run costs
        // strictly less than two replicas held for its full span.
        assert!(out.replica_seconds > 0.0);
        assert!(
            out.replica_seconds < 2.0 * out.report().makespan.as_secs_f64(),
            "a late commission must cost less than a full-span pair"
        );
    }

    #[test]
    fn scripted_scale_down_drains_before_decommission() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2000.0, 3);
        c.autoscale = Some(scripted(vec![ScaleDecision::ScaleDown(1)], 1, 3, 1));
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.scale_downs, 1);
        assert_eq!(out.report().requests, 96, "draining loses nothing");
        assert!(out.tracker.failures().is_empty());
        // One replica retired early: the integrated cost is below
        // three full-span replicas.
        let makespan_cost = 3.0 * out.report().makespan.as_secs_f64();
        assert!(
            out.replica_seconds < makespan_cost,
            "retired replica must stop accruing ({} vs {makespan_cost})",
            out.replica_seconds
        );
    }

    #[test]
    fn reactive_autoscaler_scales_up_under_a_spike() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 4000.0, 1);
        c.autoscale = Some(AutoscaleConfig {
            policy: AutoscalePolicyKind::Reactive {
                up_threshold: 1.0,
                down_threshold: 0.1,
            },
            interval: SimDuration::from_millis(2),
            cooldown: SimDuration::from_millis(4),
            min_replicas: 1,
            max_replicas: 4,
        });
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert!(out.scale_ups > 0, "a swamped pool must grow");
        assert!(out.peak_replicas > 1);
        assert_eq!(out.report().requests, 96);
        let fixed = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 4000.0, 1),
        );
        assert!(
            out.report().p99 < fixed.report().p99,
            "elastic capacity must beat the swamped static pool's tail"
        );
    }

    #[test]
    fn autoscaled_cluster_is_deterministic() {
        let (cost, topo, spec) = world();
        for kind in [
            AutoscalePolicyKind::Reactive {
                up_threshold: 1.0,
                down_threshold: 0.1,
            },
            AutoscalePolicyKind::Predictive {
                target_util: 0.7,
                window: 8,
            },
        ] {
            let mut c = config(InferScheme::Lina, 2500.0, 2);
            c.autoscale = Some(AutoscaleConfig {
                policy: kind,
                interval: SimDuration::from_millis(2),
                cooldown: SimDuration::from_millis(4),
                min_replicas: 1,
                max_replicas: 5,
            });
            let a = serve_cluster(&cost, &topo, &spec, c.clone());
            let b = serve_cluster(&cost, &topo, &spec, c);
            assert_eq!(a.tracker.records(), b.tracker.records());
            assert_eq!(a.tracker.failures(), b.tracker.failures());
            assert_eq!(a.scale_ups, b.scale_ups);
            assert_eq!(a.scale_downs, b.scale_downs);
            assert_eq!(a.peak_replicas, b.peak_replicas);
            assert_eq!(a.replica_seconds, b.replica_seconds);
        }
    }

    #[test]
    fn autoscaling_composes_with_faults() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2500.0, 2);
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![crash_at(10, 0), recover_at(30, 0)]),
            policy: DegradationPolicy::retry_failover(None),
        };
        c.autoscale = Some(AutoscaleConfig {
            policy: AutoscalePolicyKind::Reactive {
                up_threshold: 1.0,
                down_threshold: 0.1,
            },
            interval: SimDuration::from_millis(2),
            cooldown: SimDuration::from_millis(4),
            min_replicas: 1,
            max_replicas: 4,
        });
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(
            out.report().requests,
            96,
            "retries plus elasticity lose nothing"
        );
        assert!((out.report().availability - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn autoscale_range_excluding_initial_pool_rejected() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 500.0, 1);
        c.autoscale = Some(scripted(Vec::new(), 2, 4, 1));
        ClusterEngine::new(&cost, &topo, &spec, c);
    }

    use crate::resharding::{ReshardAction, ReshardConfig, ReshardPolicyKind};

    fn scripted_reshard(script: Vec<Vec<ReshardAction>>, interval_ms: u64) -> ReshardConfig {
        ReshardConfig {
            policy: ReshardPolicyKind::Scripted { script },
            interval: SimDuration::from_millis(interval_ms),
            window: 8,
            transfer_cost: 1.0,
        }
    }

    #[test]
    fn armed_inert_resharder_matches_the_fixed_cluster() {
        let (cost, topo, spec) = world();
        let fixed = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 800.0, 3));
        let mut c = config(InferScheme::Lina, 800.0, 3);
        c.resharding = Some(ReshardConfig::inert(SimDuration::from_millis(1)));
        let armed = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(fixed.tracker.records(), armed.tracker.records());
        assert_eq!(
            fixed.tracker.depth_timeline(),
            armed.tracker.depth_timeline()
        );
        assert_eq!(fixed.report(), armed.report());
        assert_eq!(fixed.requests_per_replica, armed.requests_per_replica);
        assert_eq!(fixed.reestimations, armed.reestimations);
        assert_eq!(fixed.batches, armed.batches);
        assert_eq!(armed.replications, 0);
        assert_eq!(armed.evictions, 0);
        assert_eq!(armed.migrations, 0);
        assert_eq!(fixed.replica_seconds, armed.replica_seconds);
    }

    #[test]
    fn scripted_replication_splits_the_hot_expert_and_serves() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2000.0, 1);
        c.resharding = Some(scripted_reshard(vec![vec![ReshardAction::Replicate(0)]], 1));
        let out = serve_cluster(&cost, &topo, &spec, c.clone());
        assert_eq!(out.replications, 1, "the scripted replication lands");
        assert_eq!(out.report().requests, 96, "re-sharding loses nothing");
        assert!(out.tracker.failures().is_empty());
        // Bit-identical replay: actuation is deterministic.
        let again = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.tracker.records(), again.tracker.records());
        assert_eq!(out.replications, again.replications);
        // The replicated map diverges from the unsharded timeline: the
        // transfer charge and the split expert must show somewhere.
        let fixed = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 2000.0, 1),
        );
        assert_ne!(
            fixed.tracker.records(),
            out.tracker.records(),
            "an applied replication must change the timeline"
        );
    }

    #[test]
    fn replicate_then_evict_returns_to_the_canonical_map() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 2000.0, 1);
        c.resharding = Some(scripted_reshard(
            vec![
                vec![ReshardAction::Replicate(0)],
                vec![ReshardAction::Evict(0)],
            ],
            1,
        ));
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.replications, 1);
        assert_eq!(out.evictions, 1, "the replicated expert can shed its copy");
        assert_eq!(out.report().requests, 96);
        assert!(out.tracker.failures().is_empty());
    }

    #[test]
    fn eviction_never_strands_a_single_homed_expert() {
        let (cost, topo, spec) = world();
        let fixed = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 2000.0, 1),
        );
        let mut c = config(InferScheme::Baseline, 2000.0, 1);
        // Every expert starts single-homed: the eviction must refuse
        // (planning panics on a hostless expert) and the refused no-op
        // must leave the run bit-identical to the fixed cluster.
        c.resharding = Some(scripted_reshard(vec![vec![ReshardAction::Evict(3)]], 1));
        let out = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(out.evictions, 0, "the last replica is never evicted");
        assert_eq!(fixed.tracker.records(), out.tracker.records());
        assert_eq!(fixed.report(), out.report());
    }

    /// Regression test for the placement-consistency bug: an emergency
    /// device-loss re-placement (which also resets a dynamic shard map
    /// to canonical) must bump the plan-cache epoch *unconditionally*,
    /// or a post-loss batch whose content digest collides with a
    /// pre-loss one is served a plan computed against the old map.
    /// With the bump, memoized and unmemoized runs are bit-identical.
    #[test]
    fn device_loss_bumps_the_plan_cache_epoch() {
        let (cost, topo, spec) = world();
        // Ideal hashes batch content by token count only, so every
        // full batch shares one cache key per epoch — maximal stale
        // reuse if the loss fails to bump.
        let mut c = config(InferScheme::Ideal, 2000.0, 1);
        c.serve.reestimate_every = None;
        c.resharding = Some(scripted_reshard(vec![vec![ReshardAction::Replicate(0)]], 1));
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![FaultEvent {
                at: SimTime::from_millis(5),
                replica: 0,
                kind: FaultKind::DeviceLoss,
            }]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let mut memoized = c.clone();
        memoized.serve.perf.plan_cache = true;
        let plain = serve_cluster(&cost, &topo, &spec, c);
        let memo = serve_cluster(&cost, &topo, &spec, memoized);
        assert!(
            memo.plan_cache.hits > 0,
            "the cache must actually be exercised"
        );
        assert_eq!(
            plain.tracker.records(),
            memo.tracker.records(),
            "memoization must never change the timeline across a loss"
        );
        assert_eq!(plain.report(), memo.report());
    }

    #[test]
    fn gray_degrade_stretches_service_without_tripping_the_health_bit() {
        let (cost, topo, spec) = world();
        let healthy = serve_cluster(
            &cost,
            &topo,
            &spec,
            config(InferScheme::Baseline, 2000.0, 1),
        );
        let mut c = config(InferScheme::Baseline, 2000.0, 1);
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![FaultEvent {
                at: SimTime::ZERO,
                replica: 0,
                kind: FaultKind::GrayDegrade {
                    compute_scale: 4.0,
                    nic_scale: 0.5,
                },
            }]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let gray = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(gray.report().requests, 96, "gray never displaces work");
        assert_eq!(gray.aborted_batches, 0, "the health bit never trips");
        assert!(
            gray.report().makespan > healthy.report().makespan,
            "a gray fault must stretch the run"
        );
    }

    #[test]
    fn gray_clear_restores_the_healthy_timeline_tail() {
        let (cost, topo, spec) = world();
        let mut forever = config(InferScheme::Baseline, 2000.0, 1);
        forever.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![FaultEvent {
                at: SimTime::ZERO,
                replica: 0,
                kind: FaultKind::GrayDegrade {
                    compute_scale: 4.0,
                    nic_scale: 1.0,
                },
            }]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let mut cleared = config(InferScheme::Baseline, 2000.0, 1);
        cleared.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![
                FaultEvent {
                    at: SimTime::ZERO,
                    replica: 0,
                    kind: FaultKind::GrayDegrade {
                        compute_scale: 4.0,
                        nic_scale: 1.0,
                    },
                },
                FaultEvent {
                    at: SimTime::from_millis(10),
                    replica: 0,
                    kind: FaultKind::GrayClear,
                },
            ]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let slow = serve_cluster(&cost, &topo, &spec, forever);
        let recovered = serve_cluster(&cost, &topo, &spec, cleared);
        assert_eq!(recovered.report().requests, 96);
        assert!(
            recovered.report().makespan < slow.report().makespan,
            "clearing the gray fault must speed the tail back up"
        );
    }

    #[test]
    fn armed_phi_detector_is_bit_identical_on_the_healthy_path() {
        let (cost, topo, spec) = world();
        let oracle = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 800.0, 3));
        let mut c = config(InferScheme::Lina, 800.0, 3);
        c.balancer = BalancerKind::LeastExpectedLatency;
        c.health = HealthConfig::phi_accrual();
        let mut o = config(InferScheme::Lina, 800.0, 3);
        o.balancer = BalancerKind::LeastExpectedLatency;
        let detector = serve_cluster(&cost, &topo, &spec, c);
        let oracle_lel = serve_cluster(&cost, &topo, &spec, o);
        // With no faults the detector must never manufacture suspicion
        // that changes routing: the latency-aware balancer sees the
        // same scores an oracle run does (all well under exclusion),
        // and every request still completes exactly once.
        assert_eq!(detector.report().requests, 96);
        assert_eq!(
            detector.report().requests,
            oracle.report().requests,
            "an armed detector loses nothing on the healthy path"
        );
        assert_eq!(
            detector.requests_per_replica.iter().sum::<usize>(),
            oracle_lel.requests_per_replica.iter().sum::<usize>(),
        );
        assert!(detector.tracker.failures().is_empty());
    }

    #[test]
    fn phi_detector_routes_around_a_gray_replica() {
        let (cost, topo, spec) = world();
        let gray_fault = FaultPlan {
            schedule: FaultSchedule::from_script(vec![FaultEvent {
                at: SimTime::ZERO,
                replica: 0,
                kind: FaultKind::GrayDegrade {
                    compute_scale: 8.0,
                    nic_scale: 1.0,
                },
            }]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let mut blind = config(InferScheme::Baseline, 1500.0, 3);
        blind.balancer = BalancerKind::LeastExpectedLatency;
        blind.faults = gray_fault.clone();
        let mut seeing = blind.clone();
        seeing.health = HealthConfig::phi_accrual();
        let blind = serve_cluster(&cost, &topo, &spec, blind);
        let seeing = serve_cluster(&cost, &topo, &spec, seeing);
        assert_eq!(blind.report().requests, 96);
        assert_eq!(seeing.report().requests, 96);
        assert!(
            seeing.requests_per_replica[0] < blind.requests_per_replica[0],
            "the detector must divert traffic off the gray replica \
             (detector {} vs oracle {})",
            seeing.requests_per_replica[0],
            blind.requests_per_replica[0]
        );
        assert!(
            seeing.report().p99 < blind.report().p99,
            "diverting off the gray replica must cut tail latency"
        );
    }

    #[test]
    fn armed_inert_hedging_matches_the_unhedged_cluster() {
        let (cost, topo, spec) = world();
        let plain = serve_cluster(&cost, &topo, &spec, config(InferScheme::Lina, 800.0, 3));
        let mut c = config(InferScheme::Lina, 800.0, 3);
        // min_samples beyond the run's batch count: armed but inert.
        c.hedging = Some(HedgeConfig {
            quantile: 0.95,
            multiplier: 2.0,
            min_samples: 1_000_000,
        });
        let armed = serve_cluster(&cost, &topo, &spec, c);
        assert_eq!(plain.tracker.records(), armed.tracker.records());
        assert_eq!(
            plain.tracker.depth_timeline(),
            armed.tracker.depth_timeline()
        );
        assert_eq!(armed.hedges_issued, 0);
        assert_eq!(armed.report().requests, plain.report().requests);
    }

    #[test]
    fn hedging_conserves_requests_under_a_straggler() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 1500.0, 3);
        c.health = HealthConfig::phi_accrual();
        // Median-based delay: the service distribution under a gray
        // straggler is bimodal, so a high quantile would land in the
        // straggler's own band and never fire.
        c.hedging = Some(HedgeConfig {
            quantile: 0.5,
            multiplier: 1.2,
            min_samples: 4,
        });
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![FaultEvent {
                at: SimTime::ZERO,
                replica: 0,
                kind: FaultKind::GrayDegrade {
                    compute_scale: 8.0,
                    nic_scale: 1.0,
                },
            }]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let out = serve_cluster(&cost, &topo, &spec, c);
        let mut ids: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..96).collect::<Vec<_>>(),
            "hedging must serve every request exactly once"
        );
        assert!(
            out.hedges_issued > 0,
            "an 8x gray straggler must trigger hedges"
        );
        assert!(out.hedges_won <= out.hedges_issued);
        assert!((0.0..=1.0).contains(&out.hedge_wasted_frac));
        assert_eq!(out.report().hedges_issued, out.hedges_issued);
        assert_eq!(out.report().hedges_won, out.hedges_won);
    }

    #[test]
    fn hedging_survives_a_crash_of_the_primary_replica() {
        let (cost, topo, spec) = world();
        let mut c = config(InferScheme::Baseline, 1500.0, 3);
        c.hedging = Some(HedgeConfig {
            quantile: 0.5,
            multiplier: 1.0,
            min_samples: 2,
        });
        c.faults = FaultPlan {
            schedule: FaultSchedule::from_script(vec![
                FaultEvent {
                    at: SimTime::ZERO,
                    replica: 0,
                    kind: FaultKind::GrayDegrade {
                        compute_scale: 16.0,
                        nic_scale: 1.0,
                    },
                },
                crash_at(20, 0),
                recover_at(40, 0),
            ]),
            policy: DegradationPolicy::retry_failover(None),
        };
        let out = serve_cluster(&cost, &topo, &spec, c);
        // Conservation under the nastiest interleaving: hedges in
        // flight when their primary's replica crashes, primaries dying
        // with live hedges, and recovery mid-run.
        let mut terminal: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
        terminal.extend(out.tracker.failures().iter().map(|f| f.id));
        terminal.sort_unstable();
        terminal.dedup();
        assert_eq!(
            terminal,
            (0..96).collect::<Vec<_>>(),
            "every request reaches exactly one terminal outcome"
        );
    }
}
