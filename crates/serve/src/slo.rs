//! SLO accounting.
//!
//! The tracker collects per-request [`RequestRecord`]s, terminal
//! failure outcomes ([`FailureRecord`]), and a queue-depth timeline as
//! serving progresses, then summarizes them into the
//! latency/throughput numbers a serving evaluation reports: p50/p95/p99
//! latency, mean queueing delay, SLO attainment (the fraction of
//! *offered* requests finishing within the target), throughput, goodput
//! (throughput counting only SLO-compliant requests), and availability
//! (the fraction of offered requests that completed at all).
//!
//! Every admitted request reaches exactly one terminal outcome
//! ([`RequestOutcome`]): completion (a [`RequestRecord`]), an explicit
//! drop (fail-fast displacement, retry-budget exhaustion, or admission
//! shedding), or a timeout. Availability and goodput come straight
//! from the outcome counts, so a run where everything fails still
//! yields a finite, meaningful report.

use lina_simcore::{Samples, SimDuration, SimTime};

use crate::request::RequestRecord;

/// How a request's life ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served to completion (it has a [`RequestRecord`]).
    Completed,
    /// Dropped: fail-fast displacement, retry-budget exhaustion, a
    /// cluster-wide outage with no scheduled recovery, or admission
    /// shedding.
    Dropped,
    /// Still undispatched when the per-request timeout expired.
    TimedOut,
}

impl RequestOutcome {
    /// Stable lowercase name for metric labels.
    pub fn name(self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::Dropped => "dropped",
            RequestOutcome::TimedOut => "timed-out",
        }
    }
}

/// A request that terminated without completing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureRecord {
    /// Request id.
    pub id: usize,
    /// Original arrival instant.
    pub arrival: SimTime,
    /// Instant the terminal outcome was decided (the drop instant, or
    /// the timeout deadline).
    pub ended: SimTime,
    /// Tokens the request carried.
    pub tokens: usize,
    /// Which failure outcome ([`RequestOutcome::Completed`] never
    /// appears here).
    pub outcome: RequestOutcome,
}

/// Collects serving measurements.
#[derive(Clone, Debug)]
pub struct SloTracker {
    target: SimDuration,
    records: Vec<RequestRecord>,
    failures: Vec<FailureRecord>,
    depth_timeline: Vec<(SimTime, usize)>,
    hedges_issued: usize,
    hedges_won: usize,
    hedge_wasted_frac: f64,
}

impl SloTracker {
    /// Creates a tracker with a latency target.
    pub fn new(target: SimDuration) -> Self {
        SloTracker {
            target,
            records: Vec::new(),
            failures: Vec::new(),
            depth_timeline: Vec::new(),
            hedges_issued: 0,
            hedges_won: 0,
            hedge_wasted_frac: 0.0,
        }
    }

    /// Records the run's hedged-dispatch totals (all zero when hedging
    /// was off — the default, so unhedged reports are unchanged).
    pub fn record_hedges(&mut self, issued: usize, won: usize, wasted_frac: f64) {
        self.hedges_issued = issued;
        self.hedges_won = won;
        self.hedge_wasted_frac = wasted_frac;
    }

    /// The latency target.
    pub fn target(&self) -> SimDuration {
        self.target
    }

    /// Records one served request.
    pub fn record(&mut self, record: RequestRecord) {
        self.records.push(record);
    }

    /// Records one request that terminated without completing.
    pub fn record_failure(&mut self, failure: FailureRecord) {
        self.failures.push(failure);
    }

    /// Records the queue depth observed at an instant (the engine
    /// samples it at every dispatch, right after the batch leaves).
    pub fn record_depth(&mut self, at: SimTime, depth: usize) {
        self.depth_timeline.push((at, depth));
    }

    /// All per-request completion records, in dispatch order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// All terminal failures, in the order they were decided.
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// The queue-depth timeline, in time order.
    pub fn depth_timeline(&self) -> &[(SimTime, usize)] {
        &self.depth_timeline
    }

    /// Summarizes everything recorded so far. Never panics: a run with
    /// zero completions (or zero requests at all) reports zeroed
    /// latencies and throughputs, with availability and attainment
    /// defined from the outcome counts (both 1.0 when nothing was
    /// offered).
    pub fn report(&self) -> SloReport {
        let completed = self.records.len();
        let dropped = self
            .failures
            .iter()
            .filter(|f| f.outcome == RequestOutcome::Dropped)
            .count();
        let timed_out = self
            .failures
            .iter()
            .filter(|f| f.outcome == RequestOutcome::TimedOut)
            .count();
        let offered = completed + dropped + timed_out;

        let mut met = 0usize;
        let (p50, p95, p99, mean_queue_delay, makespan) = if self.records.is_empty() {
            (
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
            )
        } else {
            let mut latencies = Samples::new();
            let mut queue_delays = Samples::new();
            let mut first_arrival = SimTime::MAX;
            let mut last_completion = SimTime::ZERO;
            for r in &self.records {
                latencies.push_duration(r.latency());
                queue_delays.push_duration(r.queue_delay());
                if r.latency() <= self.target {
                    met += 1;
                }
                first_arrival = first_arrival.min(r.arrival);
                last_completion = last_completion.max(r.completed);
            }
            // The throughput window runs from the earliest arrival,
            // not t = 0: under low load the idle lead-in before the
            // first request would otherwise deflate throughput and
            // goodput.
            (
                SimDuration::from_secs_f64(latencies.median()),
                SimDuration::from_secs_f64(latencies.p95()),
                SimDuration::from_secs_f64(latencies.p99()),
                SimDuration::from_secs_f64(queue_delays.mean()),
                last_completion - first_arrival,
            )
        };
        let span = makespan.as_secs_f64().max(f64::MIN_POSITIVE);
        let (attainment, availability) = if offered == 0 {
            (1.0, 1.0)
        } else {
            (
                met as f64 / offered as f64,
                completed as f64 / offered as f64,
            )
        };
        SloReport {
            requests: completed,
            offered,
            dropped,
            timed_out,
            target: self.target,
            p50,
            p95,
            p99,
            mean_queue_delay,
            attainment,
            availability,
            throughput: if completed == 0 {
                0.0
            } else {
                completed as f64 / span
            },
            goodput: if completed == 0 {
                0.0
            } else {
                met as f64 / span
            },
            makespan,
            max_queue_depth: self
                .depth_timeline
                .iter()
                .map(|&(_, d)| d)
                .max()
                .unwrap_or(0),
            hedges_issued: self.hedges_issued,
            hedges_won: self.hedges_won,
            hedge_wasted_frac: self.hedge_wasted_frac,
        }
    }
}

/// Aggregate serving metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// Requests served to completion.
    pub requests: usize,
    /// Requests that reached any terminal outcome (completed, dropped,
    /// or timed out) — on the healthy path this equals `requests`.
    pub offered: usize,
    /// Requests dropped (fail-fast, budget exhaustion, shedding).
    pub dropped: usize,
    /// Requests that outlived the per-request timeout undispatched.
    pub timed_out: usize,
    /// The latency target attainment is measured against.
    pub target: SimDuration,
    /// Median request latency (completions only).
    pub p50: SimDuration,
    /// 95th-percentile request latency (completions only).
    pub p95: SimDuration,
    /// 99th-percentile request latency (completions only).
    pub p99: SimDuration,
    /// Mean time spent queued before dispatch (completions only).
    pub mean_queue_delay: SimDuration,
    /// Fraction of *offered* requests completing within the target (a
    /// dropped or timed-out request counts against attainment).
    pub attainment: f64,
    /// Fraction of offered requests that completed at all (1.0 when
    /// nothing was offered).
    pub availability: f64,
    /// Served requests per second of makespan.
    pub throughput: f64,
    /// SLO-compliant requests per second of makespan.
    pub goodput: f64,
    /// Earliest recorded arrival to last completion.
    pub makespan: SimDuration,
    /// Largest queue depth seen at any dispatch.
    pub max_queue_depth: usize,
    /// Speculative hedge batches issued (0 when hedging is off).
    pub hedges_issued: usize,
    /// Hedges that completed their batch (beat the primary, or rescued
    /// it after the primary's replica crashed).
    pub hedges_won: usize,
    /// Fraction of total executor time burned on losing flights —
    /// duplicated work hedging paid for nothing.
    pub hedge_wasted_frac: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, arrival_ms: u64, dispatch_ms: u64, complete_ms: u64) -> RequestRecord {
        RequestRecord {
            id,
            arrival: SimTime::from_millis(arrival_ms),
            dispatched: SimTime::from_millis(dispatch_ms),
            completed: SimTime::from_millis(complete_ms),
            tokens: 1,
            batch: 0,
            service: SimTime::from_millis(complete_ms) - SimTime::from_millis(dispatch_ms),
        }
    }

    fn failure(
        id: usize,
        arrival_ms: u64,
        ended_ms: u64,
        outcome: RequestOutcome,
    ) -> FailureRecord {
        FailureRecord {
            id,
            arrival: SimTime::from_millis(arrival_ms),
            ended: SimTime::from_millis(ended_ms),
            tokens: 1,
            outcome,
        }
    }

    #[test]
    fn attainment_and_goodput() {
        let mut t = SloTracker::new(SimDuration::from_millis(10));
        // The trace starts 100 ms in: an idle lead-in that must not
        // count against throughput (the window opens at the first
        // arrival, not t = 0).
        t.record(record(0, 100, 101, 105)); // 5 ms: meets
        t.record(record(1, 100, 110, 120)); // 20 ms: misses
        t.record_depth(SimTime::from_millis(101), 3);
        t.record_depth(SimTime::from_millis(110), 1);
        let r = t.report();
        assert_eq!(r.requests, 2);
        assert_eq!(r.offered, 2);
        assert!((r.attainment - 0.5).abs() < 1e-12);
        assert!((r.availability - 1.0).abs() < 1e-12);
        assert_eq!(r.makespan, SimDuration::from_millis(20));
        assert!((r.throughput - 100.0).abs() < 1e-9);
        assert!((r.goodput - 50.0).abs() < 1e-9);
        assert_eq!(r.max_queue_depth, 3);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut t = SloTracker::new(SimDuration::from_millis(50));
        for i in 0..100u64 {
            t.record(record(i as usize, 0, i, i + 1 + i / 10));
        }
        let r = t.report();
        assert!(r.p50 <= r.p95);
        assert!(r.p95 <= r.p99);
        assert!(r.p99 <= r.makespan);
    }

    #[test]
    fn failures_count_against_attainment_and_availability() {
        let mut t = SloTracker::new(SimDuration::from_millis(10));
        t.record(record(0, 100, 101, 105)); // meets
        t.record_failure(failure(1, 100, 140, RequestOutcome::Dropped));
        t.record_failure(failure(2, 102, 152, RequestOutcome::TimedOut));
        t.record_failure(failure(3, 104, 150, RequestOutcome::Dropped));
        let r = t.report();
        assert_eq!(r.requests, 1);
        assert_eq!(r.offered, 4);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.timed_out, 1);
        assert!((r.availability - 0.25).abs() < 1e-12);
        assert!((r.attainment - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_dropped_report_is_finite() {
        let mut t = SloTracker::new(SimDuration::from_millis(10));
        for id in 0..4 {
            t.record_failure(failure(id, 100, 120, RequestOutcome::Dropped));
        }
        let r = t.report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.offered, 4);
        assert_eq!(r.dropped, 4);
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.attainment, 0.0);
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.goodput, 0.0);
        assert_eq!(r.p99, SimDuration::ZERO);
        assert_eq!(r.makespan, SimDuration::ZERO);
        assert!(r.availability.is_finite() && r.goodput.is_finite());
    }

    #[test]
    fn zero_request_report_is_defined() {
        let r = SloTracker::new(SimDuration::from_millis(1)).report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.offered, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.attainment, 1.0);
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.max_queue_depth, 0);
    }
}
