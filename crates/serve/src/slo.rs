//! SLO accounting.
//!
//! The tracker collects per-request [`RequestRecord`]s and a
//! queue-depth timeline as serving progresses, then summarizes them
//! into the latency/throughput numbers a serving evaluation reports:
//! p50/p95/p99 latency, mean queueing delay, SLO attainment (the
//! fraction of requests finishing within the target), throughput, and
//! goodput (throughput counting only SLO-compliant requests).

use lina_simcore::{Samples, SimDuration, SimTime};

use crate::request::RequestRecord;

/// Collects serving measurements.
#[derive(Clone, Debug)]
pub struct SloTracker {
    target: SimDuration,
    records: Vec<RequestRecord>,
    depth_timeline: Vec<(SimTime, usize)>,
}

impl SloTracker {
    /// Creates a tracker with a latency target.
    pub fn new(target: SimDuration) -> Self {
        SloTracker {
            target,
            records: Vec::new(),
            depth_timeline: Vec::new(),
        }
    }

    /// The latency target.
    pub fn target(&self) -> SimDuration {
        self.target
    }

    /// Records one served request.
    pub fn record(&mut self, record: RequestRecord) {
        self.records.push(record);
    }

    /// Records the queue depth observed at an instant (the engine
    /// samples it at every dispatch, right after the batch leaves).
    pub fn record_depth(&mut self, at: SimTime, depth: usize) {
        self.depth_timeline.push((at, depth));
    }

    /// All per-request records, in dispatch order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The queue-depth timeline, in time order.
    pub fn depth_timeline(&self) -> &[(SimTime, usize)] {
        &self.depth_timeline
    }

    /// Summarizes everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if no requests were recorded.
    pub fn report(&self) -> SloReport {
        assert!(
            !self.records.is_empty(),
            "SloTracker::report: no requests recorded"
        );
        let mut latencies = Samples::new();
        let mut queue_delays = Samples::new();
        let mut met = 0usize;
        let mut first_arrival = SimTime::MAX;
        let mut last_completion = SimTime::ZERO;
        for r in &self.records {
            latencies.push_duration(r.latency());
            queue_delays.push_duration(r.queue_delay());
            if r.latency() <= self.target {
                met += 1;
            }
            first_arrival = first_arrival.min(r.arrival);
            last_completion = last_completion.max(r.completed);
        }
        // The throughput window runs from the earliest arrival, not
        // t = 0: under low load the idle lead-in before the first
        // request would otherwise deflate throughput and goodput.
        let makespan = last_completion - first_arrival;
        let n = self.records.len();
        let span = makespan.as_secs_f64().max(f64::MIN_POSITIVE);
        SloReport {
            requests: n,
            target: self.target,
            p50: SimDuration::from_secs_f64(latencies.median()),
            p95: SimDuration::from_secs_f64(latencies.p95()),
            p99: SimDuration::from_secs_f64(latencies.p99()),
            mean_queue_delay: SimDuration::from_secs_f64(queue_delays.mean()),
            attainment: met as f64 / n as f64,
            throughput: n as f64 / span,
            goodput: met as f64 / span,
            makespan,
            max_queue_depth: self
                .depth_timeline
                .iter()
                .map(|&(_, d)| d)
                .max()
                .unwrap_or(0),
        }
    }
}

/// Aggregate serving metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// Requests served.
    pub requests: usize,
    /// The latency target attainment is measured against.
    pub target: SimDuration,
    /// Median request latency.
    pub p50: SimDuration,
    /// 95th-percentile request latency.
    pub p95: SimDuration,
    /// 99th-percentile request latency.
    pub p99: SimDuration,
    /// Mean time spent queued before dispatch.
    pub mean_queue_delay: SimDuration,
    /// Fraction of requests with latency within the target.
    pub attainment: f64,
    /// Served requests per second of makespan.
    pub throughput: f64,
    /// SLO-compliant requests per second of makespan.
    pub goodput: f64,
    /// Earliest recorded arrival to last completion.
    pub makespan: SimDuration,
    /// Largest queue depth seen at any dispatch.
    pub max_queue_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, arrival_ms: u64, dispatch_ms: u64, complete_ms: u64) -> RequestRecord {
        RequestRecord {
            id,
            arrival: SimTime::from_millis(arrival_ms),
            dispatched: SimTime::from_millis(dispatch_ms),
            completed: SimTime::from_millis(complete_ms),
            tokens: 1,
            batch: 0,
            service: SimTime::from_millis(complete_ms) - SimTime::from_millis(dispatch_ms),
        }
    }

    #[test]
    fn attainment_and_goodput() {
        let mut t = SloTracker::new(SimDuration::from_millis(10));
        // The trace starts 100 ms in: an idle lead-in that must not
        // count against throughput (the window opens at the first
        // arrival, not t = 0).
        t.record(record(0, 100, 101, 105)); // 5 ms: meets
        t.record(record(1, 100, 110, 120)); // 20 ms: misses
        t.record_depth(SimTime::from_millis(101), 3);
        t.record_depth(SimTime::from_millis(110), 1);
        let r = t.report();
        assert_eq!(r.requests, 2);
        assert!((r.attainment - 0.5).abs() < 1e-12);
        assert_eq!(r.makespan, SimDuration::from_millis(20));
        assert!((r.throughput - 100.0).abs() < 1e-9);
        assert!((r.goodput - 50.0).abs() < 1e-9);
        assert_eq!(r.max_queue_depth, 3);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut t = SloTracker::new(SimDuration::from_millis(50));
        for i in 0..100u64 {
            t.record(record(i as usize, 0, i, i + 1 + i / 10));
        }
        let r = t.report();
        assert!(r.p50 <= r.p95);
        assert!(r.p95 <= r.p99);
        assert!(r.p99 <= r.makespan);
    }

    #[test]
    #[should_panic(expected = "no requests")]
    fn empty_report_panics() {
        SloTracker::new(SimDuration::from_millis(1)).report();
    }
}
