//! # lina-serve
//!
//! Open-loop request serving on top of the inference driver: the
//! paper's §7.3 evaluates Lina on fixed pre-formed batches, and this
//! crate closes the gap to a deployment by modelling the *request
//! path* in continuous simulated time:
//!
//! * [`ArrivalProcess`] — deterministic-seeded Poisson, bursty
//!   two-state MMPP, and replayable trace arrivals;
//! * [`Batcher`] — an admission queue plus dynamic batcher
//!   (max-batch-size and max-wait knobs) that forms
//!   [`TokenBatch`](lina_workload::TokenBatch)es from queued requests;
//! * [`ServeEngine`] — a single-server loop dispatching each formed
//!   batch through [`run_inference_batch`](lina_runner::inference::run_inference_batch),
//!   charging every request its queueing delay plus service time;
//! * [`ClusterEngine`] — N replica servers behind a pluggable
//!   [`LoadBalancer`] (round-robin, join-shortest-queue,
//!   least-expected-latency), each with its own admission queue and
//!   batcher timeline, sharing one popularity estimator or keeping
//!   per-replica ones ([`EstimatorSharing`]); the single-server loop is
//!   its K = 1 special case;
//! * [`SloTracker`] — per-request latency percentiles, throughput,
//!   goodput, SLO attainment, availability, explicit terminal outcomes
//!   ([`RequestOutcome`]), and a queue-depth timeline;
//! * popularity drift and online re-placement — the workload's class
//!   ranking rotates every `drift_period` requests, and the Lina
//!   schemes periodically re-profile the popularity estimator from
//!   recently served batches, re-running placement against the drifted
//!   distribution;
//! * deterministic fault injection and graceful degradation — a seeded
//!   [`FaultSchedule`] injects replica crashes/recoveries, device
//!   losses, link degradations, and stragglers into the cluster event
//!   loop, and a [`DegradationPolicy`] (fail-fast, retry + failover,
//!   or retry + failover + load shedding) decides what happens to the
//!   displaced work;
//! * gray-failure detection and hedged dispatch — *gray* faults
//!   ([`FaultKind::GrayDegrade`]) slow a replica without tripping its
//!   health bit; a phi-accrual-style [`HealthMonitor`] turns observed
//!   batch latencies into a continuous suspicion score the balancers
//!   route on ([`HealthConfig`]), and an optional [`HedgeConfig`]
//!   re-dispatches a quantile-late batch to the least-suspected
//!   alternate, first completion winning; the default
//!   [`DetectorKind::Oracle`] reproduces the historical boolean health
//!   bit bit-for-bit;
//! * elastic autoscaling — an [`AutoscalePolicy`] (reactive
//!   queue-depth thresholds with hysteresis, or a predictive forecast
//!   over an observation window) evaluated at a fixed control interval
//!   resizes the replica pool: scale-up pays the shared provisioning
//!   weight-reload cost ([`provisioning`]), scale-down drains in-flight
//!   work before decommissioning, and the run reports its integrated
//!   pool cost in replica-seconds — the cost axis of the cost-vs-SLO
//!   frontier ([`ClusterOutcome::replica_seconds`]);
//! * proactive expert re-sharding — a [`ReshardPolicy`] fed by an
//!   online per-expert load monitor replicates hot experts, evicts
//!   cold replicas, and migrates experts mid-serving
//!   ([`resharding`]); actuation pays the modeled PCIe transfer
//!   ([`provisioning::reshard_transfer`]) and bumps the plan-cache
//!   placement epoch so executors re-plan against the new shard map;
//! * diurnal traffic — [`ArrivalProcess::Diurnal`] composes a
//!   sinusoidal base rate with seeded flash-crowd overlays, and every
//!   arrival process streams lazily
//!   ([`ArrivalProcess::stream`]), so million-request traces run in
//!   constant memory.
//!
//! Everything is seeded: the same [`ServeConfig`] produces a
//! bit-identical request trace, dispatch schedule, and summary.

#![warn(missing_docs)]

pub mod arrival;
pub mod autoscale;
pub mod balancer;
pub mod batcher;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod health;
pub mod perf;
pub mod provisioning;
pub mod request;
pub mod resharding;
pub mod slo;

pub use arrival::{ArrivalProcess, ArrivalStream};
pub use autoscale::{
    AutoscaleConfig, AutoscalePolicy, AutoscalePolicyKind, ClusterObservation, PredictivePolicy,
    ReactivePolicy, ScaleDecision, ScriptedPolicy,
};
pub use balancer::{
    BalancerKind, JoinShortestQueue, LeastExpectedLatency, LoadBalancer, ReplicaSnapshot,
    RoundRobin,
};
pub use batcher::{Batcher, BatcherConfig};
pub use cluster::{serve_cluster, ClusterConfig, ClusterEngine, ClusterOutcome, EstimatorSharing};
pub use engine::{serve, ServeConfig, ServeEngine, ServeOutcome};
pub use faults::{
    DegradationPolicy, FaultEvent, FaultKind, FaultPlan, FaultRateConfig, FaultSchedule, PolicyKind,
};
pub use health::{DetectorKind, HealthConfig, HealthMonitor, HedgeConfig};
pub use lina_runner::NetworkMode;
pub use lina_simcore::QueueKind;
pub use perf::PerfConfig;
pub use provisioning::{provision_time, reshard_transfer, weight_reload};
pub use request::{Request, RequestRecord};
pub use resharding::{
    InertPolicy, ReshardAction, ReshardConfig, ReshardObservation, ReshardPolicy,
    ReshardPolicyKind, ScriptedReshardPolicy, ThresholdReshardPolicy,
};
pub use slo::{FailureRecord, RequestOutcome, SloReport, SloTracker};
