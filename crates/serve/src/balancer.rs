//! Pluggable request load balancers for the multi-replica cluster.
//!
//! A [`LoadBalancer`] routes each arriving request to one replica,
//! seeing a [`ReplicaSnapshot`] of every replica's queue and server
//! state at the arrival instant. Three policies ship with the crate:
//!
//! * [`RoundRobin`] — state-free rotation, blind to load;
//! * [`JoinShortestQueue`] — fewest outstanding tokens (queued plus
//!   in-flight), the classic JSQ rule at token granularity;
//! * [`LeastExpectedLatency`] — SLO-aware: picks the replica whose
//!   expected completion (server drain time plus queued work over the
//!   replica's [`capacity`](crate::ServeEngine::capacity)) is soonest.
//!
//! All policies route over *routable* replicas only
//! ([`ReplicaSnapshot::routable`]): a crashed replica is invisible
//! until its recovery event, a replica the autoscaler is draining
//! receives nothing new while it finishes its queue, and a freshly
//! provisioned replica is invisible until its weight reload completes
//! — even when the excluded replica's (stale) queue state would make
//! it the argmin. The cluster engine guarantees at least one routable
//! replica at every `pick` (a total outage is handled upstream by the
//! degradation policy, before routing).
//!
//! Replica health arrives as a continuous *suspicion* score from the
//! gray-failure detector ([`crate::HealthMonitor`]), not a bool: `0.0`
//! is indistinguishable from baseline, `>= 1.0` excludes the replica
//! from the routable set (infinity marks a crashed or retired
//! replica), and intermediate values penalize the replica under
//! [`LeastExpectedLatency`] without excluding it. Under the oracle
//! detector every live replica's suspicion is exactly `0.0`, so the
//! historical health-bit routing is reproduced bit for bit.
//!
//! Balancers may keep internal state (the round-robin cursor) but must
//! be deterministic: the cluster engine's bit-reproducibility rests on
//! every `pick` being a pure function of the snapshots and that state.

use lina_simcore::SimTime;

/// One replica's queue and server state at a routing instant.
#[derive(Clone, Debug)]
pub struct ReplicaSnapshot {
    /// Replica index.
    pub id: usize,
    /// Gray-failure suspicion: `0.0` baseline-healthy, `>= 1.0`
    /// excluded from routing, `f64::INFINITY` for a crashed or
    /// decommissioned replica (which must never be picked). Values in
    /// `(0, 1)` keep the replica routable but penalize it under
    /// [`LeastExpectedLatency`].
    pub suspicion: f64,
    /// Being drained for decommission by the autoscaler: it still
    /// finishes its queued work but receives no new requests.
    pub draining: bool,
    /// Still loading weights after an elastic scale-up: it will serve
    /// once provisioning completes, but receives no requests until
    /// then.
    pub provisioning: bool,
    /// Requests routed to this replica but not yet dispatched.
    pub queued_requests: usize,
    /// Tokens routed to this replica but not yet dispatched.
    pub queued_tokens: usize,
    /// Tokens in the batch currently executing (0 when idle).
    pub in_flight_tokens: usize,
    /// Instant the replica's server frees up (in the past when idle).
    pub server_free: SimTime,
    /// The replica's sustainable throughput upper bound (requests/s),
    /// as probed by [`crate::ServeEngine::capacity`] and scaled down
    /// for device loss or straggler slowdowns. Zero when the caller
    /// did not probe it (only [`LeastExpectedLatency`] reads it).
    pub capacity: f64,
}

impl ReplicaSnapshot {
    /// Tokens this replica still has to push through its server:
    /// queued plus in-flight.
    pub fn outstanding_tokens(&self) -> usize {
        self.queued_tokens + self.in_flight_tokens
    }

    /// Ready to receive new requests: suspicion under the exclusion
    /// threshold (which also excludes crashed replicas, whose
    /// suspicion is infinite), not draining toward decommission, and
    /// past its provisioning weight reload. Every shipped balancer
    /// routes over the routable subset only.
    pub fn routable(&self) -> bool {
        self.suspicion < 1.0 && !self.draining && !self.provisioning
    }
}

/// A dispatch-time routing policy over replicas.
pub trait LoadBalancer {
    /// Short display name (table/metric label).
    fn name(&self) -> &'static str;

    /// Chooses the replica for a request arriving at `now`. Must
    /// return the `id` of one of the given *routable* snapshots; the
    /// caller guarantees at least one replica is routable.
    fn pick(&mut self, replicas: &[ReplicaSnapshot], now: SimTime) -> usize;
}

/// Rotates through the routable replicas, blind to their load.
///
/// The rotation anchors on the *last picked replica id*, not a
/// positional cursor into the filtered list: under a mutating replica
/// set (crashes, recoveries, elastic scale-up/down) a positional
/// cursor skips or double-hits replicas whenever the filtered list
/// shifts underneath it, while the id anchor always advances to the
/// next routable id in cyclic order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    /// Id of the replica the previous pick routed to.
    last: Option<usize>,
}

impl RoundRobin {
    /// A fresh rotation starting at replica 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl LoadBalancer for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, replicas: &[ReplicaSnapshot], _now: SimTime) -> usize {
        // The next routable id strictly after the last pick, wrapping
        // to the smallest routable id.
        let after = replicas
            .iter()
            .filter(|r| r.routable() && self.last.is_some_and(|l| r.id > l))
            .map(|r| r.id)
            .min();
        let id = after
            .or_else(|| replicas.iter().filter(|r| r.routable()).map(|r| r.id).min())
            .expect("round-robin: no routable replica");
        self.last = Some(id);
        id
    }
}

/// Joins the healthy replica with the fewest outstanding tokens
/// (queued plus in-flight); ties break toward the lowest replica
/// index.
#[derive(Clone, Debug, Default)]
pub struct JoinShortestQueue;

impl LoadBalancer for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn pick(&mut self, replicas: &[ReplicaSnapshot], _now: SimTime) -> usize {
        replicas
            .iter()
            .filter(|r| r.routable())
            .min_by_key(|r| (r.outstanding_tokens(), r.id))
            .expect("at least one routable replica")
            .id
    }
}

/// Joins the healthy replica with the least expected completion
/// latency: remaining server busy time plus the queued requests (and
/// the new one) drained at the replica's probed capacity, stretched
/// by `1 + suspicion` so a partially suspected replica keeps serving
/// at reduced weight (an exact no-op at suspicion zero).
/// Capacity-aware, so it generalizes JSQ to heterogeneous or degraded
/// replicas.
#[derive(Clone, Debug, Default)]
pub struct LeastExpectedLatency;

impl LoadBalancer for LeastExpectedLatency {
    fn name(&self) -> &'static str {
        "least-latency"
    }

    fn pick(&mut self, replicas: &[ReplicaSnapshot], now: SimTime) -> usize {
        let score = |r: &ReplicaSnapshot| {
            let busy = r.server_free.saturating_since(now).as_secs_f64();
            let rate = if r.capacity > 0.0 {
                r.capacity
            } else {
                f64::INFINITY
            };
            (busy + (r.queued_requests as f64 + 1.0) / rate) * (1.0 + r.suspicion)
        };
        replicas
            .iter()
            .filter(|r| r.routable())
            .min_by(|a, b| {
                score(a)
                    .partial_cmp(&score(b))
                    .expect("scores are finite or +inf, never NaN")
                    .then(a.id.cmp(&b.id))
            })
            .expect("at least one routable replica")
            .id
    }
}

/// Constructible balancer selector for configs, sweeps, and the bench
/// registry (a `Box<dyn LoadBalancer>` itself is not `Clone`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`LeastExpectedLatency`].
    LeastExpectedLatency,
}

impl BalancerKind {
    /// Builds a fresh balancer of this kind.
    pub fn build(self) -> Box<dyn LoadBalancer> {
        match self {
            BalancerKind::RoundRobin => Box::new(RoundRobin::new()),
            BalancerKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            BalancerKind::LeastExpectedLatency => Box::new(LeastExpectedLatency),
        }
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "round-robin",
            BalancerKind::JoinShortestQueue => "jsq",
            BalancerKind::LeastExpectedLatency => "least-latency",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(id: usize, queued_tokens: usize, in_flight: usize, free_ms: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            id,
            suspicion: 0.0,
            draining: false,
            provisioning: false,
            queued_requests: queued_tokens / 64,
            queued_tokens,
            in_flight_tokens: in_flight,
            server_free: SimTime::from_millis(free_ms),
            capacity: 100.0,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::new();
        let snaps = vec![snap(0, 0, 0, 0), snap(1, 0, 0, 0), snap(2, 0, 0, 0)];
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&snaps, SimTime::ZERO)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_prefers_fewest_outstanding_tokens() {
        let mut jsq = JoinShortestQueue;
        // Replica 1 has the least queued + in-flight work.
        let snaps = vec![snap(0, 512, 0, 0), snap(1, 128, 64, 5), snap(2, 0, 256, 9)];
        assert_eq!(jsq.pick(&snaps, SimTime::ZERO), 1);
        // Ties break toward the lowest id.
        let tied = vec![snap(0, 128, 0, 0), snap(1, 128, 0, 0)];
        assert_eq!(jsq.pick(&tied, SimTime::ZERO), 0);
    }

    #[test]
    fn least_latency_accounts_for_busy_servers() {
        let mut lel = LeastExpectedLatency;
        // Replica 0 is idle but deeply queued; replica 1 busy for 1 ms
        // with an empty queue: 1 ms + 1/100 s < 0 + 11/100 s.
        let mut a = snap(0, 640, 0, 0);
        a.queued_requests = 10;
        let mut b = snap(1, 0, 64, 1);
        b.queued_requests = 0;
        assert_eq!(lel.pick(&[a, b], SimTime::ZERO), 1);
    }

    #[test]
    fn down_replica_is_never_picked_even_as_argmin() {
        // Replica 0 looks *ideal* on every axis — empty queue, idle
        // server — but it is down. Every policy must route around it.
        let mut down = snap(0, 0, 0, 0);
        down.suspicion = f64::INFINITY;
        let busy = snap(1, 512, 256, 9);
        let snaps = vec![down, busy];
        let mut rr = RoundRobin::new();
        for _ in 0..4 {
            assert_eq!(rr.pick(&snaps, SimTime::ZERO), 1, "round-robin");
        }
        assert_eq!(JoinShortestQueue.pick(&snaps, SimTime::ZERO), 1, "jsq");
        assert_eq!(
            LeastExpectedLatency.pick(&snaps, SimTime::ZERO),
            1,
            "least-latency"
        );
    }

    #[test]
    fn round_robin_rotation_skips_the_dead() {
        let mut rr = RoundRobin::new();
        let mut snaps = vec![snap(0, 0, 0, 0), snap(1, 0, 0, 0), snap(2, 0, 0, 0)];
        snaps[1].suspicion = f64::INFINITY;
        let picks: Vec<usize> = (0..4).map(|_| rr.pick(&snaps, SimTime::ZERO)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn round_robin_cursor_is_stable_under_a_mutating_replica_set() {
        // The positional-cursor bug this pins against: with replicas
        // {0, 1, 2}, picking 0 then 1 and *then* losing replica 1 used
        // to rewind the rotation to 0 (cursor 2 % 2 == 0), double-
        // hitting 0 and starving 2. The id-anchored rotation continues
        // at the next routable id.
        let mut rr = RoundRobin::new();
        let three = vec![snap(0, 0, 0, 0), snap(1, 0, 0, 0), snap(2, 0, 0, 0)];
        assert_eq!(rr.pick(&three, SimTime::ZERO), 0);
        assert_eq!(rr.pick(&three, SimTime::ZERO), 1);
        let mut lost = three.clone();
        lost[1].suspicion = f64::INFINITY;
        assert_eq!(rr.pick(&lost, SimTime::ZERO), 2, "no double-hit of 0");
        // Replica 1 comes back and a new replica 3 joins (elastic
        // scale-up): the rotation picks up both without skipping.
        let mut grown = three.clone();
        grown.push(snap(3, 0, 0, 0));
        assert_eq!(rr.pick(&grown, SimTime::ZERO), 3);
        assert_eq!(
            rr.pick(&grown, SimTime::ZERO),
            0,
            "wraps to the smallest id"
        );
        assert_eq!(rr.pick(&grown, SimTime::ZERO), 1);
    }

    #[test]
    fn round_robin_covers_every_routable_replica_exactly_once_per_cycle() {
        // Rotation invariant under churn: across any window where the
        // routable set is fixed, K consecutive picks hit each replica
        // exactly once (no skips, no double-hits), regardless of what
        // the rotation saw before.
        let mut rr = RoundRobin::new();
        let warm = vec![snap(0, 0, 0, 0), snap(1, 0, 0, 0), snap(4, 0, 0, 0)];
        for _ in 0..4 {
            rr.pick(&warm, SimTime::ZERO);
        }
        let stable = vec![
            snap(0, 0, 0, 0),
            snap(2, 0, 0, 0),
            snap(3, 0, 0, 0),
            snap(5, 0, 0, 0),
        ];
        let mut picks: Vec<usize> = (0..4).map(|_| rr.pick(&stable, SimTime::ZERO)).collect();
        picks.sort_unstable();
        assert_eq!(picks, vec![0, 2, 3, 5]);
    }

    #[test]
    fn draining_and_provisioning_replicas_are_never_picked_even_as_argmin() {
        // Mirror of the health-filter test for the autoscale lifecycle
        // states: an idle draining replica and an idle provisioning
        // replica both look ideal on every axis, but only the busy
        // active replica is routable.
        let mut draining = snap(0, 0, 0, 0);
        draining.draining = true;
        let mut provisioning = snap(1, 0, 0, 0);
        provisioning.provisioning = true;
        let busy = snap(2, 512, 256, 9);
        let snaps = vec![draining, provisioning, busy];
        let mut rr = RoundRobin::new();
        for _ in 0..4 {
            assert_eq!(rr.pick(&snaps, SimTime::ZERO), 2, "round-robin");
        }
        assert_eq!(JoinShortestQueue.pick(&snaps, SimTime::ZERO), 2, "jsq");
        assert_eq!(
            LeastExpectedLatency.pick(&snaps, SimTime::ZERO),
            2,
            "least-latency"
        );
    }

    #[test]
    fn kinds_build_their_policies() {
        for kind in [
            BalancerKind::RoundRobin,
            BalancerKind::JoinShortestQueue,
            BalancerKind::LeastExpectedLatency,
        ] {
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
