//! Pluggable request load balancers for the multi-replica cluster.
//!
//! A [`LoadBalancer`] routes each arriving request to one replica,
//! seeing a [`ReplicaSnapshot`] of every replica's queue and server
//! state at the arrival instant. Three policies ship with the crate:
//!
//! * [`RoundRobin`] — state-free rotation, blind to load;
//! * [`JoinShortestQueue`] — fewest outstanding tokens (queued plus
//!   in-flight), the classic JSQ rule at token granularity;
//! * [`LeastExpectedLatency`] — SLO-aware: picks the replica whose
//!   expected completion (server drain time plus queued work over the
//!   replica's [`capacity`](crate::ServeEngine::capacity)) is soonest.
//!
//! All policies route over *healthy* replicas only: a crashed replica
//! is invisible until its recovery event, even when its (stale) queue
//! state would make it the argmin. The cluster engine guarantees at
//! least one healthy replica at every `pick` (a total outage is
//! handled upstream by the degradation policy, before routing).
//!
//! Balancers may keep internal state (the round-robin cursor) but must
//! be deterministic: the cluster engine's bit-reproducibility rests on
//! every `pick` being a pure function of the snapshots and that state.

use lina_simcore::SimTime;

/// One replica's queue and server state at a routing instant.
#[derive(Clone, Debug)]
pub struct ReplicaSnapshot {
    /// Replica index.
    pub id: usize,
    /// Up and accepting work; a crashed replica must never be picked.
    pub healthy: bool,
    /// Requests routed to this replica but not yet dispatched.
    pub queued_requests: usize,
    /// Tokens routed to this replica but not yet dispatched.
    pub queued_tokens: usize,
    /// Tokens in the batch currently executing (0 when idle).
    pub in_flight_tokens: usize,
    /// Instant the replica's server frees up (in the past when idle).
    pub server_free: SimTime,
    /// The replica's sustainable throughput upper bound (requests/s),
    /// as probed by [`crate::ServeEngine::capacity`] and scaled down
    /// for device loss or straggler slowdowns. Zero when the caller
    /// did not probe it (only [`LeastExpectedLatency`] reads it).
    pub capacity: f64,
}

impl ReplicaSnapshot {
    /// Tokens this replica still has to push through its server:
    /// queued plus in-flight.
    pub fn outstanding_tokens(&self) -> usize {
        self.queued_tokens + self.in_flight_tokens
    }
}

/// A dispatch-time routing policy over replicas.
pub trait LoadBalancer {
    /// Short display name (table/metric label).
    fn name(&self) -> &'static str;

    /// Chooses the replica for a request arriving at `now`. Must
    /// return the `id` of one of the given *healthy* snapshots; the
    /// caller guarantees at least one replica is healthy.
    fn pick(&mut self, replicas: &[ReplicaSnapshot], now: SimTime) -> usize;
}

/// Rotates through the healthy replicas, blind to their load.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh rotation starting at replica 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl LoadBalancer for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, replicas: &[ReplicaSnapshot], _now: SimTime) -> usize {
        let healthy: Vec<&ReplicaSnapshot> = replicas.iter().filter(|r| r.healthy).collect();
        assert!(!healthy.is_empty(), "round-robin: no healthy replica");
        let id = healthy[self.cursor % healthy.len()].id;
        self.cursor = (self.cursor + 1) % healthy.len();
        id
    }
}

/// Joins the healthy replica with the fewest outstanding tokens
/// (queued plus in-flight); ties break toward the lowest replica
/// index.
#[derive(Clone, Debug, Default)]
pub struct JoinShortestQueue;

impl LoadBalancer for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn pick(&mut self, replicas: &[ReplicaSnapshot], _now: SimTime) -> usize {
        replicas
            .iter()
            .filter(|r| r.healthy)
            .min_by_key(|r| (r.outstanding_tokens(), r.id))
            .expect("at least one healthy replica")
            .id
    }
}

/// Joins the healthy replica with the least expected completion
/// latency: remaining server busy time plus the queued requests (and
/// the new one) drained at the replica's probed capacity.
/// Capacity-aware, so it generalizes JSQ to heterogeneous or degraded
/// replicas.
#[derive(Clone, Debug, Default)]
pub struct LeastExpectedLatency;

impl LoadBalancer for LeastExpectedLatency {
    fn name(&self) -> &'static str {
        "least-latency"
    }

    fn pick(&mut self, replicas: &[ReplicaSnapshot], now: SimTime) -> usize {
        let score = |r: &ReplicaSnapshot| {
            let busy = r.server_free.saturating_since(now).as_secs_f64();
            let rate = if r.capacity > 0.0 {
                r.capacity
            } else {
                f64::INFINITY
            };
            busy + (r.queued_requests as f64 + 1.0) / rate
        };
        replicas
            .iter()
            .filter(|r| r.healthy)
            .min_by(|a, b| {
                score(a)
                    .partial_cmp(&score(b))
                    .expect("scores are finite or +inf, never NaN")
                    .then(a.id.cmp(&b.id))
            })
            .expect("at least one healthy replica")
            .id
    }
}

/// Constructible balancer selector for configs, sweeps, and the bench
/// registry (a `Box<dyn LoadBalancer>` itself is not `Clone`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`LeastExpectedLatency`].
    LeastExpectedLatency,
}

impl BalancerKind {
    /// Builds a fresh balancer of this kind.
    pub fn build(self) -> Box<dyn LoadBalancer> {
        match self {
            BalancerKind::RoundRobin => Box::new(RoundRobin::new()),
            BalancerKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            BalancerKind::LeastExpectedLatency => Box::new(LeastExpectedLatency),
        }
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "round-robin",
            BalancerKind::JoinShortestQueue => "jsq",
            BalancerKind::LeastExpectedLatency => "least-latency",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(id: usize, queued_tokens: usize, in_flight: usize, free_ms: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            id,
            healthy: true,
            queued_requests: queued_tokens / 64,
            queued_tokens,
            in_flight_tokens: in_flight,
            server_free: SimTime::from_millis(free_ms),
            capacity: 100.0,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::new();
        let snaps = vec![snap(0, 0, 0, 0), snap(1, 0, 0, 0), snap(2, 0, 0, 0)];
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&snaps, SimTime::ZERO)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_prefers_fewest_outstanding_tokens() {
        let mut jsq = JoinShortestQueue;
        // Replica 1 has the least queued + in-flight work.
        let snaps = vec![snap(0, 512, 0, 0), snap(1, 128, 64, 5), snap(2, 0, 256, 9)];
        assert_eq!(jsq.pick(&snaps, SimTime::ZERO), 1);
        // Ties break toward the lowest id.
        let tied = vec![snap(0, 128, 0, 0), snap(1, 128, 0, 0)];
        assert_eq!(jsq.pick(&tied, SimTime::ZERO), 0);
    }

    #[test]
    fn least_latency_accounts_for_busy_servers() {
        let mut lel = LeastExpectedLatency;
        // Replica 0 is idle but deeply queued; replica 1 busy for 1 ms
        // with an empty queue: 1 ms + 1/100 s < 0 + 11/100 s.
        let mut a = snap(0, 640, 0, 0);
        a.queued_requests = 10;
        let mut b = snap(1, 0, 64, 1);
        b.queued_requests = 0;
        assert_eq!(lel.pick(&[a, b], SimTime::ZERO), 1);
    }

    #[test]
    fn down_replica_is_never_picked_even_as_argmin() {
        // Replica 0 looks *ideal* on every axis — empty queue, idle
        // server — but it is down. Every policy must route around it.
        let mut down = snap(0, 0, 0, 0);
        down.healthy = false;
        let busy = snap(1, 512, 256, 9);
        let snaps = vec![down, busy];
        let mut rr = RoundRobin::new();
        for _ in 0..4 {
            assert_eq!(rr.pick(&snaps, SimTime::ZERO), 1, "round-robin");
        }
        assert_eq!(JoinShortestQueue.pick(&snaps, SimTime::ZERO), 1, "jsq");
        assert_eq!(
            LeastExpectedLatency.pick(&snaps, SimTime::ZERO),
            1,
            "least-latency"
        );
    }

    #[test]
    fn round_robin_rotation_skips_the_dead() {
        let mut rr = RoundRobin::new();
        let mut snaps = vec![snap(0, 0, 0, 0), snap(1, 0, 0, 0), snap(2, 0, 0, 0)];
        snaps[1].healthy = false;
        let picks: Vec<usize> = (0..4).map(|_| rr.pick(&snaps, SimTime::ZERO)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn kinds_build_their_policies() {
        for kind in [
            BalancerKind::RoundRobin,
            BalancerKind::JoinShortestQueue,
            BalancerKind::LeastExpectedLatency,
        ] {
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
