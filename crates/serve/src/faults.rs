//! Deterministic fault injection and graceful-degradation policy.
//!
//! A [`FaultSchedule`] is a time-sorted list of [`FaultEvent`]s the
//! cluster event loop injects between serving events: replica crashes
//! and recoveries, single-device loss, link-bandwidth degradation, and
//! straggler slowdowns. Schedules are either *scripted*
//! ([`FaultSchedule::from_script`]) or *rate-driven*
//! ([`FaultSchedule::generate`]): a seeded Poisson process per replica
//! with exponential repair times, so the same seed always injects the
//! same faults — failures are as reproducible as everything else in the
//! simulator.
//!
//! A [`DegradationPolicy`] decides what happens to the work a fault
//! displaces:
//!
//! * [`PolicyKind::FailFast`] — every displaced request is dropped on
//!   the spot (the pre-fault serving stack's implicit behaviour, made
//!   explicit);
//! * [`PolicyKind::RetryFailover`] — displaced requests are re-admitted
//!   through the balancer with capped exponential backoff and a retry
//!   budget; requests that exhaust the budget (or outlive the
//!   per-request timeout) become explicit `Dropped`/`TimedOut`
//!   outcomes;
//! * [`PolicyKind::RetryFailoverShed`] — retry + failover plus an
//!   admission controller: when the outstanding work across *healthy*
//!   replicas exceeds what the post-failure capacity can drain, new
//!   admissions are shed instead of queued, protecting the tail of the
//!   requests already admitted.
//!
//! An empty schedule with an inert policy ([`FaultPlan::none`])
//! reproduces the healthy-path serving timeline bit for bit — the
//! degeneracy the property tests pin.

use lina_simcore::{Rng, SimDuration, SimTime};

/// What a single fault event does to its replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The whole replica server goes down: in-flight batches abort,
    /// queued requests are displaced, and the balancer stops routing to
    /// it until a [`FaultKind::ReplicaRecover`] event.
    ReplicaCrash,
    /// The replica comes back (fresh hardware: device loss, link
    /// degradation, and straggler state are cleared) after paying a
    /// weight-reload cost before its first dispatch.
    ReplicaRecover,
    /// One GPU dies but the replica stays up: dispatching blocks while
    /// the lost experts are re-replicated onto the survivors (a modeled
    /// PCIe transfer), and every later batch's expert compute stretches
    /// by `devices / (devices - 1)`.
    DeviceLoss,
    /// The replica's link bandwidth drops to `scale` of nominal
    /// (`0 < scale < 1`); collectives re-share the degraded links.
    LinkDegrade {
        /// Remaining fraction of nominal link bandwidth.
        scale: f64,
    },
    /// Link bandwidth returns to nominal.
    LinkRestore,
    /// Expert compute on the replica slows by `factor` (> 1) — a
    /// thermally throttled or contended straggler GPU.
    StragglerStart {
        /// Compute slowdown factor.
        factor: f64,
    },
    /// The straggler recovers to full speed.
    StragglerEnd,
    /// A *gray* failure: the replica silently degrades — expert compute
    /// stretches by `compute_scale` (>= 1) and link bandwidth drops to
    /// `nic_scale` of nominal — but keeps answering, and **the control
    /// plane is never told**: unlike every other fault kind, the health
    /// bit stays up and only a latency-inference detector
    /// ([`crate::health`]) can notice.
    GrayDegrade {
        /// Compute slowdown factor (1.0 = none).
        compute_scale: f64,
        /// Remaining fraction of nominal link bandwidth.
        nic_scale: f64,
    },
    /// The gray episode ends: compute and link return to nominal
    /// (again without telling the control plane).
    GrayClear,
}

/// One timed fault on one replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: SimTime,
    /// Target replica index.
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Rates and magnitudes for a generated fault schedule. All rates are
/// per replica-second; repair times draw from exponential distributions
/// with the given means.
#[derive(Clone, Debug)]
pub struct FaultRateConfig {
    /// Replica crash rate.
    pub crash_rate: f64,
    /// Mean time from crash to recovery.
    pub mean_recovery: SimDuration,
    /// Single-device-loss rate.
    pub device_loss_rate: f64,
    /// Link-degradation onset rate.
    pub degrade_rate: f64,
    /// Bandwidth fraction that survives a degradation.
    pub degrade_scale: f64,
    /// Mean time from degradation to restore.
    pub mean_degrade: SimDuration,
    /// Straggler onset rate.
    pub straggler_rate: f64,
    /// Straggler compute slowdown factor.
    pub straggler_factor: f64,
    /// Mean straggler episode length.
    pub mean_straggle: SimDuration,
    /// Gray-failure onset rate (silent compute + NIC degradation).
    pub gray_rate: f64,
    /// Compute slowdown during a gray episode.
    pub gray_compute: f64,
    /// Surviving link-bandwidth fraction during a gray episode.
    pub gray_nic: f64,
    /// Mean gray episode length.
    pub mean_gray: SimDuration,
    /// Flapping-link onset rate: short NIC-only gray episodes that keep
    /// toggling, the classic probation-testing pattern.
    pub flap_rate: f64,
    /// Surviving link-bandwidth fraction during a flap.
    pub flap_nic: f64,
    /// Mean flap episode length (short relative to `mean_gray`).
    pub mean_flap: SimDuration,
}

impl FaultRateConfig {
    /// A schedule of crashes only, at `crash_rate` per replica-second
    /// with `mean_recovery` repair times.
    pub fn crashes(crash_rate: f64, mean_recovery: SimDuration) -> Self {
        FaultRateConfig {
            crash_rate,
            mean_recovery,
            device_loss_rate: 0.0,
            degrade_rate: 0.0,
            degrade_scale: 0.5,
            mean_degrade: SimDuration::ZERO,
            straggler_rate: 0.0,
            straggler_factor: 2.0,
            mean_straggle: SimDuration::ZERO,
            gray_rate: 0.0,
            gray_compute: 2.0,
            gray_nic: 1.0,
            mean_gray: SimDuration::ZERO,
            flap_rate: 0.0,
            flap_nic: 0.5,
            mean_flap: SimDuration::ZERO,
        }
    }

    /// A schedule of gray failures only: silent (`compute` stretch x
    /// `nic` bandwidth fraction) episodes at `rate` per replica-second
    /// with `mean_gray` episode lengths. Nothing flips the health bit.
    pub fn gray(rate: f64, compute: f64, nic: f64, mean_gray: SimDuration) -> Self {
        FaultRateConfig {
            gray_rate: rate,
            gray_compute: compute,
            gray_nic: nic,
            mean_gray,
            ..FaultRateConfig::crashes(0.0, SimDuration::ZERO)
        }
    }
}

/// A deterministic, time-sorted fault script.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Sorted [`FaultKind::ReplicaRecover`] instants, precomputed so
    /// [`FaultSchedule::next_recovery_after`] (called per event-loop
    /// iteration during a total outage) is a binary search instead of a
    /// linear scan over the whole script.
    recoveries: Vec<SimTime>,
}

impl FaultSchedule {
    /// The empty schedule: nothing ever fails.
    pub fn none() -> Self {
        FaultSchedule {
            events: Vec::new(),
            recoveries: Vec::new(),
        }
    }

    /// A scripted schedule; events are stably sorted by injection time
    /// (equal-time events keep script order).
    pub fn from_script(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        let recoveries = events
            .iter()
            .filter(|e| e.kind == FaultKind::ReplicaRecover)
            .map(|e| e.at)
            .collect();
        FaultSchedule { events, recoveries }
    }

    /// Generates a seeded rate-driven schedule over `[0, horizon)` for
    /// `replicas` replicas: per replica, crashes arrive Poisson at
    /// `crash_rate` with exponential repair (each crash is followed by
    /// its recovery, and nothing else targets a down replica in
    /// between), while device loss, link degradation, and straggler
    /// episodes arrive on independent substreams. The same arguments
    /// always produce the same schedule.
    pub fn generate(
        rates: &FaultRateConfig,
        replicas: usize,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        let root = Rng::new(seed);
        let mut events = Vec::new();
        let horizon_s = horizon.as_secs_f64();
        // Exponential inter-arrival via inverse CDF on a dedicated
        // substream per (replica, fault family).
        let exp = |rng: &mut Rng, rate: f64| -> f64 {
            let u = rng.f64().max(f64::MIN_POSITIVE);
            -u.ln() / rate
        };
        for replica in 0..replicas {
            // Crash/recover alternation.
            if rates.crash_rate > 0.0 {
                let mut rng = root.derive(1 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.crash_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::ReplicaCrash,
                    });
                    let down = exp(
                        &mut rng,
                        1.0 / rates.mean_recovery.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    t += down;
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::ReplicaRecover,
                    });
                    t += exp(&mut rng, rates.crash_rate);
                }
            }
            if rates.device_loss_rate > 0.0 {
                let mut rng = root.derive(2 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.device_loss_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::DeviceLoss,
                    });
                    t += exp(&mut rng, rates.device_loss_rate);
                }
            }
            if rates.degrade_rate > 0.0 {
                let mut rng = root.derive(3 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.degrade_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::LinkDegrade {
                            scale: rates.degrade_scale,
                        },
                    });
                    t += exp(
                        &mut rng,
                        1.0 / rates.mean_degrade.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::LinkRestore,
                    });
                    t += exp(&mut rng, rates.degrade_rate);
                }
            }
            if rates.straggler_rate > 0.0 {
                let mut rng = root.derive(4 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.straggler_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::StragglerStart {
                            factor: rates.straggler_factor,
                        },
                    });
                    t += exp(
                        &mut rng,
                        1.0 / rates.mean_straggle.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::StragglerEnd,
                    });
                    t += exp(&mut rng, rates.straggler_rate);
                }
            }
            if rates.gray_rate > 0.0 {
                let mut rng = root.derive(5 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.gray_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::GrayDegrade {
                            compute_scale: rates.gray_compute,
                            nic_scale: rates.gray_nic,
                        },
                    });
                    t += exp(
                        &mut rng,
                        1.0 / rates.mean_gray.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::GrayClear,
                    });
                    t += exp(&mut rng, rates.gray_rate);
                }
            }
            if rates.flap_rate > 0.0 {
                // Flaps are NIC-only gray episodes on an independent
                // stream; overlaps with the main gray stream are
                // suppressed below.
                let mut rng = root.derive(6 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.flap_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::GrayDegrade {
                            compute_scale: 1.0,
                            nic_scale: rates.flap_nic,
                        },
                    });
                    t += exp(
                        &mut rng,
                        1.0 / rates.mean_flap.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::GrayClear,
                    });
                    t += exp(&mut rng, rates.flap_rate);
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultSchedule::from_script(Self::suppress_overlaps(events, replicas))
    }

    /// Drops generated events that would start an episode already in
    /// progress (or end one that is not): per replica, straggler and
    /// gray episodes each follow a strict start/end alternation, so
    /// independent rate streams (e.g. gray + flap, or a future second
    /// straggler source) can never stack or emit dangling clears.
    /// `events` must already be sorted by time.
    fn suppress_overlaps(events: Vec<FaultEvent>, replicas: usize) -> Vec<FaultEvent> {
        let mut straggling = vec![false; replicas];
        let mut gray = vec![false; replicas];
        events
            .into_iter()
            .filter(|e| {
                let flag = match e.kind {
                    FaultKind::StragglerStart { .. } | FaultKind::StragglerEnd => {
                        &mut straggling[e.replica]
                    }
                    FaultKind::GrayDegrade { .. } | FaultKind::GrayClear => &mut gray[e.replica],
                    _ => return true,
                };
                let starts = matches!(
                    e.kind,
                    FaultKind::StragglerStart { .. } | FaultKind::GrayDegrade { .. }
                );
                if *flag == starts {
                    return false; // already in (or out of) the episode
                }
                *flag = starts;
                true
            })
            .collect()
    }

    /// The events, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// No events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest [`FaultKind::ReplicaRecover`] strictly after `t` (any
    /// replica) — when a request finds every replica down, the retry
    /// policies defer its admission to this instant.
    pub fn next_recovery_after(&self, t: SimTime) -> Option<SimTime> {
        let i = self.recoveries.partition_point(|&r| r <= t);
        self.recoveries.get(i).copied()
    }

    /// Validates event targets against the cluster shape.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a replica index `>= replicas`, a
    /// degradation scale is outside `(0, 1]`, or a straggler factor is
    /// below 1.
    pub fn validate(&self, replicas: usize) {
        for e in &self.events {
            assert!(
                e.replica < replicas,
                "fault at {} targets replica {} of {replicas}",
                e.at,
                e.replica
            );
            match e.kind {
                FaultKind::LinkDegrade { scale } => assert!(
                    scale > 0.0 && scale <= 1.0,
                    "link degrade scale {scale} outside (0, 1]"
                ),
                FaultKind::StragglerStart { factor } => assert!(
                    factor.is_finite() && factor >= 1.0,
                    "straggler factor {factor} below 1"
                ),
                FaultKind::GrayDegrade {
                    compute_scale,
                    nic_scale,
                } => {
                    assert!(
                        compute_scale.is_finite() && compute_scale >= 1.0,
                        "gray compute scale {compute_scale} below 1"
                    );
                    assert!(
                        nic_scale > 0.0 && nic_scale <= 1.0,
                        "gray nic scale {nic_scale} outside (0, 1]"
                    );
                }
                _ => {}
            }
        }
    }
}

/// How the cluster degrades when faults displace work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Drop every displaced request immediately.
    FailFast,
    /// Re-admit displaced requests through the balancer with capped
    /// exponential backoff and a retry budget.
    RetryFailover,
    /// Retry + failover plus queue-depth admission control: shed new
    /// admissions when the healthy replicas' outstanding work exceeds
    /// the shed threshold.
    RetryFailoverShed,
}

impl PolicyKind {
    /// Stable lowercase name for configs and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FailFast => "fail-fast",
            PolicyKind::RetryFailover => "retry-failover",
            PolicyKind::RetryFailoverShed => "retry-failover-shed",
        }
    }
}

/// The graceful-degradation knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationPolicy {
    /// Strategy family.
    pub kind: PolicyKind,
    /// Re-admissions allowed per request before it is dropped
    /// (ignored by [`PolicyKind::FailFast`]).
    pub retry_budget: u32,
    /// Backoff before the first re-admission; attempt `n` waits
    /// `backoff_base * 2^(n-1)`, capped at `backoff_cap`.
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: SimDuration,
    /// A request still undispatched this long after its *original*
    /// arrival becomes a `TimedOut` outcome (`None`: requests wait
    /// forever).
    pub request_timeout: Option<SimDuration>,
    /// Shed threshold for [`PolicyKind::RetryFailoverShed`], in units
    /// of full batches per healthy replica: an admission is shed when
    /// the healthy replicas' outstanding tokens exceed
    /// `shed_batches_per_replica * healthy * max_batch_tokens`.
    pub shed_batches_per_replica: f64,
    /// Retry-jitter width in `[0, 1]`: attempt `n`'s backoff is
    /// multiplied by a seeded per-(request, attempt) factor uniform in
    /// `[1 - jitter/2, 1 + jitter/2]`, de-synchronizing the retry
    /// stampede after a mass displacement (a crash dumps a whole
    /// queue's worth of requests onto identical backoff timers). `0.0`
    /// reproduces the unjittered timeline bit for bit.
    pub jitter: f64,
}

impl DegradationPolicy {
    /// Drop displaced work immediately; no timeouts, no shedding. This
    /// is the inert policy: with an empty schedule it can never fire.
    pub fn fail_fast() -> Self {
        DegradationPolicy {
            kind: PolicyKind::FailFast,
            retry_budget: 0,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            request_timeout: None,
            shed_batches_per_replica: f64::INFINITY,
            jitter: 0.0,
        }
    }

    /// Retry + failover defaults: 3 attempts, 1 ms base backoff capped
    /// at 8 ms, and a `timeout` bound on total sojourn.
    pub fn retry_failover(timeout: Option<SimDuration>) -> Self {
        DegradationPolicy {
            kind: PolicyKind::RetryFailover,
            retry_budget: 3,
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(8),
            request_timeout: timeout,
            shed_batches_per_replica: f64::INFINITY,
            jitter: 0.0,
        }
    }

    /// Retry + failover + shedding defaults: as
    /// [`DegradationPolicy::retry_failover`], shedding past 6 full
    /// batches of outstanding work per healthy replica.
    pub fn retry_failover_shed(timeout: Option<SimDuration>) -> Self {
        DegradationPolicy {
            shed_batches_per_replica: 6.0,
            kind: PolicyKind::RetryFailoverShed,
            ..DegradationPolicy::retry_failover(timeout)
        }
    }

    /// Whether displaced requests are re-admitted rather than dropped.
    pub fn retries(&self) -> bool {
        matches!(
            self.kind,
            PolicyKind::RetryFailover | PolicyKind::RetryFailoverShed
        )
    }

    /// Whether the admission controller sheds new arrivals under
    /// post-failure overload.
    pub fn sheds(&self) -> bool {
        self.kind == PolicyKind::RetryFailoverShed
    }

    /// The capped exponential backoff before re-admission attempt
    /// `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(30);
        let wait = self.backoff_base * 2u64.pow(exp);
        wait.min(self.backoff_cap)
    }

    /// [`DegradationPolicy::backoff`] with seeded per-(request, attempt)
    /// jitter off the `retry` substream of
    /// [`crate::engine::ServeConfig::seeds`]. Deriving a fresh stream
    /// per (request, attempt) keeps the factor independent of retry
    /// *order*, so timelines stay reproducible under failover races.
    /// With `jitter == 0.0` this IS `backoff` — the multiply is skipped
    /// entirely, so the unjittered timeline is reproduced bit for bit.
    pub fn backoff_jittered(&self, attempt: u32, request: usize, retry: &Rng) -> SimDuration {
        let base = self.backoff(attempt);
        if self.jitter == 0.0 {
            return base;
        }
        let mut rng = retry.derive(((request as u64) << 8) | u64::from(attempt & 0xFF));
        base.mul_f64(1.0 + self.jitter * (rng.f64() - 0.5))
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a zero timeout, a backoff cap below the base, a
    /// non-positive shed threshold, or a jitter outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.request_timeout != Some(SimDuration::ZERO),
            "faults: request_timeout must be > 0"
        );
        if self.retries() && self.retry_budget > 0 {
            assert!(
                self.backoff_cap >= self.backoff_base,
                "faults: backoff_cap below backoff_base"
            );
        }
        assert!(
            self.shed_batches_per_replica > 0.0,
            "faults: shed threshold must be > 0"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "faults: retry jitter {} outside [0, 1]",
            self.jitter
        );
    }
}

/// A schedule plus the policy that handles it — everything the cluster
/// needs to know about failure.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The timed fault script.
    pub schedule: FaultSchedule,
    /// What happens to displaced work.
    pub policy: DegradationPolicy,
}

impl FaultPlan {
    /// No faults, inert policy: the healthy path, bit for bit.
    pub fn none() -> Self {
        FaultPlan {
            schedule: FaultSchedule::none(),
            policy: DegradationPolicy::fail_fast(),
        }
    }

    /// Validates schedule and policy against the cluster shape.
    ///
    /// # Panics
    ///
    /// Panics if either part is invalid (see
    /// [`FaultSchedule::validate`], [`DegradationPolicy::validate`]).
    pub fn validate(&self, replicas: usize) {
        self.schedule.validate(replicas);
        self.policy.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_schedules_sort_by_time() {
        let s = FaultSchedule::from_script(vec![
            FaultEvent {
                at: SimTime::from_millis(50),
                replica: 1,
                kind: FaultKind::ReplicaRecover,
            },
            FaultEvent {
                at: SimTime::from_millis(10),
                replica: 1,
                kind: FaultKind::ReplicaCrash,
            },
        ]);
        assert_eq!(s.events()[0].kind, FaultKind::ReplicaCrash);
        assert_eq!(
            s.next_recovery_after(SimTime::from_millis(10)),
            Some(SimTime::from_millis(50))
        );
        assert_eq!(s.next_recovery_after(SimTime::from_millis(50)), None);
    }

    #[test]
    fn generated_schedules_are_deterministic_and_alternate() {
        let rates = FaultRateConfig::crashes(2.0, SimDuration::from_millis(200));
        let horizon = SimDuration::from_secs_f64(5.0);
        let a = FaultSchedule::generate(&rates, 3, horizon, 42);
        let b = FaultSchedule::generate(&rates, 3, horizon, 42);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty(), "5 replica-crashes expected on average");
        let c = FaultSchedule::generate(&rates, 3, horizon, 43);
        assert_ne!(a.events(), c.events(), "different seeds differ");
        // Per replica: strict crash/recover alternation starting with a
        // crash.
        for r in 0..3 {
            let mut expect_crash = true;
            for e in a.events().iter().filter(|e| e.replica == r) {
                let want = if expect_crash {
                    FaultKind::ReplicaCrash
                } else {
                    FaultKind::ReplicaRecover
                };
                assert_eq!(e.kind, want, "replica {r}");
                expect_crash = !expect_crash;
            }
        }
    }

    /// Even with gray and flap streams racing on the same replicas, the
    /// generator never stacks episodes: every replica's gray events (and
    /// straggler events) strictly alternate start → clear, and the
    /// flap stream's NIC-only onsets survive only outside gray episodes.
    #[test]
    fn gray_and_flap_streams_never_overlap() {
        let mut rates = FaultRateConfig::gray(2.0, 4.0, 0.25, SimDuration::from_millis(400));
        rates.flap_rate = 5.0;
        rates.flap_nic = 0.5;
        rates.mean_flap = SimDuration::from_millis(50);
        rates.straggler_rate = 3.0;
        rates.straggler_factor = 2.0;
        rates.mean_straggle = SimDuration::from_millis(100);
        for seed in 0..32u64 {
            let s = FaultSchedule::generate(&rates, 3, SimDuration::from_secs_f64(5.0), seed);
            assert!(!s.is_empty(), "seed {seed}");
            let mut saw_flap_onset = false;
            for r in 0..3 {
                let mut gray = false;
                let mut straggling = false;
                for e in s.events().iter().filter(|e| e.replica == r) {
                    match e.kind {
                        FaultKind::GrayDegrade { compute_scale, .. } => {
                            assert!(!gray, "seed {seed}: replica {r} double gray onset");
                            gray = true;
                            saw_flap_onset |= compute_scale == 1.0;
                        }
                        FaultKind::GrayClear => {
                            assert!(gray, "seed {seed}: replica {r} dangling gray clear");
                            gray = false;
                        }
                        FaultKind::StragglerStart { .. } => {
                            assert!(!straggling, "seed {seed}: replica {r} double straggler");
                            straggling = true;
                        }
                        FaultKind::StragglerEnd => {
                            assert!(straggling, "seed {seed}: replica {r} dangling end");
                            straggling = false;
                        }
                        other => panic!("unexpected kind {other:?}"),
                    }
                }
            }
            if saw_flap_onset {
                return; // both streams contributed at least once
            }
        }
        panic!("no flap onset survived across 32 seeds");
    }

    #[test]
    fn generated_gray_schedules_validate_and_are_deterministic() {
        let rates = FaultRateConfig::gray(1.0, 8.0, 0.1, SimDuration::from_millis(300));
        let a = FaultSchedule::generate(&rates, 2, SimDuration::from_secs_f64(4.0), 7);
        let b = FaultSchedule::generate(&rates, 2, SimDuration::from_secs_f64(4.0), 7);
        assert_eq!(a.events(), b.events());
        a.validate(2);
        assert!(
            a.events()
                .iter()
                .all(|e| matches!(e.kind, FaultKind::GrayDegrade { .. } | FaultKind::GrayClear)),
            "gray() rates must emit only gray events"
        );
        assert_eq!(
            a.next_recovery_after(SimTime::ZERO),
            None,
            "gray events never flip the health bit, so there is nothing to recover"
        );
    }

    #[test]
    #[should_panic(expected = "gray compute scale")]
    fn sub_unity_gray_compute_rejected() {
        FaultSchedule::from_script(vec![FaultEvent {
            at: SimTime::ZERO,
            replica: 0,
            kind: FaultKind::GrayDegrade {
                compute_scale: 0.5,
                nic_scale: 1.0,
            },
        }])
        .validate(1);
    }

    /// The precomputed recovery index answers exactly like the linear
    /// scan it replaced, including between, at, and past event times.
    #[test]
    fn recovery_index_matches_linear_scan() {
        let rates = FaultRateConfig::crashes(3.0, SimDuration::from_millis(150));
        let s = FaultSchedule::generate(&rates, 4, SimDuration::from_secs_f64(3.0), 11);
        let probes: Vec<SimTime> = std::iter::once(SimTime::ZERO)
            .chain(s.events().iter().flat_map(|e| {
                [
                    e.at,
                    e.at + SimDuration::from_nanos(1),
                    e.at + SimDuration::from_millis(1),
                ]
            }))
            .collect();
        for t in probes {
            let linear = s
                .events()
                .iter()
                .find(|e| e.at > t && e.kind == FaultKind::ReplicaRecover)
                .map(|e| e.at);
            assert_eq!(s.next_recovery_after(t), linear, "probe at {t}");
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = DegradationPolicy::retry_failover(None);
        assert_eq!(p.backoff(1), SimDuration::from_millis(1));
        assert_eq!(p.backoff(2), SimDuration::from_millis(2));
        assert_eq!(p.backoff(3), SimDuration::from_millis(4));
        assert_eq!(p.backoff(4), SimDuration::from_millis(8));
        assert_eq!(p.backoff(10), SimDuration::from_millis(8), "capped");
    }

    /// jitter = 0 must reproduce `backoff` bit for bit (the multiply is
    /// skipped, not rounded through); jitter > 0 spreads identical
    /// (attempt) pairs across requests deterministically and within the
    /// +/- jitter/2 envelope.
    #[test]
    fn retry_jitter_degenerates_to_plain_backoff_and_spreads_requests() {
        let rng = Rng::new(0xDECAF);
        let plain = DegradationPolicy::retry_failover(None);
        for attempt in 1..6 {
            for request in [0usize, 1, 97] {
                assert_eq!(
                    plain.backoff_jittered(attempt, request, &rng),
                    plain.backoff(attempt),
                    "jitter=0 must be the identity"
                );
            }
        }
        let mut jittered = plain;
        jittered.jitter = 0.5;
        jittered.validate();
        let waits: Vec<SimDuration> = (0..64)
            .map(|request| jittered.backoff_jittered(2, request, &rng))
            .collect();
        let base = plain.backoff(2);
        let lo = base.mul_f64(0.75);
        let hi = base.mul_f64(1.25);
        for (request, &w) in waits.iter().enumerate() {
            assert!(
                (lo..=hi).contains(&w),
                "request {request}: {w} outside envelope"
            );
            assert_eq!(
                w,
                jittered.backoff_jittered(2, request, &rng),
                "same (request, attempt) must re-draw the same factor"
            );
        }
        let distinct: std::collections::BTreeSet<SimDuration> = waits.iter().copied().collect();
        assert!(
            distinct.len() > 32,
            "stampede not spread: {} distinct waits of 64",
            distinct.len()
        );
    }

    #[test]
    #[should_panic(expected = "retry jitter")]
    fn out_of_range_jitter_rejected() {
        let mut p = DegradationPolicy::retry_failover(None);
        p.jitter = 1.5;
        p.validate();
    }

    #[test]
    fn inert_plan_has_no_events_and_never_retries() {
        let plan = FaultPlan::none();
        assert!(plan.schedule.is_empty());
        assert!(!plan.policy.retries());
        assert_eq!(plan.policy.request_timeout, None);
        plan.validate(1);
    }

    #[test]
    #[should_panic(expected = "targets replica")]
    fn out_of_range_replica_rejected() {
        FaultSchedule::from_script(vec![FaultEvent {
            at: SimTime::ZERO,
            replica: 3,
            kind: FaultKind::ReplicaCrash,
        }])
        .validate(3);
    }
}
