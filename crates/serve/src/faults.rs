//! Deterministic fault injection and graceful-degradation policy.
//!
//! A [`FaultSchedule`] is a time-sorted list of [`FaultEvent`]s the
//! cluster event loop injects between serving events: replica crashes
//! and recoveries, single-device loss, link-bandwidth degradation, and
//! straggler slowdowns. Schedules are either *scripted*
//! ([`FaultSchedule::from_script`]) or *rate-driven*
//! ([`FaultSchedule::generate`]): a seeded Poisson process per replica
//! with exponential repair times, so the same seed always injects the
//! same faults — failures are as reproducible as everything else in the
//! simulator.
//!
//! A [`DegradationPolicy`] decides what happens to the work a fault
//! displaces:
//!
//! * [`PolicyKind::FailFast`] — every displaced request is dropped on
//!   the spot (the pre-fault serving stack's implicit behaviour, made
//!   explicit);
//! * [`PolicyKind::RetryFailover`] — displaced requests are re-admitted
//!   through the balancer with capped exponential backoff and a retry
//!   budget; requests that exhaust the budget (or outlive the
//!   per-request timeout) become explicit `Dropped`/`TimedOut`
//!   outcomes;
//! * [`PolicyKind::RetryFailoverShed`] — retry + failover plus an
//!   admission controller: when the outstanding work across *healthy*
//!   replicas exceeds what the post-failure capacity can drain, new
//!   admissions are shed instead of queued, protecting the tail of the
//!   requests already admitted.
//!
//! An empty schedule with an inert policy ([`FaultPlan::none`])
//! reproduces the healthy-path serving timeline bit for bit — the
//! degeneracy the property tests pin.

use lina_simcore::{Rng, SimDuration, SimTime};

/// What a single fault event does to its replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The whole replica server goes down: in-flight batches abort,
    /// queued requests are displaced, and the balancer stops routing to
    /// it until a [`FaultKind::ReplicaRecover`] event.
    ReplicaCrash,
    /// The replica comes back (fresh hardware: device loss, link
    /// degradation, and straggler state are cleared) after paying a
    /// weight-reload cost before its first dispatch.
    ReplicaRecover,
    /// One GPU dies but the replica stays up: dispatching blocks while
    /// the lost experts are re-replicated onto the survivors (a modeled
    /// PCIe transfer), and every later batch's expert compute stretches
    /// by `devices / (devices - 1)`.
    DeviceLoss,
    /// The replica's link bandwidth drops to `scale` of nominal
    /// (`0 < scale < 1`); collectives re-share the degraded links.
    LinkDegrade {
        /// Remaining fraction of nominal link bandwidth.
        scale: f64,
    },
    /// Link bandwidth returns to nominal.
    LinkRestore,
    /// Expert compute on the replica slows by `factor` (> 1) — a
    /// thermally throttled or contended straggler GPU.
    StragglerStart {
        /// Compute slowdown factor.
        factor: f64,
    },
    /// The straggler recovers to full speed.
    StragglerEnd,
}

/// One timed fault on one replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: SimTime,
    /// Target replica index.
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Rates and magnitudes for a generated fault schedule. All rates are
/// per replica-second; repair times draw from exponential distributions
/// with the given means.
#[derive(Clone, Debug)]
pub struct FaultRateConfig {
    /// Replica crash rate.
    pub crash_rate: f64,
    /// Mean time from crash to recovery.
    pub mean_recovery: SimDuration,
    /// Single-device-loss rate.
    pub device_loss_rate: f64,
    /// Link-degradation onset rate.
    pub degrade_rate: f64,
    /// Bandwidth fraction that survives a degradation.
    pub degrade_scale: f64,
    /// Mean time from degradation to restore.
    pub mean_degrade: SimDuration,
    /// Straggler onset rate.
    pub straggler_rate: f64,
    /// Straggler compute slowdown factor.
    pub straggler_factor: f64,
    /// Mean straggler episode length.
    pub mean_straggle: SimDuration,
}

impl FaultRateConfig {
    /// A schedule of crashes only, at `crash_rate` per replica-second
    /// with `mean_recovery` repair times.
    pub fn crashes(crash_rate: f64, mean_recovery: SimDuration) -> Self {
        FaultRateConfig {
            crash_rate,
            mean_recovery,
            device_loss_rate: 0.0,
            degrade_rate: 0.0,
            degrade_scale: 0.5,
            mean_degrade: SimDuration::ZERO,
            straggler_rate: 0.0,
            straggler_factor: 2.0,
            mean_straggle: SimDuration::ZERO,
        }
    }
}

/// A deterministic, time-sorted fault script.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule: nothing ever fails.
    pub fn none() -> Self {
        FaultSchedule { events: Vec::new() }
    }

    /// A scripted schedule; events are stably sorted by injection time
    /// (equal-time events keep script order).
    pub fn from_script(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Generates a seeded rate-driven schedule over `[0, horizon)` for
    /// `replicas` replicas: per replica, crashes arrive Poisson at
    /// `crash_rate` with exponential repair (each crash is followed by
    /// its recovery, and nothing else targets a down replica in
    /// between), while device loss, link degradation, and straggler
    /// episodes arrive on independent substreams. The same arguments
    /// always produce the same schedule.
    pub fn generate(
        rates: &FaultRateConfig,
        replicas: usize,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        let root = Rng::new(seed);
        let mut events = Vec::new();
        let horizon_s = horizon.as_secs_f64();
        // Exponential inter-arrival via inverse CDF on a dedicated
        // substream per (replica, fault family).
        let exp = |rng: &mut Rng, rate: f64| -> f64 {
            let u = rng.f64().max(f64::MIN_POSITIVE);
            -u.ln() / rate
        };
        for replica in 0..replicas {
            // Crash/recover alternation.
            if rates.crash_rate > 0.0 {
                let mut rng = root.derive(1 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.crash_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::ReplicaCrash,
                    });
                    let down = exp(
                        &mut rng,
                        1.0 / rates.mean_recovery.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    t += down;
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::ReplicaRecover,
                    });
                    t += exp(&mut rng, rates.crash_rate);
                }
            }
            if rates.device_loss_rate > 0.0 {
                let mut rng = root.derive(2 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.device_loss_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::DeviceLoss,
                    });
                    t += exp(&mut rng, rates.device_loss_rate);
                }
            }
            if rates.degrade_rate > 0.0 {
                let mut rng = root.derive(3 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.degrade_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::LinkDegrade {
                            scale: rates.degrade_scale,
                        },
                    });
                    t += exp(
                        &mut rng,
                        1.0 / rates.mean_degrade.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::LinkRestore,
                    });
                    t += exp(&mut rng, rates.degrade_rate);
                }
            }
            if rates.straggler_rate > 0.0 {
                let mut rng = root.derive(4 + 8 * replica as u64);
                let mut t = exp(&mut rng, rates.straggler_rate);
                while t < horizon_s {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::StragglerStart {
                            factor: rates.straggler_factor,
                        },
                    });
                    t += exp(
                        &mut rng,
                        1.0 / rates.mean_straggle.as_secs_f64().max(f64::MIN_POSITIVE),
                    );
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        replica,
                        kind: FaultKind::StragglerEnd,
                    });
                    t += exp(&mut rng, rates.straggler_rate);
                }
            }
        }
        FaultSchedule::from_script(events)
    }

    /// The events, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// No events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest [`FaultKind::ReplicaRecover`] strictly after `t` (any
    /// replica) — when a request finds every replica down, the retry
    /// policies defer its admission to this instant.
    pub fn next_recovery_after(&self, t: SimTime) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.at > t && e.kind == FaultKind::ReplicaRecover)
            .map(|e| e.at)
    }

    /// Validates event targets against the cluster shape.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a replica index `>= replicas`, a
    /// degradation scale is outside `(0, 1]`, or a straggler factor is
    /// below 1.
    pub fn validate(&self, replicas: usize) {
        for e in &self.events {
            assert!(
                e.replica < replicas,
                "fault at {} targets replica {} of {replicas}",
                e.at,
                e.replica
            );
            match e.kind {
                FaultKind::LinkDegrade { scale } => assert!(
                    scale > 0.0 && scale <= 1.0,
                    "link degrade scale {scale} outside (0, 1]"
                ),
                FaultKind::StragglerStart { factor } => assert!(
                    factor.is_finite() && factor >= 1.0,
                    "straggler factor {factor} below 1"
                ),
                _ => {}
            }
        }
    }
}

/// How the cluster degrades when faults displace work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Drop every displaced request immediately.
    FailFast,
    /// Re-admit displaced requests through the balancer with capped
    /// exponential backoff and a retry budget.
    RetryFailover,
    /// Retry + failover plus queue-depth admission control: shed new
    /// admissions when the healthy replicas' outstanding work exceeds
    /// the shed threshold.
    RetryFailoverShed,
}

impl PolicyKind {
    /// Stable lowercase name for configs and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FailFast => "fail-fast",
            PolicyKind::RetryFailover => "retry-failover",
            PolicyKind::RetryFailoverShed => "retry-failover-shed",
        }
    }
}

/// The graceful-degradation knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationPolicy {
    /// Strategy family.
    pub kind: PolicyKind,
    /// Re-admissions allowed per request before it is dropped
    /// (ignored by [`PolicyKind::FailFast`]).
    pub retry_budget: u32,
    /// Backoff before the first re-admission; attempt `n` waits
    /// `backoff_base * 2^(n-1)`, capped at `backoff_cap`.
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: SimDuration,
    /// A request still undispatched this long after its *original*
    /// arrival becomes a `TimedOut` outcome (`None`: requests wait
    /// forever).
    pub request_timeout: Option<SimDuration>,
    /// Shed threshold for [`PolicyKind::RetryFailoverShed`], in units
    /// of full batches per healthy replica: an admission is shed when
    /// the healthy replicas' outstanding tokens exceed
    /// `shed_batches_per_replica * healthy * max_batch_tokens`.
    pub shed_batches_per_replica: f64,
}

impl DegradationPolicy {
    /// Drop displaced work immediately; no timeouts, no shedding. This
    /// is the inert policy: with an empty schedule it can never fire.
    pub fn fail_fast() -> Self {
        DegradationPolicy {
            kind: PolicyKind::FailFast,
            retry_budget: 0,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            request_timeout: None,
            shed_batches_per_replica: f64::INFINITY,
        }
    }

    /// Retry + failover defaults: 3 attempts, 1 ms base backoff capped
    /// at 8 ms, and a `timeout` bound on total sojourn.
    pub fn retry_failover(timeout: Option<SimDuration>) -> Self {
        DegradationPolicy {
            kind: PolicyKind::RetryFailover,
            retry_budget: 3,
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(8),
            request_timeout: timeout,
            shed_batches_per_replica: f64::INFINITY,
        }
    }

    /// Retry + failover + shedding defaults: as
    /// [`DegradationPolicy::retry_failover`], shedding past 6 full
    /// batches of outstanding work per healthy replica.
    pub fn retry_failover_shed(timeout: Option<SimDuration>) -> Self {
        DegradationPolicy {
            shed_batches_per_replica: 6.0,
            kind: PolicyKind::RetryFailoverShed,
            ..DegradationPolicy::retry_failover(timeout)
        }
    }

    /// Whether displaced requests are re-admitted rather than dropped.
    pub fn retries(&self) -> bool {
        matches!(
            self.kind,
            PolicyKind::RetryFailover | PolicyKind::RetryFailoverShed
        )
    }

    /// Whether the admission controller sheds new arrivals under
    /// post-failure overload.
    pub fn sheds(&self) -> bool {
        self.kind == PolicyKind::RetryFailoverShed
    }

    /// The capped exponential backoff before re-admission attempt
    /// `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(30);
        let wait = self.backoff_base * 2u64.pow(exp);
        wait.min(self.backoff_cap)
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a zero timeout, a backoff cap below the base, or a
    /// non-positive shed threshold.
    pub fn validate(&self) {
        assert!(
            self.request_timeout != Some(SimDuration::ZERO),
            "faults: request_timeout must be > 0"
        );
        if self.retries() && self.retry_budget > 0 {
            assert!(
                self.backoff_cap >= self.backoff_base,
                "faults: backoff_cap below backoff_base"
            );
        }
        assert!(
            self.shed_batches_per_replica > 0.0,
            "faults: shed threshold must be > 0"
        );
    }
}

/// A schedule plus the policy that handles it — everything the cluster
/// needs to know about failure.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The timed fault script.
    pub schedule: FaultSchedule,
    /// What happens to displaced work.
    pub policy: DegradationPolicy,
}

impl FaultPlan {
    /// No faults, inert policy: the healthy path, bit for bit.
    pub fn none() -> Self {
        FaultPlan {
            schedule: FaultSchedule::none(),
            policy: DegradationPolicy::fail_fast(),
        }
    }

    /// Validates schedule and policy against the cluster shape.
    ///
    /// # Panics
    ///
    /// Panics if either part is invalid (see
    /// [`FaultSchedule::validate`], [`DegradationPolicy::validate`]).
    pub fn validate(&self, replicas: usize) {
        self.schedule.validate(replicas);
        self.policy.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_schedules_sort_by_time() {
        let s = FaultSchedule::from_script(vec![
            FaultEvent {
                at: SimTime::from_millis(50),
                replica: 1,
                kind: FaultKind::ReplicaRecover,
            },
            FaultEvent {
                at: SimTime::from_millis(10),
                replica: 1,
                kind: FaultKind::ReplicaCrash,
            },
        ]);
        assert_eq!(s.events()[0].kind, FaultKind::ReplicaCrash);
        assert_eq!(
            s.next_recovery_after(SimTime::from_millis(10)),
            Some(SimTime::from_millis(50))
        );
        assert_eq!(s.next_recovery_after(SimTime::from_millis(50)), None);
    }

    #[test]
    fn generated_schedules_are_deterministic_and_alternate() {
        let rates = FaultRateConfig::crashes(2.0, SimDuration::from_millis(200));
        let horizon = SimDuration::from_secs_f64(5.0);
        let a = FaultSchedule::generate(&rates, 3, horizon, 42);
        let b = FaultSchedule::generate(&rates, 3, horizon, 42);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty(), "5 replica-crashes expected on average");
        let c = FaultSchedule::generate(&rates, 3, horizon, 43);
        assert_ne!(a.events(), c.events(), "different seeds differ");
        // Per replica: strict crash/recover alternation starting with a
        // crash.
        for r in 0..3 {
            let mut expect_crash = true;
            for e in a.events().iter().filter(|e| e.replica == r) {
                let want = if expect_crash {
                    FaultKind::ReplicaCrash
                } else {
                    FaultKind::ReplicaRecover
                };
                assert_eq!(e.kind, want, "replica {r}");
                expect_crash = !expect_crash;
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = DegradationPolicy::retry_failover(None);
        assert_eq!(p.backoff(1), SimDuration::from_millis(1));
        assert_eq!(p.backoff(2), SimDuration::from_millis(2));
        assert_eq!(p.backoff(3), SimDuration::from_millis(4));
        assert_eq!(p.backoff(4), SimDuration::from_millis(8));
        assert_eq!(p.backoff(10), SimDuration::from_millis(8), "capped");
    }

    #[test]
    fn inert_plan_has_no_events_and_never_retries() {
        let plan = FaultPlan::none();
        assert!(plan.schedule.is_empty());
        assert!(!plan.policy.retries());
        assert_eq!(plan.policy.request_timeout, None);
        plan.validate(1);
    }

    #[test]
    #[should_panic(expected = "targets replica")]
    fn out_of_range_replica_rejected() {
        FaultSchedule::from_script(vec![FaultEvent {
            at: SimTime::ZERO,
            replica: 3,
            kind: FaultKind::ReplicaCrash,
        }])
        .validate(3);
    }
}
