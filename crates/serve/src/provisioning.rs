//! Shared provisioning / weight-reload cost model.
//!
//! Bringing serving capacity online is never free: a replica that
//! (re)joins the cluster must first load its expert shard onto every
//! device over PCIe. The same modeled transfer gates three paths:
//!
//! * **crash recovery** — fresh hardware replacing a crashed replica
//!   reloads all weights before its first dispatch
//!   ([`FaultKind::ReplicaRecover`](crate::FaultKind::ReplicaRecover));
//! * **device loss** — the lost shard is re-replicated onto the
//!   surviving devices before the next dispatch
//!   ([`FaultKind::DeviceLoss`](crate::FaultKind::DeviceLoss));
//! * **autoscale scale-up** — a newly provisioned replica is invisible
//!   to the balancers until the reload completes
//!   (`crate::autoscale`).
//!
//! Keeping the formula in one place guarantees fault recovery and
//! elastic scale-up can never drift apart on what provisioning costs.

use lina_model::CostModel;
use lina_netsim::Topology;
use lina_simcore::SimDuration;

/// Modeled PCIe transfer to (re)load one device's expert shard:
/// `expert_swap * ceil(experts / devices)`. Every device loads its
/// shard in parallel, so the wall-clock cost is one shard, not the
/// whole model.
pub fn weight_reload(cost: &CostModel, topo: &Topology, experts: usize) -> SimDuration {
    cost.expert_swap(topo.spec().pcie_bw) * (experts.div_ceil(topo.devices()) as u64)
}

/// Wall-clock cost to bring a *new* replica online (autoscale
/// scale-up). Identical to the crash-recovery weight reload today:
/// provisioning is dominated by moving the expert weights onto the
/// devices, and both paths must price that movement the same way.
pub fn provision_time(cost: &CostModel, topo: &Topology, experts: usize) -> SimDuration {
    weight_reload(cost, topo, experts)
}

/// Wall-clock cost of a proactive re-sharding actuation that moves
/// `moved` expert-weight replicas (replications and migrations copy
/// one replica each; evictions are free). Priced as `moved` serial
/// [`expert_swap`](CostModel::expert_swap)s over PCIe, scaled by the
/// configured `transfer_cost` — the same transfer primitive the
/// reload helpers above charge, so reactive recovery and proactive
/// re-sharding can never drift apart on what moving weights costs.
pub fn reshard_transfer(
    cost: &CostModel,
    topo: &Topology,
    moved: usize,
    transfer_cost: f64,
) -> SimDuration {
    (cost.expert_swap(topo.spec().pcie_bw) * (moved as u64)).mul_f64(transfer_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;

    #[test]
    fn reload_matches_the_inline_formula_it_replaced() {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        // The exact expression `run_on` used before extraction; the
        // helper must reproduce it bit for bit (serve_faults metrics
        // pin the recovery timeline).
        let inline =
            cost.expert_swap(topo.spec().pcie_bw) * (8usize.div_ceil(topo.devices()) as u64);
        assert_eq!(weight_reload(&cost, &topo, 8), inline);
        assert_eq!(provision_time(&cost, &topo, 8), inline);
    }

    #[test]
    fn reshard_transfer_prices_serial_swaps() {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let swap = cost.expert_swap(topo.spec().pcie_bw);
        assert_eq!(reshard_transfer(&cost, &topo, 3, 1.0), swap * 3);
        assert_eq!(reshard_transfer(&cost, &topo, 2, 0.5), swap);
        assert_eq!(
            reshard_transfer(&cost, &topo, 5, 0.0),
            SimDuration::ZERO,
            "free transfers model an idealized interconnect"
        );
    }

    #[test]
    fn reload_scales_with_experts_per_device() {
        let model = MoeModelConfig::transformer_xl(6, 16).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let shallow = weight_reload(&cost, &topo, 8);
        let deep = weight_reload(&cost, &topo, 16);
        assert_eq!(deep, shallow * 2, "two experts per device, two swaps");
    }
}
