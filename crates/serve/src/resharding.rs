//! Proactive expert re-sharding under skew drift.
//!
//! Lina re-places experts at *epoch* boundaries: the online
//! re-estimation window periodically re-profiles the popularity
//! estimator and the two-phase scheduler re-plans placement for the
//! next batches. Between epochs, a drifting workload leaves the hot
//! expert pinned to one device. This module closes that gap with a
//! continuous control loop (HarMoEny-style): an online per-expert load
//! monitor (reusing the same [`ReestimationWindow`] samples the
//! re-estimator reads) feeds a [`ReshardPolicy`] that, mid-serving,
//! emits [`ReshardAction`]s — replicate a hot expert onto another
//! device, evict a cold replica, or migrate an expert wholesale. The
//! cluster event loop evaluates the policy at a fixed control interval
//! as its own priority class; actuation pays the modeled PCIe weight
//! transfer through the shared [`crate::provisioning`] helper and bumps
//! the plan-cache placement epoch so executors re-plan against the new
//! shard map.
//!
//! [`ReestimationWindow`]: crate::engine::ReestimationWindow

use lina_simcore::{SimDuration, SimTime};

/// One shard-map mutation a policy may request. Expert indices refer
/// to the model's global expert ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReshardAction {
    /// Add one more replica of the expert on the least-crowded device
    /// with spare capacity (a no-op when every device is full or
    /// already hosts it).
    Replicate(usize),
    /// Remove the expert's replica from the most-crowded device
    /// hosting it (a no-op when only one replica remains — an expert
    /// must always stay hosted somewhere).
    Evict(usize),
    /// Move the expert from its most-crowded host to the
    /// least-crowded device with spare capacity (a no-op when no
    /// strictly better home exists).
    Migrate(usize),
}

/// What a policy sees at each control tick: the monitored per-expert
/// load and the current shard map's shape.
#[derive(Clone, Debug)]
pub struct ReshardObservation<'a> {
    /// The control tick's instant.
    pub now: SimTime,
    /// Each expert's share of the token-selections observed in the
    /// monitoring window (sums to ~1 when any tokens were observed;
    /// all-zero on an empty window).
    pub expert_share: &'a [f64],
    /// Current replica count per expert in the shard map.
    pub replicas: &'a [usize],
    /// Devices in the replica topology.
    pub devices: usize,
    /// Hard cap on experts hosted per device.
    pub max_experts_per_device: usize,
}

/// A re-sharding policy: observes per-expert load, decides shard-map
/// mutations. Implementations must be deterministic in the
/// observation — the cluster event loop replays bit-identically.
pub trait ReshardPolicy {
    /// The policy's display name.
    fn name(&self) -> &'static str;
    /// Decides this tick's actions, applied in order.
    fn decide(&mut self, obs: &ReshardObservation<'_>) -> Vec<ReshardAction>;
}

/// The reference policy: hot/cold watermarks with hysteresis and a
/// per-tick transfer budget.
///
/// An expert whose *per-replica* load share exceeds `hot / experts`
/// for `hysteresis` consecutive ticks gains a replica; an expert with
/// more than one replica whose per-replica share falls below
/// `cold / experts` for `hysteresis` consecutive ticks loses one. At
/// most `transfer_budget` weight-moving actions are emitted per tick,
/// hottest-first, so a drifting trace amortizes transfers instead of
/// thrashing the PCIe bus.
#[derive(Clone, Debug)]
pub struct ThresholdReshardPolicy {
    /// Replicate when an expert's per-replica share exceeds
    /// `hot / experts` (in units of the uniform share; e.g. 2.0 means
    /// "twice the fair share").
    pub hot: f64,
    /// Evict when a multi-replica expert's per-replica share falls
    /// below `cold / experts`.
    pub cold: f64,
    /// Consecutive ticks a watermark must hold before acting.
    pub hysteresis: usize,
    /// Max weight-moving actions per tick.
    pub transfer_budget: usize,
    hot_streak: Vec<usize>,
    cold_streak: Vec<usize>,
}

impl ThresholdReshardPolicy {
    /// Creates the policy; streak counters start cold.
    pub fn new(hot: f64, cold: f64, hysteresis: usize, transfer_budget: usize) -> Self {
        ThresholdReshardPolicy {
            hot,
            cold,
            hysteresis,
            transfer_budget,
            hot_streak: Vec::new(),
            cold_streak: Vec::new(),
        }
    }
}

impl ReshardPolicy for ThresholdReshardPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn decide(&mut self, obs: &ReshardObservation<'_>) -> Vec<ReshardAction> {
        let experts = obs.expert_share.len();
        self.hot_streak.resize(experts, 0);
        self.cold_streak.resize(experts, 0);
        let fair = 1.0 / experts.max(1) as f64;
        let observed: f64 = obs.expert_share.iter().sum();
        if observed <= 0.0 {
            // An empty monitoring window (e.g. right after a shard-map
            // change flushed it) resets the streaks: stale momentum
            // must not trigger on the first post-flush tick.
            self.hot_streak.iter_mut().for_each(|s| *s = 0);
            self.cold_streak.iter_mut().for_each(|s| *s = 0);
            return Vec::new();
        }
        // Rank hot candidates hottest-first so the transfer budget
        // goes to the worst offender; ties break on the lower id for
        // determinism.
        let mut hot_ranked: Vec<usize> = Vec::new();
        for e in 0..experts {
            let per_replica = obs.expert_share[e] / obs.replicas[e].max(1) as f64;
            if per_replica > self.hot * fair {
                self.hot_streak[e] += 1;
            } else {
                self.hot_streak[e] = 0;
            }
            if obs.replicas[e] > 1 && per_replica < self.cold * fair {
                self.cold_streak[e] += 1;
            } else {
                self.cold_streak[e] = 0;
            }
            if self.hot_streak[e] >= self.hysteresis {
                hot_ranked.push(e);
            }
        }
        hot_ranked.sort_by(|&a, &b| {
            obs.expert_share[b]
                .partial_cmp(&obs.expert_share[a])
                .expect("shares are finite")
                .then(a.cmp(&b))
        });
        let mut actions = Vec::new();
        for e in hot_ranked {
            if actions.len() >= self.transfer_budget {
                break;
            }
            actions.push(ReshardAction::Replicate(e));
            self.hot_streak[e] = 0;
        }
        // Evictions move no weights (dropping a replica is free), so
        // they ride outside the transfer budget.
        for e in 0..experts {
            if self.cold_streak[e] >= self.hysteresis {
                actions.push(ReshardAction::Evict(e));
                self.cold_streak[e] = 0;
            }
        }
        actions
    }
}

/// The degeneracy policy: observes every tick, never acts. An armed
/// inert re-sharder must reproduce the fixed cluster bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct InertPolicy;

impl ReshardPolicy for InertPolicy {
    fn name(&self) -> &'static str {
        "inert"
    }

    fn decide(&mut self, _obs: &ReshardObservation<'_>) -> Vec<ReshardAction> {
        Vec::new()
    }
}

/// Replays a pre-scripted action sequence, one entry per control tick
/// (holds after the script runs out). Drives the property tests'
/// arbitrary reshard schedules.
#[derive(Clone, Debug)]
pub struct ScriptedReshardPolicy {
    script: Vec<Vec<ReshardAction>>,
    next: usize,
}

impl ScriptedReshardPolicy {
    /// Creates the scripted policy.
    pub fn new(script: Vec<Vec<ReshardAction>>) -> Self {
        ScriptedReshardPolicy { script, next: 0 }
    }
}

impl ReshardPolicy for ScriptedReshardPolicy {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn decide(&mut self, _obs: &ReshardObservation<'_>) -> Vec<ReshardAction> {
        let actions = self.script.get(self.next).cloned().unwrap_or_default();
        self.next += 1;
        actions
    }
}

/// Declarative policy selection for configs (mirrors
/// [`crate::AutoscalePolicyKind`]).
#[derive(Clone, Debug)]
pub enum ReshardPolicyKind {
    /// [`ThresholdReshardPolicy`] with the given watermarks.
    Threshold {
        /// Hot watermark in fair-share units.
        hot: f64,
        /// Cold watermark in fair-share units.
        cold: f64,
        /// Consecutive ticks before acting.
        hysteresis: usize,
        /// Max weight-moving actions per tick.
        transfer_budget: usize,
    },
    /// [`InertPolicy`] — observe, never act.
    Inert,
    /// [`ScriptedReshardPolicy`] replaying the given per-tick actions.
    Scripted {
        /// Actions per control tick.
        script: Vec<Vec<ReshardAction>>,
    },
}

impl ReshardPolicyKind {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn ReshardPolicy> {
        match self {
            ReshardPolicyKind::Threshold {
                hot,
                cold,
                hysteresis,
                transfer_budget,
            } => Box::new(ThresholdReshardPolicy::new(
                *hot,
                *cold,
                *hysteresis,
                *transfer_budget,
            )),
            ReshardPolicyKind::Inert => Box::new(InertPolicy),
            ReshardPolicyKind::Scripted { script } => {
                Box::new(ScriptedReshardPolicy::new(script.clone()))
            }
        }
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ReshardPolicyKind::Threshold { .. } => "threshold",
            ReshardPolicyKind::Inert => "inert",
            ReshardPolicyKind::Scripted { .. } => "scripted",
        }
    }
}

/// Re-sharding configuration: the policy, its control cadence, the
/// monitoring window, and the transfer cost scale.
#[derive(Clone, Debug)]
pub struct ReshardConfig {
    /// The policy evaluated each tick.
    pub policy: ReshardPolicyKind,
    /// Control interval (first tick fires one interval into the run).
    pub interval: SimDuration,
    /// Batches the load monitor's sliding window holds.
    pub window: usize,
    /// Scale on the modeled per-expert PCIe weight transfer charged to
    /// every replica when an actuation moves weights (1.0 = one
    /// [`expert_swap`](lina_model::CostModel::expert_swap) per moved
    /// replica; 0.0 models free transfers).
    pub transfer_cost: f64,
}

impl ReshardConfig {
    /// An armed-but-inert configuration: the control loop ticks and
    /// observes at `interval` but can never mutate the shard map. Used
    /// by the degeneracy tests: the outcome must be bit-identical to
    /// running with no re-sharding at all.
    pub fn inert(interval: SimDuration) -> Self {
        ReshardConfig {
            policy: ReshardPolicyKind::Inert,
            interval,
            window: 8,
            transfer_cost: 1.0,
        }
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval or window, or a non-finite/negative
    /// transfer cost.
    pub fn validate(&self) {
        assert!(
            self.interval > SimDuration::ZERO,
            "resharding: interval must be > 0"
        );
        assert!(self.window > 0, "resharding: window must be > 0");
        assert!(
            self.transfer_cost.is_finite() && self.transfer_cost >= 0.0,
            "resharding: transfer_cost must be finite and >= 0"
        );
        if let ReshardPolicyKind::Threshold {
            hot,
            cold,
            hysteresis,
            ..
        } = &self.policy
        {
            assert!(
                hot.is_finite() && cold.is_finite() && cold < hot,
                "resharding: watermarks must satisfy cold < hot"
            );
            assert!(*hysteresis > 0, "resharding: hysteresis must be > 0");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(share: &'a [f64], replicas: &'a [usize], devices: usize) -> ReshardObservation<'a> {
        ReshardObservation {
            now: SimTime::ZERO,
            expert_share: share,
            replicas,
            devices,
            max_experts_per_device: 2,
        }
    }

    #[test]
    fn threshold_replicates_a_hot_expert_after_hysteresis() {
        let mut p = ThresholdReshardPolicy::new(2.0, 0.5, 2, 1);
        let share = [0.7, 0.1, 0.1, 0.1];
        let replicas = [1usize, 1, 1, 1];
        // First tick arms the streak, second fires.
        assert!(p.decide(&obs(&share, &replicas, 4)).is_empty());
        assert_eq!(
            p.decide(&obs(&share, &replicas, 4)),
            vec![ReshardAction::Replicate(0)]
        );
        // The streak resets after acting.
        assert!(p.decide(&obs(&share, &replicas, 4)).is_empty());
    }

    #[test]
    fn threshold_evicts_a_cold_replicated_expert() {
        let mut p = ThresholdReshardPolicy::new(4.0, 0.8, 1, 1);
        // Expert 0 holds 2 replicas but receives a sub-fair share.
        let share = [0.05, 0.35, 0.3, 0.3];
        let replicas = [2usize, 1, 1, 1];
        assert_eq!(
            p.decide(&obs(&share, &replicas, 4)),
            vec![ReshardAction::Evict(0)]
        );
    }

    #[test]
    fn threshold_never_evicts_the_last_replica() {
        let mut p = ThresholdReshardPolicy::new(4.0, 0.8, 1, 1);
        let share = [0.01, 0.33, 0.33, 0.33];
        let replicas = [1usize, 1, 1, 1];
        // Cold but single-homed: no action.
        assert!(p.decide(&obs(&share, &replicas, 4)).is_empty());
    }

    #[test]
    fn transfer_budget_caps_replications_hottest_first() {
        let mut p = ThresholdReshardPolicy::new(1.2, 0.1, 1, 1);
        let share = [0.45, 0.4, 0.05, 0.1];
        let replicas = [1usize, 1, 1, 1];
        // Both 0 and 1 are hot; budget 1 picks the hotter (0).
        assert_eq!(
            p.decide(&obs(&share, &replicas, 4)),
            vec![ReshardAction::Replicate(0)]
        );
        // Once 0's replica lands, its per-replica share cools below
        // the watermark and the budget goes to expert 1.
        let replicas = [2usize, 1, 1, 1];
        assert_eq!(
            p.decide(&obs(&share, &replicas, 4)),
            vec![ReshardAction::Replicate(1)]
        );
    }

    #[test]
    fn per_replica_share_decides_hotness() {
        let mut p = ThresholdReshardPolicy::new(2.0, 0.1, 1, 4);
        // Expert 0 is hot in aggregate but already has 3 replicas:
        // per-replica share 0.2 < 2.0/4 — no further replication.
        let share = [0.6, 0.2, 0.1, 0.1];
        let replicas = [3usize, 1, 1, 1];
        assert!(p.decide(&obs(&share, &replicas, 4)).is_empty());
    }

    #[test]
    fn empty_window_resets_streaks_and_holds() {
        let mut p = ThresholdReshardPolicy::new(2.0, 0.5, 2, 1);
        let share = [0.7, 0.1, 0.1, 0.1];
        let replicas = [1usize, 1, 1, 1];
        assert!(p.decide(&obs(&share, &replicas, 4)).is_empty());
        // A flushed window wipes the armed streak.
        let zero = [0.0; 4];
        assert!(p.decide(&obs(&zero, &replicas, 4)).is_empty());
        assert!(p.decide(&obs(&share, &replicas, 4)).is_empty());
        assert_eq!(
            p.decide(&obs(&share, &replicas, 4)),
            vec![ReshardAction::Replicate(0)]
        );
    }

    #[test]
    fn inert_policy_never_acts() {
        let mut p = InertPolicy;
        let share = [1.0, 0.0];
        let replicas = [1usize, 1];
        for _ in 0..8 {
            assert!(p.decide(&obs(&share, &replicas, 2)).is_empty());
        }
        assert_eq!(p.name(), "inert");
    }

    #[test]
    fn scripted_policy_replays_then_holds() {
        let mut p = ScriptedReshardPolicy::new(vec![
            vec![ReshardAction::Replicate(1)],
            vec![],
            vec![ReshardAction::Evict(1), ReshardAction::Migrate(0)],
        ]);
        let share = [0.5, 0.5];
        let replicas = [1usize, 1];
        assert_eq!(
            p.decide(&obs(&share, &replicas, 2)),
            vec![ReshardAction::Replicate(1)]
        );
        assert!(p.decide(&obs(&share, &replicas, 2)).is_empty());
        assert_eq!(
            p.decide(&obs(&share, &replicas, 2)),
            vec![ReshardAction::Evict(1), ReshardAction::Migrate(0)]
        );
        assert!(p.decide(&obs(&share, &replicas, 2)).is_empty());
    }

    #[test]
    fn kind_builds_the_matching_policy() {
        let kinds = [
            ReshardPolicyKind::Threshold {
                hot: 2.0,
                cold: 0.5,
                hysteresis: 1,
                transfer_budget: 1,
            },
            ReshardPolicyKind::Inert,
            ReshardPolicyKind::Scripted { script: vec![] },
        ];
        for kind in &kinds {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn inert_config_validates() {
        ReshardConfig::inert(SimDuration::from_millis(1)).validate();
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let mut c = ReshardConfig::inert(SimDuration::from_millis(1));
        c.interval = SimDuration::ZERO;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cold < hot")]
    fn inverted_watermarks_rejected() {
        let c = ReshardConfig {
            policy: ReshardPolicyKind::Threshold {
                hot: 0.5,
                cold: 2.0,
                hysteresis: 1,
                transfer_budget: 1,
            },
            interval: SimDuration::from_millis(1),
            window: 8,
            transfer_cost: 1.0,
        };
        c.validate();
    }
}
