//! Performance knobs for the serving simulator.
//!
//! Every knob defaults to the pre-optimization behaviour, and every
//! non-default setting is required to produce *bit-identical* outcomes
//! (the equivalence tests in `tests/properties.rs` enforce this): the
//! knobs change how fast the simulator runs, never what it computes.
//!
//! * [`PerfConfig::queue`] — the event-queue backend behind each
//!   replica's contended network and the cluster re-admission queue
//!   ([`lina_simcore::QueueKind`]): binary heap (default) or bucketed
//!   calendar queue.
//! * [`PerfConfig::plan_cache`] — memoize [`lina_runner::plan_batch`]
//!   across submissions keyed on (scheme, batch content, scheduler
//!   epoch); executors then memoize their pure per-plan pricing by
//!   `Arc` identity, so a hit skips both planning and solo pricing.
//! * [`PerfConfig::shard_threads`] — run independent replicas on
//!   separate threads when the scenario has no cross-replica coupling
//!   (round-robin balancing, no faults, no shedding, no timeout, no
//!   autoscaler), merging the per-replica timelines deterministically.

use lina_simcore::QueueKind;

/// Simulator performance knobs. [`Default`] is the reference
/// configuration: binary-heap event queues, no plan cache, one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerfConfig {
    /// Event-queue backend for the contended-network executors and the
    /// cluster re-admission queue.
    pub queue: QueueKind,
    /// Memoize execution plans across submissions.
    pub plan_cache: bool,
    /// Threads for shard-per-replica parallelism (1 = sequential; the
    /// sharded path only engages when the scenario is shardable, and
    /// falls back to the sequential loop otherwise).
    pub shard_threads: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            queue: QueueKind::BinaryHeap,
            plan_cache: false,
            shard_threads: 1,
        }
    }
}

impl PerfConfig {
    /// The reference configuration (all optimizations off).
    pub fn reference() -> Self {
        PerfConfig::default()
    }

    /// Everything on: calendar queue, plan cache, and as many shard
    /// threads as the machine offers.
    pub fn fast() -> Self {
        PerfConfig {
            queue: QueueKind::Calendar,
            plan_cache: true,
            shard_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on zero shard threads.
    pub fn validate(&self) {
        assert!(self.shard_threads > 0, "perf: shard_threads must be > 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_reference_behaviour() {
        let p = PerfConfig::default();
        assert_eq!(p.queue, QueueKind::BinaryHeap);
        assert!(!p.plan_cache);
        assert_eq!(p.shard_threads, 1);
        assert_eq!(p, PerfConfig::reference());
    }

    #[test]
    fn fast_turns_everything_on() {
        let p = PerfConfig::fast();
        assert_eq!(p.queue, QueueKind::Calendar);
        assert!(p.plan_cache);
        assert!(p.shard_threads >= 1);
    }

    #[test]
    #[should_panic(expected = "shard_threads")]
    fn zero_threads_rejected() {
        PerfConfig {
            shard_threads: 0,
            ..PerfConfig::default()
        }
        .validate();
    }
}
