//! Admission queue and dynamic batcher.
//!
//! Requests queue FIFO; a batch dispatches as soon as either
//! `max_batch_requests` requests are waiting or the oldest queued
//! request has waited `max_wait` (the standard size-or-timeout dynamic
//! batching rule). Dispatch additionally waits for the single model
//! server to free up, and a dispatch forming *after* the timeout (e.g.
//! because the server was busy) greedily takes every queued request up
//! to the size cap, so batches run full under backlog.

use lina_simcore::{SimDuration, SimTime};

/// Dynamic batching knobs.
#[derive(Clone, Debug)]
pub struct BatcherConfig {
    /// Dispatch immediately once this many requests are queued.
    pub max_batch_requests: usize,
    /// Dispatch once the oldest queued request has waited this long,
    /// even if the batch is not full.
    pub max_wait: SimDuration,
}

impl BatcherConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_requests` is zero.
    pub fn validate(&self) {
        assert!(
            self.max_batch_requests > 0,
            "batcher: max_batch_requests must be > 0"
        );
    }
}

/// One planned dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dispatch {
    /// The instant the batch leaves the queue.
    pub at: SimTime,
    /// How many queued requests it takes (FIFO prefix).
    pub count: usize,
}

/// The dispatch-decision core of the dynamic batcher. It is a pure
/// function of the (sorted) arrival trace, so the serving engine and
/// the property tests share one implementation.
#[derive(Clone, Debug)]
pub struct Batcher {
    config: BatcherConfig,
}

impl Batcher {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`BatcherConfig::validate`]).
    pub fn new(config: BatcherConfig) -> Self {
        config.validate();
        Batcher { config }
    }

    /// The configured knobs.
    pub fn config(&self) -> &BatcherConfig {
        &self.config
    }

    /// Plans the next dispatch: `arrivals` is the full sorted arrival
    /// trace, `next` the index of the first undispatched request, and
    /// `server_free` the instant the model server becomes available.
    /// Returns `None` once every request has been dispatched.
    ///
    /// The returned batch always contains at least one request, never
    /// more than `max_batch_requests`, and only requests that have
    /// arrived by the dispatch instant.
    pub fn next_dispatch(
        &self,
        arrivals: &[SimTime],
        next: usize,
        server_free: SimTime,
    ) -> Option<Dispatch> {
        if next >= arrivals.len() {
            return None;
        }
        let oldest = arrivals[next];
        // The batch cannot leave before the oldest request exists nor
        // while the server is busy.
        let earliest = oldest.max(server_free);
        // Timeout rule: the oldest request waits at most max_wait
        // (longer only if the server is still busy then).
        let deadline = (oldest + self.config.max_wait).max(server_free);
        // Size rule: if the batch fills before the deadline, go at the
        // filling arrival (or as soon as the server frees up).
        let fill = next + self.config.max_batch_requests - 1;
        let at = match arrivals.get(fill) {
            Some(&kth) if kth <= deadline => kth.max(earliest),
            _ => deadline,
        };
        let count = arrivals[next..]
            .iter()
            .take(self.config.max_batch_requests)
            .filter(|&&a| a <= at)
            .count();
        debug_assert!(count >= 1, "oldest arrival is always <= dispatch instant");
        Some(Dispatch { at, count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn batcher(max_batch: usize, wait_ms: u64) -> Batcher {
        Batcher::new(BatcherConfig {
            max_batch_requests: max_batch,
            max_wait: SimDuration::from_millis(wait_ms),
        })
    }

    #[test]
    fn dispatches_when_full() {
        let b = batcher(3, 100);
        let arrivals = vec![ms(1), ms(2), ms(3), ms(50)];
        let d = b
            .next_dispatch(&arrivals, 0, SimTime::ZERO)
            .expect("pending");
        assert_eq!(
            d,
            Dispatch {
                at: ms(3),
                count: 3
            }
        );
    }

    #[test]
    fn dispatches_partial_on_timeout() {
        let b = batcher(8, 10);
        let arrivals = vec![ms(1), ms(5), ms(100)];
        let d = b
            .next_dispatch(&arrivals, 0, SimTime::ZERO)
            .expect("pending");
        assert_eq!(
            d,
            Dispatch {
                at: ms(11),
                count: 2
            }
        );
    }

    #[test]
    fn busy_server_delays_and_fills_the_batch() {
        let b = batcher(4, 10);
        let arrivals = vec![ms(1), ms(5), ms(20), ms(30), ms(300)];
        // Server busy until t=40: the deadline passes while busy, and by
        // t=40 four requests are queued, so the batch leaves full.
        let d = b.next_dispatch(&arrivals, 0, ms(40)).expect("pending");
        assert_eq!(
            d,
            Dispatch {
                at: ms(40),
                count: 4
            }
        );
    }

    #[test]
    fn takes_at_most_the_size_cap() {
        let b = batcher(2, 1000);
        let arrivals = vec![ms(1), ms(1), ms(1), ms(1)];
        let d = b
            .next_dispatch(&arrivals, 0, SimTime::ZERO)
            .expect("pending");
        assert_eq!(d.count, 2);
        let d2 = b.next_dispatch(&arrivals, 2, d.at).expect("pending");
        assert_eq!(d2.count, 2);
    }

    #[test]
    fn exhausted_queue_returns_none() {
        let b = batcher(2, 1);
        assert!(b.next_dispatch(&[ms(1)], 1, SimTime::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "max_batch_requests")]
    fn zero_batch_size_panics() {
        batcher(0, 1);
    }
}
