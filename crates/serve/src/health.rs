//! Gray-failure detection: continuous per-replica *suspicion* scores
//! replacing the oracle health bit, plus the hedged-dispatch knobs.
//!
//! A gray-degraded replica ([`FaultKind::GrayDegrade`]) keeps its
//! health bit up — the control plane is never told — so bit-consuming
//! balancers would keep routing into it at full weight. The
//! [`HealthMonitor`] closes the loop from the *data plane* instead:
//! every completed batch feeds the ratio of the serving replica's
//! observed completion latency over the batch's *expected* latency
//! (the pristine plan priced at nominal replica speed) into a
//! phi-accrual-style estimator, and routing consumes the resulting
//! suspicion score in place of the raw bool. Normalizing by the
//! per-batch expectation — rather than by token count — keeps batch
//! size and composition out of the signal: a healthy replica sits at
//! ratio 1.0 whether it served two requests or twenty, so whatever
//! stretch a gray fault adds stands directly against the baseline.
//!
//! * Suspicion is continuous: `0.0` is a replica indistinguishable from
//!   the cluster baseline; `>= 1.0` excludes it from routing (the
//!   [`ReplicaSnapshot::routable`] gate), and values in between
//!   penalize the replica under the latency-aware balancer without
//!   excluding it.
//! * An excluded replica receives no traffic and therefore no fresh
//!   samples, which would deadlock it out of the pool forever.
//!   Suspicion decays deterministically with the time since the
//!   replica's last sample ([`HealthConfig::half_life`]), so an
//!   excluded replica periodically drops back under the threshold and
//!   earns a probe request that refreshes its estimate.
//! * A suspected replica re-enters through *probation*: until
//!   [`HealthConfig::probation`] consecutive clean samples accrue, its
//!   suspicion is floored at 0.5 — routable, but penalized — so a
//!   flapping link cannot oscillate the pool at full amplitude.
//! * [`DetectorKind::Oracle`] is the degeneracy mode: `observe` is a
//!   no-op and suspicion is identically zero, reproducing the
//!   historical oracle-health-bit behaviour bit for bit.
//!
//! The monitor is deterministic: suspicion is a pure function of the
//! observation sequence and the query instant, so the cluster loop's
//! bit-reproducibility survives the detector being armed.
//!
//! [`FaultKind::GrayDegrade`]: crate::FaultKind::GrayDegrade
//! [`ReplicaSnapshot::routable`]: crate::ReplicaSnapshot::routable

use lina_simcore::{SimDuration, SimTime};

/// Which gray-failure detector the cluster runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// The historical control-plane oracle: suspicion is identically
    /// zero, so routing sees exactly the raw health bit (crashes still
    /// exclude a replica — the oracle knows about those).
    Oracle,
    /// Phi-accrual-style detection over observed batch completion
    /// latencies versus each batch's expected latency: suspicion grows
    /// with how many baseline standard deviations the replica's
    /// smoothed actual-over-expected ratio sits above the cluster
    /// mean.
    PhiAccrual,
}

/// Gray-failure detector configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthConfig {
    /// The detector to run.
    pub detector: DetectorKind,
    /// Phi — baseline standard deviations above the cluster mean — at
    /// which suspicion reaches 1.0 and the replica stops being
    /// routable.
    pub suspect_threshold: f64,
    /// Cluster-wide completed-batch samples before the detector arms;
    /// until the baseline holds this many, suspicion is zero
    /// everywhere.
    pub warmup_samples: usize,
    /// EWMA smoothing factor for the per-replica service estimate
    /// (higher reacts faster, flaps harder).
    pub ewma_alpha: f64,
    /// Consecutive clean samples a suspected replica must serve before
    /// its probation floor lifts.
    pub probation: usize,
    /// Half-life of the deterministic time-decay applied to suspicion
    /// since the replica's last sample — the probe-window escape hatch
    /// that keeps an excluded replica from starving forever.
    pub half_life: SimDuration,
}

impl HealthConfig {
    /// The oracle degeneracy mode: suspicion identically zero, routing
    /// bit-identical to the historical health-bit behaviour.
    pub fn oracle() -> Self {
        HealthConfig {
            detector: DetectorKind::Oracle,
            suspect_threshold: 4.0,
            warmup_samples: 16,
            ewma_alpha: 0.2,
            probation: 4,
            half_life: SimDuration::from_millis(20),
        }
    }

    /// The phi-accrual detector with default thresholds.
    pub fn phi_accrual() -> Self {
        HealthConfig {
            detector: DetectorKind::PhiAccrual,
            ..HealthConfig::oracle()
        }
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive threshold or half-life, an EWMA factor
    /// outside `(0, 1]`, or a zero probation length.
    pub fn validate(&self) {
        assert!(
            self.suspect_threshold > 0.0 && self.suspect_threshold.is_finite(),
            "health: suspect threshold {} must be positive and finite",
            self.suspect_threshold
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "health: ewma alpha {} outside (0, 1]",
            self.ewma_alpha
        );
        assert!(self.probation > 0, "health: probation must be > 0");
        assert!(
            self.half_life > SimDuration::ZERO,
            "health: half-life must be positive"
        );
    }
}

/// Hedged-dispatch configuration: when an in-flight batch outlives a
/// quantile-derived delay, the cluster re-dispatches it speculatively
/// to the least-suspected alternate replica and the first completion
/// wins (the loser is cancelled). `None` in
/// [`ClusterConfig::hedging`](crate::ClusterConfig::hedging) never
/// hedges — the historical behaviour, bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Quantile of observed batch service times the hedge delay is
    /// derived from (e.g. 0.95).
    pub quantile: f64,
    /// The hedge fires after `multiplier ×` the quantile service time.
    pub multiplier: f64,
    /// Completed batches observed before hedging arms; until then no
    /// batch is ever hedged (there is no delay estimate to trust).
    pub min_samples: usize,
}

impl HedgeConfig {
    /// Hedge at 2× the observed p95 service time, after 16 samples.
    pub fn p95x2() -> Self {
        HedgeConfig {
            quantile: 0.95,
            multiplier: 2.0,
            min_samples: 16,
        }
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics on a quantile outside `(0, 1)`, a multiplier below 1, or
    /// a zero sample floor.
    pub fn validate(&self) {
        assert!(
            self.quantile > 0.0 && self.quantile < 1.0,
            "hedge: quantile {} outside (0, 1)",
            self.quantile
        );
        assert!(
            self.multiplier >= 1.0 && self.multiplier.is_finite(),
            "hedge: multiplier {} must be >= 1",
            self.multiplier
        );
        assert!(self.min_samples > 0, "hedge: min_samples must be > 0");
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

/// One replica's detector state.
#[derive(Clone, Debug, Default)]
struct ReplicaHealth {
    /// Smoothed actual-over-expected service ratio; `None` before the
    /// first sample.
    ewma: Option<f64>,
    /// Instant of the most recent sample (drives the time decay).
    last_sample: Option<SimTime>,
    /// Suspicion crossed 1.0 and the probation streak has not yet
    /// cleared it.
    suspected: bool,
    /// Consecutive clean samples while suspected.
    good_streak: usize,
}

/// The per-replica gray-failure detector: feed it every completed
/// batch's service observation, query a suspicion score at routing
/// instants. See the [module docs](self) for the model.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    /// Cluster-wide actual-over-expected ratio baseline. Samples whose
    /// own z-score already exceeds the suspect threshold are kept out
    /// (a gray replica's service ratios would poison the very mean and
    /// variance the detection compares against).
    baseline: Welford,
    replicas: Vec<ReplicaHealth>,
}

impl HealthMonitor {
    /// A monitor over `n` replicas with no observations yet.
    pub fn new(config: HealthConfig, n: usize) -> Self {
        HealthMonitor {
            config,
            baseline: Welford::default(),
            replicas: vec![ReplicaHealth::default(); n],
        }
    }

    /// Grows the tracked pool to `n` replicas (elastic scale-up); the
    /// new replicas start with blank state.
    pub fn ensure(&mut self, n: usize) {
        if self.replicas.len() < n {
            self.replicas.resize(n, ReplicaHealth::default());
        }
    }

    /// Raw phi (baseline standard deviations above the mean) of a
    /// replica's current estimate; zero while unarmed or unwarmed. The
    /// standard deviation is floored at 5% of the mean: under solo
    /// pricing a healthy replica's actual-over-expected ratio is
    /// *exactly* 1.0 every sample, so the raw baseline variance
    /// degenerates to zero and an unfloored phi would explode on the
    /// first speck of noise.
    fn phi(&self, replica: usize) -> f64 {
        if self.config.detector == DetectorKind::Oracle
            || self.baseline.count < self.config.warmup_samples as u64
        {
            return 0.0;
        }
        let Some(ewma) = self.replicas[replica].ewma else {
            return 0.0;
        };
        let std = self
            .baseline
            .std()
            .max(0.05 * self.baseline.mean)
            .max(f64::MIN_POSITIVE);
        ((ewma - self.baseline.mean) / std).max(0.0)
    }

    /// Feeds one completed batch's observation: `service` actually
    /// spent on `replica` against the batch's `expected` nominal
    /// latency, completing at `now`. A no-op under the oracle
    /// detector.
    pub fn observe(
        &mut self,
        replica: usize,
        expected: SimDuration,
        service: SimDuration,
        now: SimTime,
    ) {
        if self.config.detector == DetectorKind::Oracle {
            return;
        }
        let x = service.as_secs_f64() / expected.as_secs_f64().max(f64::MIN_POSITIVE);
        let alpha = self.config.ewma_alpha;
        let rh = &mut self.replicas[replica];
        rh.ewma = Some(match rh.ewma {
            Some(prev) => alpha * x + (1.0 - alpha) * prev,
            None => x,
        });
        rh.last_sample = Some(now);
        // Anomalous samples stay out of the baseline: admitting a gray
        // replica's service ratios would drag the mean up and inflate
        // the variance in lockstep with the replica's own EWMA, and
        // phi would chase the threshold without ever crossing it. The
        // gate is per-sample (the sample's own z-score against the
        // current baseline), not the replica's suspected flag — the
        // flag lags by design.
        let armed = self.baseline.count >= self.config.warmup_samples as u64;
        let clean = !armed || {
            let std = self
                .baseline
                .std()
                .max(0.05 * self.baseline.mean)
                .max(f64::MIN_POSITIVE);
            (x - self.baseline.mean) / std < self.config.suspect_threshold
        };
        if clean {
            self.baseline.push(x);
        }
        let phi = self.phi(replica);
        let norm = phi / self.config.suspect_threshold;
        let rh = &mut self.replicas[replica];
        if norm >= 1.0 {
            rh.suspected = true;
            rh.good_streak = 0;
        } else if rh.suspected {
            if norm < 0.5 {
                rh.good_streak += 1;
                if rh.good_streak >= self.config.probation {
                    rh.suspected = false;
                    rh.good_streak = 0;
                }
            } else {
                rh.good_streak = 0;
            }
        }
    }

    /// The replica's suspicion at `now`: `0.0` is baseline-healthy,
    /// `>= 1.0` should be excluded from routing. Deterministic in the
    /// observation history and `now`.
    pub fn suspicion(&self, replica: usize, now: SimTime) -> f64 {
        if self.config.detector == DetectorKind::Oracle {
            return 0.0;
        }
        let rh = &self.replicas[replica];
        let mut score = self.phi(replica) / self.config.suspect_threshold;
        // Decay since the last sample: an excluded replica earns a
        // probe once its score halves under the threshold.
        if let Some(last) = rh.last_sample {
            let elapsed = now.saturating_since(last).as_secs_f64();
            score *=
                (-elapsed / self.config.half_life.as_secs_f64() * std::f64::consts::LN_2).exp();
        }
        // Probation: a suspected replica stays penalized (but
        // routable) until its clean streak clears it.
        if rh.suspected {
            score = score.max(0.5);
        }
        score
    }

    /// True while the replica is in the suspected/probation regime.
    pub fn suspected(&self, replica: usize) -> bool {
        self.replicas[replica].suspected
    }

    /// Forgets a replica's history (crash or recovery: the hardware
    /// behind the estimate is gone).
    pub fn reset(&mut self, replica: usize) {
        self.replicas[replica] = ReplicaHealth::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    /// Nominal expected service of the synthetic test batches.
    const EXPECTED: SimDuration = SimDuration::from_micros(640);

    /// Feeds `monitor` one healthy (ratio 1.0) round-robin sample per
    /// replica.
    fn feed_healthy(monitor: &mut HealthMonitor, replicas: usize, round: u64) {
        for r in 0..replicas {
            monitor.observe(r, EXPECTED, EXPECTED, ms(round * 2));
        }
    }

    #[test]
    fn oracle_suspicion_is_identically_zero() {
        let mut m = HealthMonitor::new(HealthConfig::oracle(), 2);
        for round in 0..32 {
            feed_healthy(&mut m, 2, round);
            // Even a grossly slow sample moves nothing.
            m.observe(1, EXPECTED, SimDuration::from_millis(64), ms(round * 2 + 1));
        }
        assert_eq!(m.suspicion(0, ms(100)), 0.0);
        assert_eq!(m.suspicion(1, ms(100)), 0.0);
        assert!(!m.suspected(1));
    }

    #[test]
    fn warmup_gates_detection() {
        let mut m = HealthMonitor::new(HealthConfig::phi_accrual(), 2);
        // A handful of wildly slow samples before the baseline holds
        // `warmup_samples` must not suspect anything.
        for i in 0..4 {
            m.observe(1, EXPECTED, SimDuration::from_millis(64), ms(i));
        }
        assert_eq!(m.suspicion(1, ms(4)), 0.0);
    }

    #[test]
    fn slow_replica_crosses_the_threshold_and_peers_stay_clear() {
        let mut m = HealthMonitor::new(HealthConfig::phi_accrual(), 3);
        for round in 0..16 {
            feed_healthy(&mut m, 3, round);
        }
        // Replica 2 turns gray: 4x the baseline per-token service.
        for i in 0..8 {
            m.observe(2, EXPECTED, SimDuration::from_micros(2560), ms(40 + i));
        }
        let now = ms(48);
        assert!(
            m.suspicion(2, now) >= 1.0,
            "gray replica suspicion {} must exclude it",
            m.suspicion(2, now)
        );
        assert!(m.suspected(2));
        assert!(m.suspicion(0, now) < 0.5, "healthy peers stay routable");
        assert!(m.suspicion(1, now) < 0.5);
    }

    #[test]
    fn decay_reopens_a_probe_window() {
        let mut m = HealthMonitor::new(HealthConfig::phi_accrual(), 2);
        for round in 0..16 {
            feed_healthy(&mut m, 2, round);
        }
        for i in 0..8 {
            m.observe(1, EXPECTED, SimDuration::from_micros(2560), ms(40 + i));
        }
        assert!(m.suspicion(1, ms(48)) >= 1.0);
        // Long after its last sample the score has decayed under the
        // exclusion threshold (probation floors it at 0.5, routable).
        let later = ms(48) + SimDuration::from_millis(500);
        let decayed = m.suspicion(1, later);
        assert!(
            (0.5..1.0).contains(&decayed),
            "decayed suspicion {decayed} must re-admit the replica as penalized"
        );
    }

    #[test]
    fn probation_clears_after_a_clean_streak() {
        let config = HealthConfig::phi_accrual();
        let probation = config.probation;
        let mut m = HealthMonitor::new(config, 2);
        for round in 0..16 {
            feed_healthy(&mut m, 2, round);
        }
        for i in 0..8 {
            m.observe(1, EXPECTED, SimDuration::from_micros(2560), ms(40 + i));
        }
        assert!(m.suspected(1));
        // Clean samples: the EWMA drifts back down; the suspected flag
        // holds (with its 0.5 floor) until the streak clears it.
        let mut cleared_at = None;
        for i in 0..64 {
            m.observe(1, EXPECTED, EXPECTED, ms(100 + i));
            if !m.suspected(1) {
                cleared_at = Some(i);
                break;
            }
        }
        let cleared_at = cleared_at.expect("a clean streak must clear probation");
        assert!(
            cleared_at + 1 >= probation as u64,
            "probation cleared after only {cleared_at} samples"
        );
        assert!(
            m.suspicion(1, ms(200)) < 0.5,
            "cleared replica is unfloored"
        );
    }

    #[test]
    fn reset_forgets_the_history() {
        let mut m = HealthMonitor::new(HealthConfig::phi_accrual(), 2);
        for round in 0..16 {
            feed_healthy(&mut m, 2, round);
        }
        for i in 0..8 {
            m.observe(1, EXPECTED, SimDuration::from_micros(2560), ms(40 + i));
        }
        assert!(m.suspicion(1, ms(48)) >= 1.0);
        m.reset(1);
        assert_eq!(m.suspicion(1, ms(48)), 0.0, "fresh hardware, fresh slate");
        assert!(!m.suspected(1));
    }

    #[test]
    fn ensure_grows_with_blank_state() {
        let mut m = HealthMonitor::new(HealthConfig::phi_accrual(), 1);
        for i in 0..32 {
            m.observe(0, EXPECTED, EXPECTED, ms(i));
        }
        m.ensure(3);
        assert_eq!(m.suspicion(2, ms(32)), 0.0);
        m.ensure(2); // never shrinks
        assert_eq!(m.suspicion(2, ms(32)), 0.0);
    }

    #[test]
    #[should_panic(expected = "suspect threshold")]
    fn non_positive_threshold_rejected() {
        let mut c = HealthConfig::phi_accrual();
        c.suspect_threshold = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ewma alpha")]
    fn out_of_range_alpha_rejected() {
        let mut c = HealthConfig::phi_accrual();
        c.ewma_alpha = 1.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_hedge_quantile_rejected() {
        let mut c = HedgeConfig::p95x2();
        c.quantile = 1.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn sub_unity_hedge_multiplier_rejected() {
        let mut c = HedgeConfig::p95x2();
        c.multiplier = 0.5;
        c.validate();
    }
}
