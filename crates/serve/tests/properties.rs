//! Randomized property tests of the serving subsystem, swept over
//! deterministically seeded configurations: determinism, conservation
//! through the batcher, latency accounting, and stability below
//! saturation.

use lina_baselines::InferScheme;
use lina_model::{CostModel, DeviceSpec, ExpertPlacement, LayeredPlacement, MoeModelConfig};
use lina_netsim::{ClusterSpec, Topology};
use lina_serve::{
    serve, serve_cluster, ArrivalProcess, AutoscaleConfig, AutoscalePolicyKind, BalancerKind,
    Batcher, BatcherConfig, ClusterConfig, DegradationPolicy, EstimatorSharing, FaultPlan,
    FaultRateConfig, FaultSchedule, HealthConfig, HedgeConfig, NetworkMode, PerfConfig, QueueKind,
    ReshardAction, ReshardConfig, ReshardPolicyKind, ScaleDecision, ServeConfig, ServeEngine,
};
use lina_simcore::{Rng, SimDuration, SimTime};
use lina_workload::WorkloadSpec;

/// How many randomized rounds a sweep runs. The nightly soak job
/// raises this through `LINA_PROP_ROUNDS`; the default keeps the
/// ordinary test tier fast.
fn rounds(default: usize) -> usize {
    std::env::var("LINA_PROP_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn world() -> (CostModel, Topology, WorkloadSpec) {
    let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
    let topo = Topology::new(ClusterSpec::with_total_gpus(8));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model);
    let spec = WorkloadSpec::enwik8(8, 6);
    (cost, topo, spec)
}

/// A randomized but valid config drawn from a meta-rng.
fn arb_config(meta: &mut Rng, scheme: InferScheme) -> ServeConfig {
    ServeConfig {
        scheme,
        top_k: 1,
        path_length: 1 + meta.index(3),
        max_experts_per_device: 1 + meta.index(4),
        arrival: if meta.bernoulli(0.5) {
            ArrivalProcess::Poisson {
                rate: meta.uniform(50.0, 2000.0),
            }
        } else {
            let rate = meta.uniform(50.0, 2000.0);
            ArrivalProcess::Mmpp {
                calm_rate: rate * 0.5,
                burst_rate: rate * 2.0,
                mean_calm: meta.uniform(0.05, 0.5),
                mean_burst: meta.uniform(0.02, 0.2),
            }
        },
        batcher: BatcherConfig {
            max_batch_requests: 1 + meta.index(8),
            max_wait: SimDuration::from_micros(meta.below(5_000) + 100),
        },
        slo: SimDuration::from_millis(50),
        n_requests: 24 + meta.index(40),
        tokens_per_request: 16 + meta.index(100),
        token_spread: if meta.bernoulli(0.5) {
            meta.uniform(0.0, 0.9)
        } else {
            0.0
        },
        drift_period: meta.bernoulli(0.5).then(|| 8 + meta.index(24)),
        reestimate_every: meta.bernoulli(0.5).then(|| 2 + meta.index(6)),
        reestimate_window: 4 + meta.index(8),
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: meta.next_u64(),
        perf: Default::default(),
    }
}

/// Same seed, same config: bit-identical request trace, per-request
/// records, and summary.
#[test]
fn same_seed_is_bit_identical() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x5E1D);
    for scheme in [InferScheme::Baseline, InferScheme::Lina] {
        for _ in 0..3 {
            let config = arb_config(&mut meta, scheme);
            let engine_a = ServeEngine::new(&cost, &topo, &spec, config.clone());
            let engine_b = ServeEngine::new(&cost, &topo, &spec, config.clone());
            let req_a = engine_a.generate_requests();
            let req_b = engine_b.generate_requests();
            assert_eq!(req_a.len(), req_b.len());
            for (a, b) in req_a.iter().zip(&req_b) {
                assert_eq!(a.arrival, b.arrival);
                assert_eq!(a.tokens, b.tokens);
            }
            let out_a = engine_a.run();
            let out_b = engine_b.run();
            assert_eq!(out_a.tracker.records(), out_b.tracker.records());
            assert_eq!(out_a.batches, out_b.batches);
            assert_eq!(out_a.reestimations, out_b.reestimations);
            assert_eq!(out_a.report(), out_b.report());
        }
    }
}

/// The batcher conserves requests and tokens: every request is served
/// exactly once, total served tokens equal total offered tokens, and
/// no batch exceeds the size cap.
#[test]
fn batcher_conserves_requests_and_tokens() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xC0);
    for _ in 0..6 {
        let config = arb_config(&mut meta, InferScheme::Baseline);
        let cap = config.batcher.max_batch_requests;
        let n = config.n_requests;
        let offered: usize = ServeEngine::new(&cost, &topo, &spec, config.clone())
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .sum();
        let out = serve(&cost, &topo, &spec, config);
        let records = out.tracker.records();
        let mut ids: Vec<usize> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "each request served exactly once"
        );
        let total_tokens: usize = records.iter().map(|r| r.tokens).sum();
        assert_eq!(total_tokens, offered, "token conservation");
        let mut batch_sizes = vec![0usize; out.batches];
        for r in records {
            batch_sizes[r.batch] += 1;
        }
        for (b, &size) in batch_sizes.iter().enumerate() {
            assert!(
                size >= 1 && size <= cap,
                "batch {b} took {size} requests (cap {cap})"
            );
        }
    }
}

/// Latency accounting: every request's latency is at least its own
/// service time, dispatch never precedes arrival, and batches execute
/// one at a time.
#[test]
fn latency_dominates_service_time() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x1A7);
    for scheme in [InferScheme::Baseline, InferScheme::Lina] {
        let config = arb_config(&mut meta, scheme);
        let out = serve(&cost, &topo, &spec, config);
        for r in out.tracker.records() {
            assert!(r.dispatched >= r.arrival);
            assert_eq!(r.completed, r.dispatched + r.service);
            assert!(
                r.latency() >= r.service,
                "request {} latency < service",
                r.id
            );
            assert_eq!(r.latency(), r.queue_delay() + r.service);
        }
        let mut spans: Vec<_> = out
            .tracker
            .records()
            .iter()
            .map(|r| (r.dispatched, r.completed))
            .collect();
        spans.sort();
        spans.dedup();
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "batches overlap on the single server");
        }
    }
}

/// The cluster conserves requests and tokens across replicas for every
/// balancer and estimator-sharing mode, and stays bit-deterministic.
#[test]
fn cluster_conserves_and_is_deterministic_across_policies() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xC1);
    for balancer in [
        BalancerKind::RoundRobin,
        BalancerKind::JoinShortestQueue,
        BalancerKind::LeastExpectedLatency,
    ] {
        for sharing in [EstimatorSharing::Shared, EstimatorSharing::PerReplica] {
            let config = ClusterConfig {
                serve: arb_config(&mut meta, InferScheme::Lina),
                replicas: 2 + meta.index(3),
                balancer,
                sharing,
                faults: FaultPlan::none(),
                autoscale: None,
                resharding: None,
                placement: None,
                locality: false,
                health: HealthConfig::oracle(),
                hedging: None,
            };
            let n = config.serve.n_requests;
            let offered: usize = ServeEngine::new(&cost, &topo, &spec, config.serve.clone())
                .generate_requests()
                .iter()
                .map(|r| r.tokens.len())
                .sum();
            let out = serve_cluster(&cost, &topo, &spec, config.clone());
            let mut ids: Vec<usize> = out.tracker.records().iter().map(|r| r.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..n).collect::<Vec<_>>(), "{balancer:?}/{sharing:?}");
            let total_tokens: usize = out.tracker.records().iter().map(|r| r.tokens).sum();
            assert_eq!(total_tokens, offered);
            assert_eq!(out.requests_per_replica.iter().sum::<usize>(), n);
            let again = serve_cluster(&cost, &topo, &spec, config);
            assert_eq!(out.tracker.records(), again.tracker.records());
        }
    }
}

/// An adversarial sorted arrival trace: alternating bursts (many
/// requests at the exact same instant), exact ties with the batching
/// deadline, long idle gaps, and jittery trickles.
fn adversarial_arrivals(meta: &mut Rng, n: usize, max_wait: SimDuration) -> Vec<SimTime> {
    let mut arrivals = Vec::with_capacity(n);
    let mut t = SimTime::ZERO;
    while arrivals.len() < n {
        match meta.index(4) {
            // Burst: a pile of identical timestamps.
            0 => {
                let k = 1 + meta.index(10);
                for _ in 0..k {
                    arrivals.push(t);
                }
            }
            // Tie with the deadline of the oldest queued request.
            1 => {
                t += max_wait;
                arrivals.push(t);
            }
            // Long gap: far past any pending deadline.
            2 => {
                t += SimDuration::from_millis(meta.below(50) + 20);
                arrivals.push(t);
            }
            // Trickle: sub-timeout jitter.
            _ => {
                t += SimDuration::from_micros(meta.below(900) + 1);
                arrivals.push(t);
            }
        }
    }
    arrivals.truncate(n);
    arrivals
}

/// `Batcher::next_dispatch` invariants over adversarial traces — the
/// contract both the single-server loop and the K-server cluster loop
/// lean on: every request dispatched exactly once as a FIFO prefix,
/// batches never exceed the cap, a dispatch never precedes its oldest
/// member's arrival or the server freeing up, and every member has
/// arrived by the dispatch instant.
#[test]
fn batcher_dispatch_invariants_under_adversarial_traces() {
    let mut meta = Rng::new(0xBA7C4);
    for round in 0..rounds(40) {
        let cap = 1 + meta.index(8);
        let max_wait = SimDuration::from_micros(meta.below(4_000) + 50);
        let batcher = Batcher::new(BatcherConfig {
            max_batch_requests: cap,
            max_wait,
        });
        let n = 20 + meta.index(120);
        let arrivals = adversarial_arrivals(&mut meta, n, max_wait);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "trace sorted");

        // Walk the dispatch loop with a busy server: each batch holds
        // the server for a pseudo-random service time, sometimes long
        // enough that several deadlines expire while it runs.
        let mut server_free = SimTime::ZERO;
        let mut next = 0usize;
        let mut dispatches = Vec::new();
        while let Some(d) = batcher.next_dispatch(&arrivals, next, server_free) {
            assert!(d.count >= 1, "round {round}: empty batch");
            assert!(
                d.count <= cap,
                "round {round}: batch of {} exceeds cap {cap}",
                d.count
            );
            assert!(
                d.at >= arrivals[next].max(server_free),
                "round {round}: dispatch at {} before max(arrival {}, server_free {})",
                d.at,
                arrivals[next],
                server_free
            );
            // Every member (FIFO prefix) has arrived by the dispatch.
            assert!(
                arrivals[next + d.count - 1] <= d.at,
                "round {round}: member arrives after dispatch"
            );
            // A partial batch means nothing else was available: the
            // next undispatched request arrives strictly after `at`.
            if d.count < cap {
                if let Some(&later) = arrivals.get(next + d.count) {
                    assert!(
                        later > d.at,
                        "round {round}: partial batch left an arrived request queued"
                    );
                }
            }
            dispatches.push((next, d));
            next += d.count;
            server_free = d.at + SimDuration::from_micros(meta.below(3_000) + 10);
        }
        // Exactly once, in FIFO prefix order, covering the trace.
        assert_eq!(next, n, "round {round}: {next} of {n} requests dispatched");
        let mut expected_start = 0usize;
        let mut prev_at = SimTime::ZERO;
        for &(start, d) in &dispatches {
            assert_eq!(start, expected_start, "round {round}: non-FIFO batch");
            expected_start += d.count;
            assert!(
                d.at >= prev_at,
                "round {round}: dispatch instants must be nondecreasing"
            );
            prev_at = d.at;
        }
    }
}

/// Below saturation the queue drains: arrivals at a small fraction of
/// capacity keep queueing delay near the batching timeout, and backlog
/// stays bounded; well past saturation the delay blows up.
#[test]
fn queue_drains_below_capacity_and_grows_past_it() {
    let (cost, topo, spec) = world();
    let base = ServeConfig {
        scheme: InferScheme::Baseline,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Poisson { rate: 1.0 },
        batcher: BatcherConfig {
            max_batch_requests: 4,
            max_wait: SimDuration::from_millis(1),
        },
        slo: SimDuration::from_millis(50),
        n_requests: 96,
        tokens_per_request: 64,
        token_spread: 0.0,
        drift_period: None,
        reestimate_every: None,
        reestimate_window: 1,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0xD12A1,
        perf: Default::default(),
    };
    let capacity = ServeEngine::new(&cost, &topo, &spec, base.clone()).capacity();
    let run_at = |frac: f64| {
        let mut config = base.clone();
        config.arrival = ArrivalProcess::Poisson {
            rate: frac * capacity,
        };
        serve(&cost, &topo, &spec, config).report()
    };
    let calm = run_at(0.25);
    let swamped = run_at(4.0);
    // Underloaded: delays sit near the batching timeout, not the
    // queue; backlog is a handful of requests at worst.
    assert!(
        calm.mean_queue_delay <= base.batcher.max_wait * 4,
        "underloaded queue delay {} should be near the {} timeout",
        calm.mean_queue_delay,
        base.batcher.max_wait
    );
    assert!(calm.max_queue_depth <= 3 * base.batcher.max_batch_requests);
    // Overloaded: the open loop keeps arriving, so delay and backlog
    // grow far beyond the underloaded run.
    assert!(swamped.mean_queue_delay > calm.mean_queue_delay * 10);
    assert!(swamped.max_queue_depth > calm.max_queue_depth);
    assert!(
        swamped.p99 > calm.p99 * 2,
        "overload p99 {} vs calm {}",
        swamped.p99,
        calm.p99
    );
    assert!(swamped.attainment <= calm.attainment);
}

/// A randomized degradation policy (always a retry family so faults
/// exercise the re-admission machinery).
fn arb_policy(meta: &mut Rng) -> DegradationPolicy {
    let timeout = meta
        .bernoulli(0.5)
        .then(|| SimDuration::from_millis(meta.below(80) + 20));
    let mut policy = if meta.bernoulli(0.5) {
        DegradationPolicy::retry_failover(timeout)
    } else {
        DegradationPolicy::retry_failover_shed(timeout)
    };
    policy.retry_budget = meta.index(5) as u32;
    policy
}

/// Under arbitrary generated fault schedules and every degradation
/// policy, every admitted request reaches exactly one terminal outcome
/// (completed, dropped, or timed out), tokens are conserved across
/// outcomes, and the whole run is bit-deterministic.
#[test]
fn faults_conserve_every_request_and_stay_deterministic() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xFA1175);
    for round in 0..rounds(6) {
        let serve_config = arb_config(&mut meta, InferScheme::Lina);
        let replicas = 2 + meta.index(3);
        let rates = FaultRateConfig {
            crash_rate: meta.uniform(5.0, 40.0),
            mean_recovery: SimDuration::from_millis(meta.below(40) + 5),
            device_loss_rate: meta.uniform(0.0, 5.0),
            degrade_rate: meta.uniform(0.0, 5.0),
            degrade_scale: meta.uniform(0.2, 1.0),
            mean_degrade: SimDuration::from_millis(meta.below(30) + 5),
            straggler_rate: meta.uniform(0.0, 5.0),
            straggler_factor: meta.uniform(1.0, 4.0),
            mean_straggle: SimDuration::from_millis(meta.below(30) + 5),
            gray_rate: 0.0,
            gray_compute: 1.0,
            gray_nic: 1.0,
            mean_gray: SimDuration::from_millis(10),
            flap_rate: 0.0,
            flap_nic: 1.0,
            mean_flap: SimDuration::from_millis(2),
        };
        let schedule = FaultSchedule::generate(
            &rates,
            replicas,
            SimDuration::from_secs_f64(2.0),
            meta.next_u64(),
        );
        let policy = if meta.bernoulli(0.25) {
            DegradationPolicy::fail_fast()
        } else {
            arb_policy(&mut meta)
        };
        let config = ClusterConfig {
            serve: serve_config,
            replicas,
            balancer: BalancerKind::JoinShortestQueue,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan { schedule, policy },
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let n = config.serve.n_requests;
        let offered_tokens: usize = ServeEngine::new(&cost, &topo, &spec, config.serve.clone())
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .sum();
        let out = serve_cluster(&cost, &topo, &spec, config.clone());

        // Exactly one terminal outcome per request.
        let mut ids: Vec<usize> = out
            .tracker
            .records()
            .iter()
            .map(|r| r.id)
            .chain(out.tracker.failures().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "round {round}: every request exactly one terminal outcome"
        );
        // Token conservation across outcomes.
        let terminal_tokens: usize = out
            .tracker
            .records()
            .iter()
            .map(|r| r.tokens)
            .chain(out.tracker.failures().iter().map(|f| f.tokens))
            .sum();
        assert_eq!(terminal_tokens, offered_tokens, "round {round}: tokens");
        // Outcome counts add up in the report.
        let report = out.report();
        assert_eq!(report.offered, n);
        assert_eq!(report.requests + report.dropped + report.timed_out, n);
        assert!(report.availability.is_finite() && report.goodput.is_finite());

        // Bit-determinism under the same fault plan.
        let again = serve_cluster(&cost, &topo, &spec, config);
        assert_eq!(out.tracker.records(), again.tracker.records());
        assert_eq!(out.tracker.failures(), again.tracker.failures());
        assert_eq!(out.recovery_times, again.recovery_times);
        assert_eq!(report, again.report(), "round {round}: determinism");
    }
}

/// Degeneracy: an *armed* retry policy over an *empty* schedule is
/// inert — the healthy-path timeline, records, depth samples, and
/// report reproduce [`FaultPlan::none`] bit for bit at zero tolerance.
#[test]
fn empty_fault_schedule_is_bit_identical_to_healthy_path() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xDE6E);
    for sharing in [EstimatorSharing::Shared, EstimatorSharing::PerReplica] {
        let config = ClusterConfig {
            serve: arb_config(&mut meta, InferScheme::Lina),
            replicas: 2 + meta.index(3),
            balancer: BalancerKind::JoinShortestQueue,
            sharing,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let healthy = serve_cluster(&cost, &topo, &spec, config.clone());
        let mut armed = config.clone();
        armed.faults = FaultPlan {
            schedule: FaultSchedule::none(),
            // No timeout: with nothing to displace or expire, the
            // retry machinery must never perturb the event order.
            policy: DegradationPolicy::retry_failover(None),
        };
        let with_policy = serve_cluster(&cost, &topo, &spec, armed);
        assert_eq!(healthy.tracker.records(), with_policy.tracker.records());
        assert_eq!(
            healthy.tracker.depth_timeline(),
            with_policy.tracker.depth_timeline()
        );
        assert!(with_policy.tracker.failures().is_empty());
        assert_eq!(healthy.report(), with_policy.report());
        assert_eq!(
            healthy.requests_per_replica,
            with_policy.requests_per_replica
        );
        assert_eq!(healthy.batches, with_policy.batches);
        assert_eq!(healthy.reestimations, with_policy.reestimations);
    }
}

/// Conservation and bit-determinism survive *arbitrary* autoscale
/// decision sequences: a scripted policy replays meta-rng-generated
/// scale-ups and scale-downs at a random control cadence, and every
/// request still reaches exactly one terminal outcome with all tokens
/// accounted for, twice identically.
#[test]
fn arbitrary_autoscale_decisions_conserve_and_stay_deterministic() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xE1A5);
    for round in 0..rounds(6) {
        let serve_config = arb_config(&mut meta, InferScheme::Lina);
        let replicas = 1 + meta.index(3);
        let max_replicas = replicas + 1 + meta.index(4);
        let script: Vec<ScaleDecision> = (0..12 + meta.index(20))
            .map(|_| match meta.index(4) {
                0 => ScaleDecision::Hold,
                1 => ScaleDecision::ScaleUp(1 + meta.index(2)),
                2 => ScaleDecision::ScaleDown(1 + meta.index(2)),
                _ => ScaleDecision::ScaleUp(1),
            })
            .collect();
        let config = ClusterConfig {
            serve: serve_config,
            replicas,
            balancer: match meta.index(3) {
                0 => BalancerKind::RoundRobin,
                1 => BalancerKind::JoinShortestQueue,
                _ => BalancerKind::LeastExpectedLatency,
            },
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan::none(),
            autoscale: Some(AutoscaleConfig {
                policy: AutoscalePolicyKind::Scripted { script },
                interval: SimDuration::from_micros(meta.below(3_000) + 200),
                cooldown: SimDuration::ZERO,
                min_replicas: 1,
                max_replicas,
            }),
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let n = config.serve.n_requests;
        let offered_tokens: usize = ServeEngine::new(&cost, &topo, &spec, config.serve.clone())
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .sum();
        let out = serve_cluster(&cost, &topo, &spec, config.clone());

        let mut ids: Vec<usize> = out
            .tracker
            .records()
            .iter()
            .map(|r| r.id)
            .chain(out.tracker.failures().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "round {round}: every request exactly one terminal outcome under elasticity"
        );
        let terminal_tokens: usize = out
            .tracker
            .records()
            .iter()
            .map(|r| r.tokens)
            .chain(out.tracker.failures().iter().map(|f| f.tokens))
            .sum();
        assert_eq!(terminal_tokens, offered_tokens, "round {round}: tokens");
        assert!(
            out.peak_replicas <= max_replicas,
            "round {round}: the actuator never exceeds max_replicas"
        );
        assert!(out.replica_seconds > 0.0);
        assert_eq!(
            out.requests_per_replica.len(),
            replicas + out.scale_ups,
            "round {round}: one routing slot per commissioned replica"
        );

        let again = serve_cluster(&cost, &topo, &spec, config);
        assert_eq!(out.tracker.records(), again.tracker.records());
        assert_eq!(out.tracker.failures(), again.tracker.failures());
        assert_eq!(out.scale_ups, again.scale_ups);
        assert_eq!(out.scale_downs, again.scale_downs);
        assert_eq!(out.replica_seconds, again.replica_seconds);
        assert_eq!(out.report(), again.report(), "round {round}: determinism");
    }
}

/// Degeneracy: an *armed* autoscaler whose policy can never trigger
/// (infinite up-threshold, negative down-threshold) reproduces the
/// fixed-replica engine bit for bit — control ticks observe but must
/// not perturb the event order, the records, or the pool.
#[test]
fn inert_autoscaler_is_bit_identical_to_fixed_cluster() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x1E27);
    for _ in 0..4 {
        let replicas = 1 + meta.index(4);
        let config = ClusterConfig {
            serve: arb_config(&mut meta, InferScheme::Lina),
            replicas,
            balancer: BalancerKind::JoinShortestQueue,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let fixed = serve_cluster(&cost, &topo, &spec, config.clone());
        let mut armed = config.clone();
        armed.autoscale = Some(AutoscaleConfig::inert(
            replicas,
            SimDuration::from_micros(meta.below(2_000) + 100),
        ));
        let elastic = serve_cluster(&cost, &topo, &spec, armed);
        assert_eq!(fixed.tracker.records(), elastic.tracker.records());
        assert_eq!(
            fixed.tracker.depth_timeline(),
            elastic.tracker.depth_timeline()
        );
        assert_eq!(fixed.report(), elastic.report());
        assert_eq!(fixed.requests_per_replica, elastic.requests_per_replica);
        assert_eq!(fixed.batches, elastic.batches);
        assert_eq!(fixed.reestimations, elastic.reestimations);
        assert_eq!(elastic.scale_ups, 0);
        assert_eq!(elastic.scale_downs, 0);
        assert_eq!(elastic.peak_replicas, replicas);
        assert_eq!(fixed.replica_seconds, elastic.replica_seconds);
    }
}

/// Conservation and bit-determinism survive *arbitrary* re-shard
/// schedules: a scripted policy replays meta-rng-generated
/// replications, evictions, and migrations at a random control cadence
/// under every balancer, and every request still reaches exactly one
/// terminal outcome with all tokens accounted for, twice identically.
#[test]
fn arbitrary_reshard_schedules_conserve_and_stay_deterministic() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x2E5A);
    for (round, balancer) in [
        BalancerKind::RoundRobin,
        BalancerKind::JoinShortestQueue,
        BalancerKind::LeastExpectedLatency,
    ]
    .into_iter()
    .cycle()
    .take(6)
    .enumerate()
    {
        let scheme = if meta.bernoulli(0.5) {
            InferScheme::Lina
        } else {
            InferScheme::Baseline
        };
        let experts = spec.experts;
        let script: Vec<Vec<ReshardAction>> = (0..8 + meta.index(16))
            .map(|_| {
                (0..meta.index(3))
                    .map(|_| match meta.index(3) {
                        0 => ReshardAction::Replicate(meta.index(experts)),
                        1 => ReshardAction::Evict(meta.index(experts)),
                        _ => ReshardAction::Migrate(meta.index(experts)),
                    })
                    .collect()
            })
            .collect();
        let config = ClusterConfig {
            serve: arb_config(&mut meta, scheme),
            replicas: 1 + meta.index(3),
            balancer,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: Some(ReshardConfig {
                policy: ReshardPolicyKind::Scripted { script },
                interval: SimDuration::from_micros(meta.below(3_000) + 200),
                window: 4 + meta.index(8),
                transfer_cost: meta.uniform(0.0, 2.0),
            }),
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let n = config.serve.n_requests;
        let offered_tokens: usize = ServeEngine::new(&cost, &topo, &spec, config.serve.clone())
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .sum();
        let out = serve_cluster(&cost, &topo, &spec, config.clone());

        let mut ids: Vec<usize> = out
            .tracker
            .records()
            .iter()
            .map(|r| r.id)
            .chain(out.tracker.failures().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "round {round}: every request exactly one terminal outcome under re-sharding"
        );
        let terminal_tokens: usize = out
            .tracker
            .records()
            .iter()
            .map(|r| r.tokens)
            .chain(out.tracker.failures().iter().map(|f| f.tokens))
            .sum();
        assert_eq!(terminal_tokens, offered_tokens, "round {round}: tokens");

        let again = serve_cluster(&cost, &topo, &spec, config);
        assert_eq!(out.tracker.records(), again.tracker.records());
        assert_eq!(out.tracker.failures(), again.tracker.failures());
        assert_eq!(out.replications, again.replications);
        assert_eq!(out.evictions, again.evictions);
        assert_eq!(out.migrations, again.migrations);
        assert_eq!(out.report(), again.report(), "round {round}: determinism");
    }
}

/// Degeneracy: an *armed* re-sharder running the inert policy observes
/// at every tick but can never mutate the shard map — it must
/// reproduce the fixed cluster bit for bit, mirroring the autoscale
/// and fault degeneracy suites.
#[test]
fn inert_resharder_is_bit_identical_to_fixed_cluster() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x12E5);
    for _ in 0..4 {
        let config = ClusterConfig {
            serve: arb_config(&mut meta, InferScheme::Lina),
            replicas: 1 + meta.index(4),
            balancer: BalancerKind::JoinShortestQueue,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let fixed = serve_cluster(&cost, &topo, &spec, config.clone());
        let mut armed = config.clone();
        armed.resharding = Some(ReshardConfig::inert(SimDuration::from_micros(
            meta.below(2_000) + 100,
        )));
        let dynamic = serve_cluster(&cost, &topo, &spec, armed);
        assert_eq!(fixed.tracker.records(), dynamic.tracker.records());
        assert_eq!(
            fixed.tracker.depth_timeline(),
            dynamic.tracker.depth_timeline()
        );
        assert_eq!(fixed.report(), dynamic.report());
        assert_eq!(fixed.requests_per_replica, dynamic.requests_per_replica);
        assert_eq!(fixed.batches, dynamic.batches);
        assert_eq!(fixed.reestimations, dynamic.reestimations);
        assert_eq!(dynamic.replications, 0);
        assert_eq!(dynamic.evictions, 0);
        assert_eq!(dynamic.migrations, 0);
        assert_eq!(fixed.replica_seconds, dynamic.replica_seconds);
    }
}

/// The perf knobs are implementation settings, not semantics: the
/// calendar event queue and the plan cache must reproduce the
/// reference run bit for bit — records, depth samples, routing, and
/// report — including under fault schedules and both sharing modes.
#[test]
fn perf_knobs_are_bit_identical_to_reference() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xFA57);
    let variants = [
        PerfConfig {
            queue: QueueKind::Calendar,
            ..PerfConfig::reference()
        },
        PerfConfig {
            plan_cache: true,
            ..PerfConfig::reference()
        },
        PerfConfig {
            queue: QueueKind::Calendar,
            plan_cache: true,
            ..PerfConfig::reference()
        },
    ];
    for round in 0..rounds(4) {
        let scheme = match round % 3 {
            0 => InferScheme::Lina,
            1 => InferScheme::Ideal,
            _ => InferScheme::Baseline,
        };
        let replicas = 2 + meta.index(3);
        let faults = if meta.bernoulli(0.5) {
            let rates = FaultRateConfig {
                crash_rate: meta.uniform(5.0, 30.0),
                mean_recovery: SimDuration::from_millis(meta.below(30) + 5),
                device_loss_rate: meta.uniform(0.0, 4.0),
                degrade_rate: meta.uniform(0.0, 4.0),
                degrade_scale: meta.uniform(0.2, 1.0),
                mean_degrade: SimDuration::from_millis(meta.below(20) + 5),
                straggler_rate: meta.uniform(0.0, 4.0),
                straggler_factor: meta.uniform(1.0, 3.0),
                mean_straggle: SimDuration::from_millis(meta.below(20) + 5),
                gray_rate: 0.0,
                gray_compute: 1.0,
                gray_nic: 1.0,
                mean_gray: SimDuration::from_millis(10),
                flap_rate: 0.0,
                flap_nic: 1.0,
                mean_flap: SimDuration::from_millis(2),
            };
            FaultPlan {
                schedule: FaultSchedule::generate(
                    &rates,
                    replicas,
                    SimDuration::from_secs_f64(1.0),
                    meta.next_u64(),
                ),
                policy: arb_policy(&mut meta),
            }
        } else {
            FaultPlan::none()
        };
        let config = ClusterConfig {
            serve: arb_config(&mut meta, scheme),
            replicas,
            balancer: BalancerKind::JoinShortestQueue,
            sharing: if meta.bernoulli(0.5) {
                EstimatorSharing::Shared
            } else {
                EstimatorSharing::PerReplica
            },
            faults,
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let reference = serve_cluster(&cost, &topo, &spec, config.clone());
        for perf in variants {
            let mut tuned = config.clone();
            tuned.serve.perf = perf;
            let out = serve_cluster(&cost, &topo, &spec, tuned);
            assert_eq!(
                reference.tracker.records(),
                out.tracker.records(),
                "round {round}: records diverged under {perf:?}"
            );
            assert_eq!(reference.tracker.failures(), out.tracker.failures());
            assert_eq!(
                reference.tracker.depth_timeline(),
                out.tracker.depth_timeline()
            );
            assert_eq!(reference.report(), out.report());
            assert_eq!(reference.requests_per_replica, out.requests_per_replica);
            assert_eq!(reference.tokens_per_replica, out.tokens_per_replica);
            assert_eq!(reference.batches, out.batches);
            assert_eq!(reference.reestimations, out.reestimations);
            assert_eq!(reference.last_event, out.last_event);
            if perf.plan_cache {
                assert_eq!(
                    out.plan_cache.hits + out.plan_cache.misses,
                    reference.batches as u64,
                    "round {round}: one cache lookup per dispatched batch"
                );
            }
        }
    }
}

/// Shard-per-replica parallelism must be invisible in the results: on
/// a shardable scenario (round-robin, no faults, no autoscaler, no
/// shared online re-estimation) the threaded run reproduces the
/// sequential run bit for bit — global batch numbering, depth
/// timeline, routing counts, pool cost, and report.
#[test]
fn sharded_execution_is_bit_identical_to_sequential() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x54A2D);
    for (scheme, sharing) in [
        (InferScheme::Ideal, EstimatorSharing::Shared),
        (InferScheme::Lina, EstimatorSharing::PerReplica),
        (InferScheme::Baseline, EstimatorSharing::Shared),
    ] {
        let config = ClusterConfig {
            serve: arb_config(&mut meta, scheme),
            replicas: 2 + meta.index(3),
            balancer: BalancerKind::RoundRobin,
            sharing,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let sequential = serve_cluster(&cost, &topo, &spec, config.clone());
        for threads in [2, 5] {
            let mut tuned = config.clone();
            tuned.serve.perf = PerfConfig {
                shard_threads: threads,
                ..PerfConfig::reference()
            };
            let sharded = serve_cluster(&cost, &topo, &spec, tuned);
            assert_eq!(
                sequential.tracker.records(),
                sharded.tracker.records(),
                "{scheme:?}/{sharing:?} x{threads}: records diverged"
            );
            assert_eq!(
                sequential.tracker.depth_timeline(),
                sharded.tracker.depth_timeline()
            );
            assert_eq!(sequential.report(), sharded.report());
            assert_eq!(
                sequential.requests_per_replica,
                sharded.requests_per_replica
            );
            assert_eq!(sequential.tokens_per_replica, sharded.tokens_per_replica);
            assert_eq!(sequential.batches_per_replica, sharded.batches_per_replica);
            assert_eq!(sequential.batches, sharded.batches);
            assert_eq!(sequential.reestimations, sharded.reestimations);
            assert_eq!(sequential.last_event, sharded.last_event);
            assert_eq!(sequential.replica_seconds, sharded.replica_seconds);
        }
    }
}

/// A non-shardable scenario with shard threads armed must fall back to
/// the sequential loop and still match it bit for bit: the JSQ
/// balancer couples replicas, so the threads knob must be a no-op.
#[test]
fn unshardable_scenario_falls_back_to_sequential() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0xFBACC);
    let config = ClusterConfig {
        serve: arb_config(&mut meta, InferScheme::Lina),
        replicas: 3,
        balancer: BalancerKind::JoinShortestQueue,
        sharing: EstimatorSharing::Shared,
        faults: FaultPlan::none(),
        autoscale: None,
        resharding: None,
        placement: None,
        locality: false,
        health: HealthConfig::oracle(),
        hedging: None,
    };
    let sequential = serve_cluster(&cost, &topo, &spec, config.clone());
    let mut tuned = config.clone();
    tuned.serve.perf = PerfConfig {
        shard_threads: 8,
        ..PerfConfig::reference()
    };
    let out = serve_cluster(&cost, &topo, &spec, tuned);
    assert_eq!(sequential.tracker.records(), out.tracker.records());
    assert_eq!(
        sequential.tracker.depth_timeline(),
        out.tracker.depth_timeline()
    );
    assert_eq!(sequential.report(), out.report());
    assert_eq!(sequential.requests_per_replica, out.requests_per_replica);
}

/// Arming an explicit base placement that *is* the canonical layout
/// (uniform one-expert-per-device across every layer, locality off)
/// must be invisible: per-request records, depth timeline, report,
/// replica accounting, and pool cost all reproduce the plain run bit
/// for bit, and no locality hops are counted. This pins the serving
/// side of the layered-placement contract — the armed code path prices
/// every batch through `plan_batch_layered` and a non-zero plan-cache
/// placement digest, yet nothing observable may move.
#[test]
fn uniform_layered_base_is_bit_identical_to_plain() {
    let (cost, topo, spec) = world();
    let canonical = LayeredPlacement::uniform(
        ExpertPlacement::one_per_device(spec.experts, topo.devices()),
        cost.model.layers,
    );
    let mut meta = Rng::new(0xA11F);
    for scheme in [InferScheme::Baseline, InferScheme::Lina, InferScheme::Ideal] {
        for resharding in [
            None,
            Some(ReshardConfig {
                policy: ReshardPolicyKind::Threshold {
                    hot: 1.8,
                    cold: 0.2,
                    hysteresis: 2,
                    transfer_budget: 2,
                },
                interval: SimDuration::from_micros(800),
                window: 6,
                transfer_cost: 0.5,
            }),
        ] {
            let plain = ClusterConfig {
                serve: arb_config(&mut meta, scheme),
                replicas: 2 + meta.index(2),
                balancer: BalancerKind::RoundRobin,
                sharing: EstimatorSharing::Shared,
                faults: FaultPlan::none(),
                autoscale: None,
                resharding: resharding.clone(),
                placement: None,
                locality: false,
                health: HealthConfig::oracle(),
                hedging: None,
            };
            let mut armed = plain.clone();
            armed.placement = Some(canonical.clone());
            let base = serve_cluster(&cost, &topo, &spec, plain);
            let out = serve_cluster(&cost, &topo, &spec, armed);
            let tag = format!("{scheme:?} resharding={}", resharding.is_some());
            assert_eq!(
                base.tracker.records(),
                out.tracker.records(),
                "{tag}: records diverged under a canonical armed base"
            );
            assert_eq!(
                base.tracker.depth_timeline(),
                out.tracker.depth_timeline(),
                "{tag}: depth timeline diverged"
            );
            assert_eq!(base.report(), out.report(), "{tag}: report diverged");
            assert_eq!(base.requests_per_replica, out.requests_per_replica);
            assert_eq!(base.tokens_per_replica, out.tokens_per_replica);
            assert_eq!(base.batches_per_replica, out.batches_per_replica);
            assert_eq!(base.replica_seconds, out.replica_seconds);
            assert_eq!(base.replications, out.replications);
            assert_eq!(
                (base.local_hops, base.routed_hops),
                (0, 0),
                "{tag}: plain run must not count locality hops"
            );
            assert_eq!(
                (out.local_hops, out.routed_hops),
                (0, 0),
                "{tag}: locality off must not count hops even when armed"
            );
        }
    }
}

/// Under generated gray/flap fault schedules — optionally mixed with
/// crashes — every combination of balancer, detector, and hedging
/// still conserves requests and tokens, reports consistent hedge
/// counters, stays bit-deterministic, and is invariant under the
/// shard-threads knob (gray runs are unshardable, so the knob must
/// fall back to the sequential loop bit for bit).
#[test]
fn gray_faults_with_hedging_conserve_and_stay_deterministic() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x62A9F);
    for round in 0..rounds(6) {
        let serve_config = arb_config(&mut meta, InferScheme::Lina);
        let replicas = 2 + meta.index(3);
        let mut rates = FaultRateConfig::gray(
            meta.uniform(2.0, 12.0),
            meta.uniform(2.0, 8.0),
            meta.uniform(0.3, 1.0),
            SimDuration::from_millis(meta.below(40) + 10),
        );
        rates.flap_rate = meta.uniform(0.0, 6.0);
        rates.flap_nic = meta.uniform(0.2, 0.9);
        rates.mean_flap = SimDuration::from_millis(meta.below(5) + 1);
        if meta.bernoulli(0.5) {
            rates.crash_rate = meta.uniform(1.0, 10.0);
            rates.mean_recovery = SimDuration::from_millis(meta.below(30) + 5);
        }
        let schedule = FaultSchedule::generate(
            &rates,
            replicas,
            SimDuration::from_secs_f64(2.0),
            meta.next_u64(),
        );
        let balancer = match meta.index(3) {
            0 => BalancerKind::RoundRobin,
            1 => BalancerKind::JoinShortestQueue,
            _ => BalancerKind::LeastExpectedLatency,
        };
        let health = if meta.bernoulli(0.5) {
            HealthConfig::phi_accrual()
        } else {
            HealthConfig::oracle()
        };
        let hedging = meta.bernoulli(0.7).then(|| HedgeConfig {
            quantile: meta.uniform(0.5, 0.95),
            multiplier: meta.uniform(1.2, 3.0),
            min_samples: 4 + meta.index(16),
        });
        let config = ClusterConfig {
            serve: serve_config,
            replicas,
            balancer,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan {
                schedule,
                policy: arb_policy(&mut meta),
            },
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health,
            hedging,
        };
        let n = config.serve.n_requests;
        let offered_tokens: usize = ServeEngine::new(&cost, &topo, &spec, config.serve.clone())
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .sum();
        let out = serve_cluster(&cost, &topo, &spec, config.clone());

        // Exactly one terminal outcome per request, tokens conserved.
        let mut ids: Vec<usize> = out
            .tracker
            .records()
            .iter()
            .map(|r| r.id)
            .chain(out.tracker.failures().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "round {round}: every request exactly one terminal outcome under gray faults"
        );
        let terminal_tokens: usize = out
            .tracker
            .records()
            .iter()
            .map(|r| r.tokens)
            .chain(out.tracker.failures().iter().map(|f| f.tokens))
            .sum();
        assert_eq!(terminal_tokens, offered_tokens, "round {round}: tokens");

        // Hedge counters are internally consistent and mirrored into
        // the report.
        let report = out.report();
        assert!(out.hedges_won <= out.hedges_issued, "round {round}");
        assert!(
            (0.0..=1.0).contains(&out.hedge_wasted_frac),
            "round {round}: wasted frac {}",
            out.hedge_wasted_frac
        );
        assert_eq!(report.hedges_issued, out.hedges_issued);
        assert_eq!(report.hedges_won, out.hedges_won);
        assert_eq!(report.hedge_wasted_frac, out.hedge_wasted_frac);

        // Bit-determinism.
        let again = serve_cluster(&cost, &topo, &spec, config.clone());
        assert_eq!(out.tracker.records(), again.tracker.records());
        assert_eq!(out.tracker.failures(), again.tracker.failures());
        assert_eq!(report, again.report(), "round {round}: determinism");

        // Shard-threads invariance: gray schedules (and any non-oracle
        // detector or armed hedging) are unshardable, so the knob must
        // be an exact no-op.
        let mut tuned = config;
        tuned.serve.perf = PerfConfig {
            shard_threads: 4,
            ..PerfConfig::reference()
        };
        let sharded = serve_cluster(&cost, &topo, &spec, tuned);
        assert_eq!(
            out.tracker.records(),
            sharded.tracker.records(),
            "round {round}: shard-threads must not perturb gray runs"
        );
        assert_eq!(report, sharded.report());
    }
}

/// Degeneracy: an explicitly armed oracle detector plus a hedging
/// runtime that can never reach its sample floor reproduces the plain
/// unhedged run bit for bit on every balancer — records, depth
/// timeline, report, and per-replica accounting — and issues zero
/// hedges.
#[test]
fn armed_oracle_and_inert_hedging_reproduce_the_plain_run() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x1DE47);
    for balancer in [
        BalancerKind::RoundRobin,
        BalancerKind::JoinShortestQueue,
        BalancerKind::LeastExpectedLatency,
    ] {
        let config = ClusterConfig {
            serve: arb_config(&mut meta, InferScheme::Lina),
            replicas: 2 + meta.index(3),
            balancer,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan::none(),
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let plain = serve_cluster(&cost, &topo, &spec, config.clone());
        let mut armed = config.clone();
        armed.hedging = Some(HedgeConfig {
            quantile: 0.95,
            multiplier: 2.0,
            // Unreachable sample floor: the runtime is armed but can
            // never derive a delay, so no batch is ever hedged.
            min_samples: usize::MAX,
        });
        let out = serve_cluster(&cost, &topo, &spec, armed);
        assert_eq!(
            plain.tracker.records(),
            out.tracker.records(),
            "{balancer:?}: records diverged under armed-but-inert hedging"
        );
        assert_eq!(plain.tracker.depth_timeline(), out.tracker.depth_timeline());
        assert_eq!(
            plain.report(),
            out.report(),
            "{balancer:?}: report diverged"
        );
        assert_eq!(plain.requests_per_replica, out.requests_per_replica);
        assert_eq!(plain.batches, out.batches);
        assert_eq!(out.hedges_issued, 0, "{balancer:?}: inert runtime hedged");
    }
}

/// Seeded retry jitter keeps every conservation invariant: with a
/// non-zero jitter fraction on the backoff, crashes still leave each
/// request exactly one terminal outcome, all tokens accounted for, and
/// the run bit-deterministic; with jitter zero, the armed field is
/// invisible against the unjittered run.
#[test]
fn jittered_backoff_conserves_and_stays_deterministic() {
    let (cost, topo, spec) = world();
    let mut meta = Rng::new(0x717E4);
    for round in 0..rounds(4) {
        let serve_config = arb_config(&mut meta, InferScheme::Lina);
        let replicas = 2 + meta.index(3);
        let rates = FaultRateConfig::crashes(
            meta.uniform(5.0, 30.0),
            SimDuration::from_millis(meta.below(30) + 5),
        );
        let schedule = FaultSchedule::generate(
            &rates,
            replicas,
            SimDuration::from_secs_f64(2.0),
            meta.next_u64(),
        );
        let mut policy = arb_policy(&mut meta);
        policy.jitter = meta.uniform(0.05, 0.5);
        let config = ClusterConfig {
            serve: serve_config,
            replicas,
            balancer: BalancerKind::JoinShortestQueue,
            sharing: EstimatorSharing::Shared,
            faults: FaultPlan { schedule, policy },
            autoscale: None,
            resharding: None,
            placement: None,
            locality: false,
            health: HealthConfig::oracle(),
            hedging: None,
        };
        let n = config.serve.n_requests;
        let offered_tokens: usize = ServeEngine::new(&cost, &topo, &spec, config.serve.clone())
            .generate_requests()
            .iter()
            .map(|r| r.tokens.len())
            .sum();
        let out = serve_cluster(&cost, &topo, &spec, config.clone());
        let mut ids: Vec<usize> = out
            .tracker
            .records()
            .iter()
            .map(|r| r.id)
            .chain(out.tracker.failures().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n).collect::<Vec<_>>(),
            "round {round}: jittered retries lost or duplicated a request"
        );
        let terminal_tokens: usize = out
            .tracker
            .records()
            .iter()
            .map(|r| r.tokens)
            .chain(out.tracker.failures().iter().map(|f| f.tokens))
            .sum();
        assert_eq!(terminal_tokens, offered_tokens, "round {round}: tokens");
        let again = serve_cluster(&cost, &topo, &spec, config.clone());
        assert_eq!(out.tracker.records(), again.tracker.records());
        assert_eq!(out.tracker.failures(), again.tracker.failures());
        assert_eq!(out.report(), again.report(), "round {round}: determinism");

        // Jitter zero is bit-invisible: the field rides the same seeded
        // stream but multiplies it away before it can reorder anything.
        let mut flat = config.clone();
        flat.faults.policy.jitter = 0.0;
        let mut plain = config;
        plain.faults.policy.jitter = 0.0;
        let a = serve_cluster(&cost, &topo, &spec, flat);
        let b = serve_cluster(&cost, &topo, &spec, plain);
        assert_eq!(a.tracker.records(), b.tracker.records());
        assert_eq!(a.report(), b.report());
    }
}
