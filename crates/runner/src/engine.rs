//! Executes an op graph over the simulated cluster.
//!
//! The engine reproduces the execution environment Lina operates in:
//!
//! * each device runs its compute ops on one compute stream, in
//!   readiness order;
//! * each communication class (all-to-all / allreduce) behaves like an
//!   NCCL process-group stream: at most one collective in flight, no
//!   preemption once launched;
//! * a [`CommPolicy`] is consulted at every event for which pending
//!   collective, if any, to admit — the only control a communication
//!   scheduler actually has (§4.1).
//!
//! Overlapping collectives share links under the network's max-min
//! model, which is where the baseline's all-to-all slowdown comes from.

use std::collections::VecDeque;

use lina_core::{ActiveComm, CommPolicy, CommView, PendingComm};
use lina_model::{CommClass, OpGraph, OpId, OpKind};
use lina_netsim::{CollectiveEngine, CollectiveId, CollectiveSpec, Network, Topology};
use lina_simcore::{Lane, SimDuration, SimTime, SpanKind, StreamId, Timeline};

/// Execution outcome of one op graph.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// Recorded spans for all ops.
    pub timeline: Timeline,
    /// Completion time of the last op.
    pub makespan: SimDuration,
    /// Per-op `(start, end)` windows, indexed by op id.
    pub op_windows: Vec<Option<(SimTime, SimTime)>>,
}

impl ExecResult {
    /// The window of op `id`.
    ///
    /// # Panics
    ///
    /// Panics if the op never ran (cannot happen after a successful
    /// execution).
    pub fn window(&self, id: OpId) -> (SimTime, SimTime) {
        self.op_windows[id.0 as usize].expect("op executed")
    }

    /// Duration of op `id`.
    pub fn duration(&self, id: OpId) -> SimDuration {
        let (s, e) = self.window(id);
        e - s
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Pending,
    Ready,
    Running,
    Done,
}

struct EngineState<'a> {
    graph: &'a OpGraph,
    status: Vec<Status>,
    unmet: Vec<usize>,
    dependents: Vec<Vec<OpId>>,
    // Compute side.
    device_queue: Vec<VecDeque<OpId>>,
    device_busy: Vec<Option<(OpId, SimTime)>>,
    // Communication side.
    pending_comm: Vec<PendingComm>,
    active_comm: Vec<(CommClass, OpId, CollectiveId)>,
    a2a_ops: Vec<OpId>,
    coll: CollectiveEngine,
    now: SimTime,
    timeline: Timeline,
    op_windows: Vec<Option<(SimTime, SimTime)>>,
    done_count: usize,
}

impl<'a> EngineState<'a> {
    fn new(graph: &'a OpGraph, topo: &Topology) -> Self {
        let n = graph.len();
        let devices = topo.devices();
        let mut unmet = vec![0usize; n];
        let mut dependents = vec![Vec::new(); n];
        for (i, op) in graph.ops().iter().enumerate() {
            unmet[i] = op.deps.len();
            for d in &op.deps {
                dependents[d.0 as usize].push(OpId(i as u32));
            }
        }
        let a2a_ops = graph.comm_ops(CommClass::AllToAll);
        EngineState {
            graph,
            status: vec![Status::Pending; n],
            unmet,
            dependents,
            device_queue: vec![VecDeque::new(); devices],
            device_busy: vec![None; devices],
            pending_comm: Vec::new(),
            active_comm: Vec::new(),
            a2a_ops,
            coll: CollectiveEngine::new(Network::new(topo.clone())),
            now: SimTime::ZERO,
            timeline: Timeline::new(),
            op_windows: vec![None; n],
            done_count: 0,
        }
    }

    fn mark_ready(&mut self, id: OpId) {
        debug_assert_eq!(self.status[id.0 as usize], Status::Pending);
        self.status[id.0 as usize] = Status::Ready;
        match &self.graph.op(id).kind {
            OpKind::Compute { device, .. } => {
                self.device_queue[device.0 as usize].push_back(id);
            }
            OpKind::Comm { meta, .. } => {
                self.pending_comm.push(PendingComm {
                    handle: id.0 as usize,
                    meta: *meta,
                    ready_at_ns: self.now.as_nanos(),
                });
            }
        }
    }

    fn complete(&mut self, id: OpId, started: SimTime, policy: &mut dyn CommPolicy) {
        let i = id.0 as usize;
        debug_assert_eq!(self.status[i], Status::Running);
        self.status[i] = Status::Done;
        self.done_count += 1;
        self.op_windows[i] = Some((started, self.now));
        let op = self.graph.op(id);
        match &op.kind {
            OpKind::Compute { device, span, .. } => {
                self.timeline.record(
                    StreamId {
                        device: device.0,
                        lane: Lane::Compute,
                    },
                    *span,
                    started,
                    self.now,
                    op.label.clone(),
                );
            }
            OpKind::Comm { spec, meta } => {
                let (lane, span) = match meta.class {
                    CommClass::AllToAll => (Lane::AllToAll, SpanKind::AllToAll),
                    CommClass::Allreduce => (Lane::Allreduce, SpanKind::Allreduce),
                    CommClass::Control => (Lane::Control, SpanKind::ControlComm),
                };
                for d in participants(spec) {
                    self.timeline.record(
                        StreamId { device: d, lane },
                        span,
                        started,
                        self.now,
                        op.label.clone(),
                    );
                }
                policy.on_complete(meta);
            }
        }
        for dep in self.dependents[i].clone() {
            let j = dep.0 as usize;
            self.unmet[j] -= 1;
            if self.unmet[j] == 0 {
                self.mark_ready(dep);
            }
        }
    }

    fn start_compute_ops(&mut self) {
        for d in 0..self.device_queue.len() {
            if self.device_busy[d].is_none() {
                if let Some(id) = self.device_queue[d].pop_front() {
                    let OpKind::Compute { duration, .. } = &self.graph.op(id).kind else {
                        unreachable!("compute queue holds compute ops");
                    };
                    self.status[id.0 as usize] = Status::Running;
                    self.device_busy[d] = Some((id, self.now + *duration));
                    // Stash the start for span recording.
                    self.op_windows[id.0 as usize] = Some((self.now, SimTime::MAX));
                }
            }
        }
    }

    fn stream_free(&self, class: CommClass) -> bool {
        !self.active_comm.iter().any(|(c, _, _)| *c == class)
    }

    fn a2a_imminent(&self) -> bool {
        self.a2a_ops.iter().any(|&id| {
            self.status[id.0 as usize] == Status::Pending
                && self
                    .graph
                    .op(id)
                    .deps
                    .iter()
                    .all(|d| matches!(self.status[d.0 as usize], Status::Done | Status::Running))
        })
    }

    fn try_launch(&mut self, handle: usize) -> bool {
        let id = OpId(handle as u32);
        let Some(pos) = self.pending_comm.iter().position(|p| p.handle == handle) else {
            return false;
        };
        let OpKind::Comm { spec, meta } = &self.graph.op(id).kind else {
            return false;
        };
        if !self.stream_free(meta.class) {
            return false;
        }
        self.pending_comm.remove(pos);
        self.status[handle] = Status::Running;
        self.op_windows[handle] = Some((self.now, SimTime::MAX));
        let cid = self.coll.start(spec, id.0 as u64);
        self.active_comm.push((meta.class, id, cid));
        true
    }

    fn run_policy(&mut self, policy: &mut dyn CommPolicy) {
        loop {
            if self.pending_comm.is_empty() {
                return;
            }
            self.pending_comm.sort_by_key(|p| (p.ready_at_ns, p.handle));
            let active: Vec<ActiveComm> = self
                .active_comm
                .iter()
                .map(|(_, id, _)| {
                    let OpKind::Comm { meta, .. } = &self.graph.op(*id).kind else {
                        unreachable!("active comm is a comm op");
                    };
                    ActiveComm { meta: *meta }
                })
                .collect();
            let view = CommView {
                pending: &self.pending_comm,
                active: &active,
                a2a_imminent: self.a2a_imminent(),
                a2a_stream_free: self.stream_free(CommClass::AllToAll),
                allreduce_stream_free: self.stream_free(CommClass::Allreduce),
            };
            let selection = policy.select(&view);
            let mut launched = false;
            for handle in selection {
                launched |= self.try_launch(handle);
            }
            if !launched {
                return;
            }
        }
    }

    /// Safeguard against non-work-conserving policies: if nothing is
    /// running anywhere but comm ops are pending, force-launch the
    /// oldest pending op per free class so the simulation cannot
    /// deadlock.
    fn force_progress(&mut self) -> bool {
        let nothing_running =
            self.device_busy.iter().all(Option::is_none) && self.active_comm.is_empty();
        if !nothing_running || self.pending_comm.is_empty() {
            return false;
        }
        self.pending_comm.sort_by_key(|p| (p.ready_at_ns, p.handle));
        let handles: Vec<usize> = self.pending_comm.iter().map(|p| p.handle).collect();
        let mut launched = false;
        for h in handles {
            launched |= self.try_launch(h);
        }
        launched
    }
}

fn participants(spec: &CollectiveSpec) -> Vec<u32> {
    match spec {
        CollectiveSpec::AllToAll { participants, .. }
        | CollectiveSpec::AllReduce { participants, .. } => {
            participants.iter().map(|d| d.0).collect()
        }
        CollectiveSpec::Broadcast {
            root, participants, ..
        } => {
            let mut v: Vec<u32> = participants.iter().map(|d| d.0).collect();
            if !v.contains(&root.0) {
                v.push(root.0);
            }
            v
        }
        CollectiveSpec::Send { src, dst, .. } => vec![src.0, dst.0],
    }
}

/// Executes `graph` on `topo` under `policy`.
///
/// # Panics
///
/// Panics if the graph cannot make progress (a malformed graph; cannot
/// happen for builder-produced graphs).
pub fn execute(graph: &OpGraph, topo: &Topology, policy: &mut dyn CommPolicy) -> ExecResult {
    let mut st = EngineState::new(graph, topo);
    // Seed the ready set.
    for i in 0..graph.len() {
        if st.unmet[i] == 0 {
            st.mark_ready(OpId(i as u32));
        }
    }
    while st.done_count < graph.len() {
        st.start_compute_ops();
        st.run_policy(policy);
        // Earliest next event across compute and network.
        let t_comp = st
            .device_busy
            .iter()
            .filter_map(|b| b.map(|(_, end)| end))
            .min();
        let t_comm = st.coll.next_event();
        let next = match (t_comp, t_comm) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                if st.force_progress() {
                    continue;
                }
                panic!(
                    "engine stalled at {} with {}/{} ops done",
                    st.now,
                    st.done_count,
                    graph.len()
                );
            }
        };
        debug_assert!(next >= st.now, "time went backwards");
        // Advance communication; +1ns so completions at `next` are seen.
        let comm_done = st.coll.advance_to(next);
        st.now = next.max(st.coll.now());
        for cd in comm_done {
            let id = OpId(cd.tag as u32);
            st.active_comm.retain(|(_, oid, _)| *oid != id);
            let started = st.op_windows[id.0 as usize].expect("launched").0;
            st.now = st.now.max(cd.at);
            st.complete(id, started, policy);
        }
        // Complete compute ops due by now.
        for d in 0..st.device_busy.len() {
            if let Some((id, end)) = st.device_busy[d] {
                if end <= st.now {
                    st.device_busy[d] = None;
                    let started = st.op_windows[id.0 as usize].expect("started").0;
                    st.complete(id, started, policy);
                }
            }
        }
    }
    let makespan = st.timeline.horizon() - SimTime::ZERO;
    ExecResult {
        timeline: st.timeline,
        makespan,
        op_windows: st.op_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_baselines::TrainScheme;
    use lina_model::{
        balanced_routing, build_train_step, BatchShape, CostModel, DeviceSpec, MoeModelConfig,
    };
    use lina_netsim::ClusterSpec;
    use lina_simcore::SpanKind;

    fn run(scheme: TrainScheme, experts: usize, layers: usize) -> (ExecResult, OpGraph) {
        let model = MoeModelConfig::transformer_xl(layers, experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let cost = CostModel::new(DeviceSpec::a100(), model.clone());
        let batch = BatchShape {
            seqs_per_device: 4,
            seq_len: model.seq_len,
        };
        let routing = balanced_routing(&model, experts, batch);
        let opts = scheme.step_options(experts, &topo);
        let graph = build_train_step(&cost, &topo, batch, &routing, &opts);
        let mut policy = scheme.policy();
        let result = execute(&graph, &topo, policy.as_mut());
        (result, graph)
    }

    #[test]
    fn baseline_step_completes_all_ops() {
        let (result, graph) = run(TrainScheme::Baseline, 4, 4);
        assert!(result.op_windows.iter().all(Option::is_some));
        assert!(result.makespan > SimDuration::ZERO);
        assert_eq!(result.op_windows.len(), graph.len());
    }

    #[test]
    fn windows_respect_dependencies() {
        let (result, graph) = run(TrainScheme::Baseline, 4, 4);
        for (i, op) in graph.ops().iter().enumerate() {
            let (start, _) = result.window(OpId(i as u32));
            for d in &op.deps {
                let (_, dep_end) = result.window(*d);
                assert!(
                    dep_end <= start,
                    "op {i} started {start} before dep {:?} ended {dep_end}",
                    d
                );
            }
        }
    }

    #[test]
    fn lina_step_completes_and_is_not_slower() {
        let (base, _) = run(TrainScheme::Baseline, 4, 4);
        let (lina, _) = run(TrainScheme::LinaNoPack, 4, 4);
        assert!(
            lina.makespan <= base.makespan.mul_f64(1.05),
            "lina {} vs baseline {}",
            lina.makespan,
            base.makespan
        );
    }

    #[test]
    fn all_schemes_terminate() {
        for scheme in [
            TrainScheme::Baseline,
            TrainScheme::Tutel,
            TrainScheme::Fixed,
            TrainScheme::PriorityOnly,
            TrainScheme::PriorityPartition,
            TrainScheme::LinaNoPack,
            TrainScheme::Lina {
                experts_per_device: 2,
            },
        ] {
            let (result, _) = run(scheme, 4, 2);
            assert!(result.makespan > SimDuration::ZERO, "{}", scheme.name());
        }
    }

    #[test]
    fn timeline_has_all_span_kinds() {
        let (result, _) = run(TrainScheme::Baseline, 4, 2);
        for kind in [
            SpanKind::Attention,
            SpanKind::Gate,
            SpanKind::ExpertFfn,
            SpanKind::Combine,
            SpanKind::Optimizer,
            SpanKind::AllToAll,
            SpanKind::Allreduce,
        ] {
            assert!(
                result.timeline.total_by_kind(kind) > SimDuration::ZERO,
                "missing {kind:?} spans"
            );
        }
    }

    #[test]
    fn deterministic_execution() {
        let (a, _) = run(
            TrainScheme::Lina {
                experts_per_device: 2,
            },
            4,
            3,
        );
        let (b, _) = run(
            TrainScheme::Lina {
                experts_per_device: 2,
            },
            4,
            3,
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.op_windows, b.op_windows);
    }

    #[test]
    fn empty_graph_completes_immediately() {
        let topo = Topology::new(ClusterSpec::with_total_gpus(4));
        let graph = OpGraph::new();
        let mut policy = TrainScheme::Baseline.policy();
        let result = execute(&graph, &topo, policy.as_mut());
        assert_eq!(result.makespan, SimDuration::ZERO);
        assert!(result.timeline.is_empty());
    }

    #[test]
    fn single_compute_op_runs_for_its_duration() {
        let topo = Topology::new(ClusterSpec::with_total_gpus(4));
        let mut graph = OpGraph::new();
        graph.add_compute(
            lina_netsim::DeviceId(2),
            SimDuration::from_millis(7),
            SpanKind::Other,
            vec![],
            "solo",
        );
        let mut policy = TrainScheme::Baseline.policy();
        let result = execute(&graph, &topo, policy.as_mut());
        assert_eq!(result.makespan, SimDuration::from_millis(7));
    }

    #[test]
    fn single_comm_op_without_compute_still_launches() {
        // A graph that is pure communication: the engine must drive the
        // collective to completion with no compute events to anchor on.
        let topo = Topology::new(ClusterSpec::with_total_gpus(4));
        let mut graph = OpGraph::new();
        let spec = lina_netsim::CollectiveSpec::uniform_all_to_all(
            topo.device_ids().collect(),
            1e6,
            lina_netsim::AllToAllAlgo::Flat,
        );
        graph.add_comm(
            spec,
            lina_model::CommMeta {
                class: lina_model::CommClass::AllToAll,
                layer: 0,
                chunk: 0,
                nchunks: 1,
                bytes_per_device: 1e6,
                backward: false,
                op_index: 0,
            },
            vec![],
            "a2a",
        );
        let mut policy = TrainScheme::Baseline.policy();
        let result = execute(&graph, &topo, policy.as_mut());
        assert!(result.makespan > SimDuration::ZERO);
    }

    #[test]
    fn non_work_conserving_policy_cannot_deadlock_the_engine() {
        // A policy that never launches anything: the force-progress
        // safeguard must still finish the step.
        struct Lazy;
        impl lina_core::CommPolicy for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn select(&mut self, _view: &lina_core::CommView<'_>) -> Vec<usize> {
                Vec::new()
            }
        }
        let (result, _) = {
            let model = lina_model::MoeModelConfig::transformer_xl(2, 4);
            let topo = Topology::new(ClusterSpec::with_total_gpus(4));
            let cost = lina_model::CostModel::new(lina_model::DeviceSpec::a100(), model.clone());
            let batch = lina_model::BatchShape {
                seqs_per_device: 2,
                seq_len: model.seq_len,
            };
            let routing = lina_model::balanced_routing(&model, 4, batch);
            let opts = TrainScheme::Baseline.step_options(4, &topo);
            let graph = lina_model::build_train_step(&cost, &topo, batch, &routing, &opts);
            let mut policy = Lazy;
            (execute(&graph, &topo, &mut policy), graph)
        };
        assert!(result.op_windows.iter().all(Option::is_some));
    }

    #[test]
    fn compute_stream_is_serial_per_device() {
        let (result, _) = run(TrainScheme::Baseline, 4, 3);
        for d in 0..4 {
            let mut spans: Vec<(SimTime, SimTime)> = result
                .timeline
                .spans()
                .iter()
                .filter(|s| s.stream.device == d && s.stream.lane == Lane::Compute)
                .map(|s| (s.start, s.end))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping compute on device {d}");
            }
        }
    }
}
