//! Inference planner: lowers one batch under a scheme into a typed
//! [`ExecutionPlan`].
//!
//! The plan captures every *decision* of the layer-by-layer inference
//! walk — placements, phase-two verdicts, per-device expert compute
//! segments, the unequal-split all-to-all [`CollectiveSpec`]s, and the
//! scheduling phases with their overlap budgets — but no *timing*.
//! All of Lina's scheduling decisions are timing-independent (phase
//! one sees only the observed token paths, phase two only compares the
//! estimate against the actual routing), so they resolve here once and
//! the executors in [`crate::exec`] merely price the stages: the
//! `SoloExecutor` with closed-form uncontended collectives, the
//! `ContendedExecutor` by running them on a shared network where
//! concurrent batches fair-share NIC bandwidth.

use lina_baselines::InferScheme;
use lina_core::{PhaseOne, PhaseTwo, TwoPhaseScheduler};
use lina_model::{assign_replicas, CostModel, ExpertPlacement, LayerRouting, LayeredPlacement};
use lina_netsim::{AllToAllAlgo, CollectiveSpec, DeviceId, Topology};
use lina_simcore::SimDuration;
use lina_workload::TokenBatch;

use crate::inference::InferenceConfig;

/// One MoE layer's lowered stages, in execution order: attention →
/// gate → scheduling → dispatch all-to-all → expert compute → combine
/// all-to-all → combine op.
#[derive(Clone, Debug)]
pub struct LayerPlan {
    /// Attention ahead of the MoE layer (advances the clock but stays
    /// outside the per-layer MoE accounting).
    pub attention: SimDuration,
    /// Gate compute.
    pub gate: SimDuration,
    /// Scheduling time that blocks this layer unconditionally: the
    /// full reactive schedule (w/o estimation), the resume broadcast,
    /// or the fine-tune re-schedule. The *overlapped* phase-one time is
    /// not here — it is charged by the executor as whatever part of
    /// the previous layer's `phase_one` budget its actual overlap
    /// window could not absorb.
    pub sched_block: SimDuration,
    /// Dispatch all-to-all, `None` when no token crosses devices.
    pub dispatch: Option<CollectiveSpec>,
    /// Per-device expert compute (hosted experts run sequentially,
    /// swap overheads included; the slowest device gates the layer).
    pub compute: Vec<SimDuration>,
    /// Combine all-to-all back to the token owners.
    pub combine_a2a: Option<CollectiveSpec>,
    /// Combine op after the return all-to-all.
    pub combine: SimDuration,
    /// `Some(schedule_time)` when this layer launches phase one for
    /// the next layer. The budget overlaps everything from this
    /// layer's dispatch through the next layer's gate; the executor
    /// charges the remainder to the next layer's scheduling stage.
    pub phase_one: Option<SimDuration>,
    /// An estimate (from the previous layer's phase one) was consumed
    /// at this layer.
    pub estimated: bool,
    /// The consumed estimate matched the actual top-2k popularity.
    pub accurate: bool,
    /// Phase two fine-tuned the placement at this layer.
    pub finetuned: bool,
}

impl LayerPlan {
    /// The layer's critical-path expert compute (slowest device).
    pub fn slowest_compute(&self) -> SimDuration {
        self.compute
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Idle fraction of the least-loaded device relative to the
    /// slowest (the §2.2 straggler measurement); 0 when no device
    /// computes.
    pub fn idle_frac(&self) -> f64 {
        let slowest = self.slowest_compute();
        if slowest == SimDuration::ZERO {
            return 0.0;
        }
        let fastest = self
            .compute
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO);
        (slowest - fastest).ratio(slowest)
    }
}

/// A whole batch lowered to per-layer stages.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    /// Tokens in the batch.
    pub tokens: usize,
    /// Per-layer stages in execution order.
    pub layers: Vec<LayerPlan>,
    /// Under locality-aware pricing: token-hops that skipped the
    /// dispatch wire (the layer's expert already lived on the token's
    /// device, or on the device that computed its previous layer's
    /// expert). Always 0 when locality pricing is off.
    pub local_hops: u64,
    /// Under locality-aware pricing: token-hops whose dispatch crossed
    /// the wire. Always 0 when locality pricing is off.
    pub routed_hops: u64,
}

impl ExecutionPlan {
    /// Number of model layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Fraction of token-hops that skipped the dispatch wire under
    /// locality-aware pricing (0 when the plan was priced without it).
    pub fn locality_fraction(&self) -> f64 {
        let total = self.local_hops + self.routed_hops;
        if total == 0 {
            0.0
        } else {
            self.local_hops as f64 / total as f64
        }
    }

    /// Stretches every per-device expert-compute segment by `factor`
    /// (≥ 1): the degraded-replica model for a straggling GPU or a lost
    /// device whose experts were packed onto the survivors. Attention,
    /// gate, scheduling, and the all-to-all specs are untouched — only
    /// the expert compute the surviving devices must absorb slows down.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and ≥ 1.
    pub fn scale_compute(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "scale_compute: bad factor {factor}"
        );
        if factor == 1.0 {
            return;
        }
        for layer in &mut self.layers {
            for c in &mut layer.compute {
                *c = c.mul_f64(factor);
            }
        }
    }
}

/// Builds the unequal-split all-to-all spec for a token-count matrix,
/// or `None` when no token crosses devices (a purely local exchange
/// costs nothing in this model).
pub(crate) fn a2a_spec(
    topo: &Topology,
    sizes: &[Vec<usize>],
    bytes_per_token: f64,
) -> Option<CollectiveSpec> {
    let devices = sizes.len();
    let any_remote = sizes
        .iter()
        .enumerate()
        .any(|(i, row)| row.iter().enumerate().any(|(j, &c)| i != j && c > 0));
    if !any_remote {
        return None;
    }
    let participants: Vec<DeviceId> = topo.device_ids().collect();
    let byte_sizes: Vec<Vec<f64>> = sizes
        .iter()
        .map(|row| row.iter().map(|&c| c as f64 * bytes_per_token).collect())
        .collect();
    debug_assert_eq!(devices, participants.len());
    Some(CollectiveSpec::AllToAll {
        participants,
        sizes: byte_sizes,
        algo: AllToAllAlgo::Flat,
    })
}

pub(crate) fn transpose_counts(m: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = m.len();
    let mut out = vec![vec![0usize; n]; n];
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// Lowers one batch under the scheme; `scheduler` is required for the
/// Lina schemes and ignored by Baseline/Ideal.
///
/// # Panics
///
/// Panics if a Lina scheme is requested without a scheduler.
pub fn plan_batch(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batch: &TokenBatch,
) -> ExecutionPlan {
    plan_batch_on(cost, topo, config, scheduler, batch, None)
}

/// [`plan_batch`] against an explicit base shard map: layers that
/// would fall back to the static one-expert-per-device placement use
/// `base` instead (the serving cluster's proactive re-sharding
/// publishes its mutated shard map here, including devices hosting
/// *replicated* experts — [`assign_replicas`] splits such an expert's
/// tokens across its replicas). The Lina schemes' per-layer scheduled
/// placements still take precedence. `base: None` is bit-identical to
/// [`plan_batch`].
///
/// # Panics
///
/// Panics if a Lina scheme is requested without a scheduler, or if
/// `base` leaves some expert hostless.
pub fn plan_batch_on(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batch: &TokenBatch,
    base: Option<&ExpertPlacement>,
) -> ExecutionPlan {
    let spec = PlanSpec {
        base: base.map(BasePlacement::Single),
        locality: false,
    };
    plan_batch_with(cost, topo, config, scheduler, batch, &spec)
}

/// [`plan_batch`] against per-layer base placements: every layer that
/// would fall back to the static map uses its *own* entry of the
/// [`LayeredPlacement`] instead. `spec.locality` additionally turns on
/// locality-aware all-to-all pricing (see [`PlanSpec`]).
/// `PlanSpec::default()` is bit-identical to [`plan_batch`], and a
/// [`LayeredPlacement::uniform`] base is bit-identical to
/// [`plan_batch_on`] with the same single map.
///
/// # Panics
///
/// Panics if a Lina scheme is requested without a scheduler, if a
/// layered base disagrees with the model's layer or expert count, or
/// if a base leaves some expert hostless.
pub fn plan_batch_layered(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batch: &TokenBatch,
    base: Option<&LayeredPlacement>,
    locality: bool,
) -> ExecutionPlan {
    let spec = PlanSpec {
        base: base.map(BasePlacement::Layered),
        locality,
    };
    plan_batch_with(cost, topo, config, scheduler, batch, &spec)
}

/// The planner's base-placement source: the canonical static map, one
/// map shared by every layer, or a first-class per-layer map.
#[derive(Clone, Copy, Debug)]
pub enum BasePlacement<'a> {
    /// One map applied identically to every layer (the historical
    /// shape; the serving re-sharder's single shard map).
    Single(&'a ExpertPlacement),
    /// A per-layer map (affinity-aware placement).
    Layered(&'a LayeredPlacement),
}

/// Planner options beyond the scheme: the base placement and the
/// locality-aware pricing toggle.
///
/// With `locality` on, a token whose layer-`l` expert lives on the
/// device that computed its layer-`l-1` expert (or on its own
/// attention shard) contributes **no dispatch bytes** for that hop:
/// the activation is already resident, so the all-to-all is priced on
/// the actually-crossing token counts. Both executors inherit this
/// automatically — Solo and Contended price collectives from the
/// [`CollectiveSpec`]s built here. The default (`locality: false`,
/// `base: None`) reproduces the historical planner bit for bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanSpec<'a> {
    /// Base placement for layers without a scheduled one.
    pub base: Option<BasePlacement<'a>>,
    /// Price all-to-alls on actually-crossing token counts.
    pub locality: bool,
}

fn plan_batch_with(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batch: &TokenBatch,
    spec: &PlanSpec<'_>,
) -> ExecutionPlan {
    let model = &cost.model;
    let devices = topo.devices();
    let layers = model.layers;
    // The busiest device's share of the batch (ceiling division: a
    // batch smaller than the device count still puts at least one
    // token on some device; remainder tokens land on the critical
    // path).
    let tokens_per_device = batch.len().div_ceil(devices);
    let needs_scheduler = matches!(
        config.scheme,
        InferScheme::Lina | InferScheme::LinaNoEstimation | InferScheme::LinaNoFinetune
    );
    assert!(
        !needs_scheduler || scheduler.is_some(),
        "run_inference_batch: {:?} requires a scheduler",
        config.scheme
    );

    if let Some(BasePlacement::Layered(lp)) = spec.base {
        assert_eq!(
            lp.n_layers(),
            layers,
            "plan: layered base has {} layers, model has {layers}",
            lp.n_layers()
        );
        assert_eq!(
            lp.experts(),
            model.experts,
            "plan: layered base has {} experts, model has {}",
            lp.experts(),
            model.experts
        );
    }
    // Built lazily only when no base was supplied; per-layer lookups
    // borrow instead of cloning a map per layer per batch.
    let canonical = spec
        .base
        .is_none()
        .then(|| ExpertPlacement::one_per_device(model.experts, devices));
    let static_for = |layer: usize| -> &ExpertPlacement {
        match spec.base {
            Some(BasePlacement::Single(p)) => p,
            Some(BasePlacement::Layered(lp)) => lp.layer(layer),
            None => canonical.as_ref().expect("built when base is None"),
        }
    };
    // The Ideal scheme's balanced routing is synthetic — it does not
    // correspond to the batch's token paths, so there is no resident
    // copy to ride on.
    let locality = spec.locality && config.scheme != InferScheme::Ideal;
    let attention = cost.attention_fwd(tokens_per_device);
    let gate = cost.gate_fwd(tokens_per_device);
    let combine = cost.combine(tokens_per_device);
    let swap = cost.expert_swap(topo.spec().pcie_bw);

    let mut plan = ExecutionPlan {
        tokens: batch.len(),
        layers: Vec::with_capacity(layers),
        local_hops: 0,
        routed_hops: 0,
    };
    let mut pending_phase_one: Option<PhaseOne> = None;
    // Locality pricing tracks, per token, the device that computed its
    // previous layer's (primary) expert — `None` at layer 0 or when
    // the expert was replicated (the ride target is ambiguous).
    let mut prev_host: Vec<Option<DeviceId>> = if locality {
        vec![None; batch.len()]
    } else {
        Vec::new()
    };

    for layer in 0..layers {
        // Actual routing (Ideal forces a balanced gate).
        let routing = match config.scheme {
            InferScheme::Ideal => {
                LayerRouting::balanced(devices, model.experts, tokens_per_device, config.top_k)
            }
            _ => batch.routing_for_layer(layer),
        };

        // Scheduling: decide this layer's placement and its blocking
        // cost (the phase-one overlap remainder is the executor's).
        // `None` means the static one-expert-per-device placement —
        // Baseline/Ideal and non-estimated layers borrow it instead of
        // cloning it per layer per batch.
        let mut placement: Option<ExpertPlacement> = None;
        let mut sched_block = SimDuration::ZERO;
        let mut swapped_late = false;
        let mut estimated = false;
        let mut accurate = false;
        let mut finetuned = false;
        match config.scheme {
            InferScheme::Baseline | InferScheme::Ideal => {}
            InferScheme::LinaNoEstimation => {
                let s = scheduler.expect("checked above");
                placement = Some(s.schedule_from_actual(&routing));
                // Reactive scheduling blocks the layer entirely.
                sched_block += s.config().schedule_time;
                swapped_late = true;
            }
            InferScheme::Lina | InferScheme::LinaNoFinetune => {
                let s = scheduler.expect("checked above");
                if let Some(p1) = std::mem::take(&mut pending_phase_one) {
                    estimated = true;
                    let actual_pop = routing.popularity();
                    let two_k = 2 * config.top_k;
                    accurate = lina_core::PopularityEstimator::estimate_matches(
                        &p1.estimate,
                        &actual_pop,
                        two_k.min(model.experts),
                    );
                    if config.scheme == InferScheme::Lina {
                        match s.phase_two(&p1, &routing) {
                            PhaseTwo::Resume => {
                                sched_block += s.config().resume_time;
                                placement = Some(p1.placement);
                            }
                            PhaseTwo::Finetune(p) => {
                                sched_block += s.config().schedule_time;
                                finetuned = true;
                                placement = Some(p);
                                swapped_late = true;
                            }
                        }
                    } else {
                        // w/o fine-tuning: trust the estimate blindly.
                        placement = Some(p1.placement);
                    }
                }
            }
        }

        let used_placement = placement.as_ref().unwrap_or_else(|| static_for(layer));
        let dispatch_plan = assign_replicas(&routing, used_placement, topo);
        // Locality-aware pricing: a token whose layer-l expert lives
        // where its layer-(l-1) expert computed (or on its own
        // attention shard) never touches the dispatch wire — its
        // activation is already resident. The collective is priced on
        // the reduced, actually-crossing matrix; compute is untouched
        // (every token still runs on its expert's device). Only the
        // top-1 copy can ride; with `top_k > 1` the secondary copies
        // always dispatch from the token's shard. Replicated experts
        // are priced conservatively (no ride — which replica serves
        // the token is a load-balancing decision, not a residency
        // guarantee).
        let dispatch = if locality {
            let host_of: Vec<Option<DeviceId>> = used_placement
                .hosts
                .iter()
                .map(|hs| if hs.len() == 1 { Some(hs[0]) } else { None })
                .collect();
            let mut sizes = dispatch_plan.sizes.clone();
            for (t, prev) in prev_host.iter_mut().enumerate() {
                let Some(&e) = batch.tokens[t]
                    .selections
                    .get(layer)
                    .and_then(|sel| sel.first())
                else {
                    continue;
                };
                let this_host = host_of[e as usize];
                let home = batch.device_of(t);
                match this_host {
                    Some(h) if h.0 as usize == home => plan.local_hops += 1,
                    Some(h) if *prev == Some(h) => {
                        plan.local_hops += 1;
                        debug_assert!(sizes[home][h.0 as usize] > 0);
                        sizes[home][h.0 as usize] -= 1;
                    }
                    _ => plan.routed_hops += 1,
                }
                *prev = this_host;
            }
            a2a_spec(topo, &sizes, model.token_bytes())
        } else {
            a2a_spec(topo, &dispatch_plan.sizes, model.token_bytes())
        };

        // Expert computation per device: sequential over hosted
        // experts with double-buffered weight swaps; a post-gate
        // placement change cannot prefetch the first expert's weights.
        let mut compute: Vec<SimDuration> = Vec::with_capacity(devices);
        for d in 0..devices {
            let mut t = SimDuration::ZERO;
            let mut computed = 0;
            let mut prev_compute = SimDuration::ZERO;
            for e in 0..model.experts {
                let tok = dispatch_plan.compute[d][e];
                if tok > 0 {
                    if computed > 0 {
                        t += swap.saturating_sub(prev_compute);
                    }
                    let c = cost.expert_fwd(tok);
                    t += c;
                    prev_compute = c;
                    computed += 1;
                }
            }
            if swapped_late && computed > 0 {
                t += swap;
            }
            compute.push(t);
        }

        let combine_a2a = a2a_spec(
            topo,
            &transpose_counts(&dispatch_plan.sizes),
            model.token_bytes(),
        );

        // Phase one for the next layer starts as soon as this layer's
        // gate fixed the token paths; the budget overlaps everything
        // through the next layer's gate (§6.2).
        let mut phase_one = None;
        if layer + 1 < layers
            && matches!(
                config.scheme,
                InferScheme::Lina | InferScheme::LinaNoFinetune
            )
        {
            let s = scheduler.expect("checked above");
            pending_phase_one = s.phase_one(&batch.tokens, layer + 1);
            if pending_phase_one.is_some() {
                phase_one = Some(s.config().schedule_time);
            }
        }

        plan.layers.push(LayerPlan {
            attention,
            gate,
            sched_block,
            dispatch,
            compute,
            combine_a2a,
            combine,
            phase_one,
            estimated,
            accurate,
            finetuned,
        });
    }
    plan
}
