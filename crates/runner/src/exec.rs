//! Executors that price an [`ExecutionPlan`].
//!
//! The planner in [`crate::plan`] resolves every scheduling decision;
//! what remains is attaching times to the stages, and that depends on
//! the network model:
//!
//! * **Solo** ([`execute_plan_solo`], [`NetworkMode::Solo`]) prices each
//!   collective closed-form as if it ran alone on the wire — the
//!   classical `run_inference_batch` costing, bit-for-bit.
//! * **Contended** ([`NetworkMode::Contended`]) feeds the collective
//!   stages of *all* in-flight batches on a replica through one shared
//!   [`Network`], so concurrent dispatch/combine all-to-alls fair-share
//!   NIC bandwidth and each batch's all-to-all takes however long the
//!   contended network actually needs (the Figure 3 phenomenon, applied
//!   to serving).
//!
//! [`ReplicaExecutor`] is the event-driven surface the serving cluster
//! drives: `submit` a planned batch at its dispatch instant, ask for the
//! `next_event` horizon, and `advance_to` a time to collect
//! [`FinishedBatch`]es. The solo variant is the degenerate case whose
//! completions are known at submit time.

use std::collections::BTreeMap;
use std::sync::Arc;

use lina_netsim::{CollectiveDone, CollectiveEngine, Network, SoloTimer, Topology};
use lina_simcore::{EventQueue, QueueKind, SimDuration, SimTime};

use crate::inference::InferenceReport;
use crate::plan::ExecutionPlan;

/// Which network model executes a plan's collectives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkMode {
    /// Every collective priced closed-form, alone on the wire.
    Solo,
    /// In-flight batches on a replica share its links fair-share.
    Contended,
}

impl NetworkMode {
    /// Stable lowercase name for configs and labels.
    pub fn name(self) -> &'static str {
        match self {
            NetworkMode::Solo => "solo",
            NetworkMode::Contended => "contended",
        }
    }
}

/// Prices a plan with solo (uncontended) collectives.
///
/// This is the exact costing of the pre-refactor inference driver: the
/// equivalence test in `tests/solo_equivalence.rs` pins it bit-for-bit
/// against reports captured before the planner/executor split.
pub fn execute_plan_solo(plan: &ExecutionPlan, timer: &mut SoloTimer) -> InferenceReport {
    let n = plan.layers.len();
    let mut total = SimDuration::ZERO;
    let mut layer_times = Vec::with_capacity(n);
    let mut a2a_times = Vec::with_capacity(n);
    let mut finetunes = 0;
    let mut estimates = 0;
    let mut accurate = 0;
    let mut max_idle_frac: f64 = 0.0;
    // Phase-one time the previous layer's overlap window could not
    // absorb blocks the current layer's scheduling stage.
    let mut unabsorbed = SimDuration::ZERO;
    for lp in &plan.layers {
        total += lp.attention;
        let mut layer_time = lp.gate + unabsorbed + lp.sched_block;
        unabsorbed = SimDuration::ZERO;
        let d1 = lp
            .dispatch
            .as_ref()
            .map(|s| timer.time(s))
            .unwrap_or(SimDuration::ZERO);
        let slowest = lp.slowest_compute();
        max_idle_frac = max_idle_frac.max(lp.idle_frac());
        let d2 = lp
            .combine_a2a
            .as_ref()
            .map(|s| timer.time(s))
            .unwrap_or(SimDuration::ZERO);
        layer_time += d1 + slowest + d2 + lp.combine;
        if let Some(budget) = lp.phase_one {
            let window = d1 + slowest + d2 + lp.combine + lp.attention + lp.gate;
            unabsorbed = budget.saturating_sub(window);
        }
        estimates += lp.estimated as usize;
        accurate += lp.accurate as usize;
        finetunes += lp.finetuned as usize;
        a2a_times.push(d1 + d2);
        layer_times.push(layer_time);
        total += layer_time;
    }
    InferenceReport {
        total,
        layer_times,
        a2a_times,
        finetunes,
        estimates,
        accurate,
        max_idle_frac,
    }
}

/// A batch that finished executing on a replica.
#[derive(Clone, Debug)]
pub struct FinishedBatch {
    /// Submission-order id (the cluster's global batch counter).
    pub id: u64,
    /// Dispatch instant.
    pub dispatched: SimTime,
    /// Completion instant.
    pub completed: SimTime,
    /// Tokens in the batch.
    pub tokens: usize,
    /// Per-batch measurements; `report.total == completed - dispatched`.
    pub report: InferenceReport,
}

/// Executes submitted plans for one replica under a [`NetworkMode`].
pub enum ReplicaExecutor {
    /// Solo pricing: completions known at submit time.
    Solo(Box<SoloReplica>),
    /// Shared-network execution on an event queue.
    Contended(Box<ContendedReplica>),
}

impl ReplicaExecutor {
    /// Builds an executor for a replica spanning `topo` on the default
    /// event-queue backend.
    pub fn new(mode: NetworkMode, topo: &Topology) -> Self {
        ReplicaExecutor::new_shared(mode, Arc::new(topo.clone()), QueueKind::default())
    }

    /// Builds an executor over a shared topology handle — the cluster
    /// builds one `Arc<Topology>` per run and every replica shares it
    /// instead of deep-cloning the topology per executor. `queue`
    /// selects the contended executor's stage-timer backend (pop order
    /// is identical across kinds).
    pub fn new_shared(mode: NetworkMode, topo: Arc<Topology>, queue: QueueKind) -> Self {
        match mode {
            NetworkMode::Solo => ReplicaExecutor::Solo(Box::new(SoloReplica {
                timer: SoloTimer::new_shared(topo),
                inflight: Vec::new(),
                last_completion: SimTime::ZERO,
                memo: None,
            })),
            NetworkMode::Contended => ReplicaExecutor::Contended(Box::new(ContendedReplica {
                engine: CollectiveEngine::new(Network::new_shared(topo.clone())),
                estimator: SoloTimer::new_shared(topo),
                queue: EventQueue::with_kind(queue),
                batches: BTreeMap::new(),
                finished: Vec::new(),
                last_completion: SimTime::ZERO,
                memo: None,
            })),
        }
    }

    /// Starts a planned batch at `at` (must be `>=` every previously
    /// observed event/submit time).
    pub fn submit(&mut self, id: u64, at: SimTime, plan: Arc<ExecutionPlan>) {
        match self {
            ReplicaExecutor::Solo(s) => s.submit(id, at, plan),
            ReplicaExecutor::Contended(c) => c.submit(id, at, plan),
        }
    }

    /// Next instant at which this replica's state can change (a batch
    /// completion in solo mode; any stage boundary or network event in
    /// contended mode), or `None` when nothing is in flight.
    pub fn next_event(&mut self) -> Option<SimTime> {
        match self {
            ReplicaExecutor::Solo(s) => s.inflight.iter().map(|f| f.completed).min(),
            ReplicaExecutor::Contended(c) => c.next_horizon(),
        }
    }

    /// Advances to `t` and returns batches that completed by then,
    /// ordered by `(completed, id)`.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<FinishedBatch> {
        match self {
            ReplicaExecutor::Solo(s) => s.advance_to(t),
            ReplicaExecutor::Contended(c) => c.advance_to(t),
        }
    }

    /// Batches currently in flight.
    pub fn in_flight(&self) -> usize {
        match self {
            ReplicaExecutor::Solo(s) => s.inflight.len(),
            ReplicaExecutor::Contended(c) => c.batches.len(),
        }
    }

    /// Tokens across in-flight batches.
    pub fn in_flight_tokens(&self) -> usize {
        match self {
            ReplicaExecutor::Solo(s) => s.inflight.iter().map(|f| f.tokens).sum(),
            ReplicaExecutor::Contended(c) => c.batches.values().map(|b| b.plan.tokens).sum(),
        }
    }

    /// Aborts every in-flight batch — the replica crashed. Returns the
    /// aborted batch ids (ascending); no completion is ever reported
    /// for them. Contended collectives and their network flows are
    /// cancelled; the executor is reusable after recovery.
    ///
    /// The cluster loop drains every executor event strictly before the
    /// crash instant first, so nothing already completed is in limbo; a
    /// batch completing exactly at the crash instant is aborted (the
    /// fault fires first at ties).
    pub fn abort_all(&mut self) -> Vec<u64> {
        match self {
            ReplicaExecutor::Solo(s) => {
                let mut ids: Vec<u64> = s.inflight.drain(..).map(|f| f.id).collect();
                ids.sort_unstable();
                ids
            }
            ReplicaExecutor::Contended(c) => {
                debug_assert!(
                    c.finished.is_empty(),
                    "abort_all: undrained completions on the replica"
                );
                let ids: Vec<u64> = c.batches.keys().copied().collect();
                c.batches.clear();
                c.queue.clear();
                c.engine.cancel_all();
                ids
            }
        }
    }

    /// Aborts one in-flight batch — a hedged duplicate lost the race.
    /// No completion is ever reported for it; other batches are
    /// untouched (contended survivors re-share the freed links from the
    /// current instant onward). Returns whether the batch was found.
    ///
    /// A batch completing exactly at the abort instant but not yet
    /// drained is aborted too — the abort wins ties, mirroring
    /// [`ReplicaExecutor::abort_all`] at a crash instant.
    pub fn abort(&mut self, id: u64) -> bool {
        match self {
            ReplicaExecutor::Solo(s) => {
                let before = s.inflight.len();
                s.inflight.retain(|f| f.id != id);
                s.inflight.len() != before
            }
            ReplicaExecutor::Contended(c) => c.abort(id),
        }
    }

    /// Scales the replica's link bandwidth (fault injection: 1.0 =
    /// healthy, < 1.0 = degraded NIC). Solo pricing charges subsequent
    /// plans their closed-form time on the degraded links; contended
    /// execution re-shares the degraded links immediately, in-flight
    /// collectives included.
    pub fn set_link_scale(&mut self, scale: f64) {
        match self {
            ReplicaExecutor::Solo(s) => {
                s.timer.set_capacity_scale(scale);
                // Memoized solo reports were priced on the old links.
                s.memo = None;
            }
            ReplicaExecutor::Contended(c) => {
                c.engine.network_mut().set_capacity_scale(scale);
                c.estimator.set_capacity_scale(scale);
                c.memo = None;
            }
        }
    }

    /// When the replica expects to drain: the latest in-flight
    /// completion (solo-priced estimate in contended mode, where actual
    /// completions can land later under contention), or the last
    /// observed completion when idle.
    pub fn busy_until(&self) -> SimTime {
        match self {
            ReplicaExecutor::Solo(s) => s
                .inflight
                .iter()
                .map(|f| f.completed)
                .max()
                .unwrap_or(s.last_completion),
            ReplicaExecutor::Contended(c) => c
                .batches
                .values()
                .map(|b| b.expected_completion)
                .max()
                .unwrap_or(c.last_completion),
        }
    }
}

/// Solo-pricing executor: each submitted plan is priced immediately
/// with uncontended collectives; "execution" is just waiting out the
/// precomputed completion instant.
pub struct SoloReplica {
    timer: SoloTimer,
    inflight: Vec<FinishedBatch>,
    last_completion: SimTime,
    /// Last (plan, report) pair priced. Solo pricing is pure in the
    /// plan and the link scale, so resubmitting the *same* shared plan
    /// (the plan cache upstream yields identical `Arc`s) skips the
    /// per-layer collective pricing entirely. `Arc::ptr_eq` keying is
    /// ABA-safe because the memo holds the plan alive.
    memo: Option<(Arc<ExecutionPlan>, InferenceReport)>,
}

impl SoloReplica {
    fn solo_report(&mut self, plan: &Arc<ExecutionPlan>) -> InferenceReport {
        if let Some((p, r)) = &self.memo {
            if Arc::ptr_eq(p, plan) {
                return r.clone();
            }
        }
        let r = execute_plan_solo(plan, &mut self.timer);
        self.memo = Some((plan.clone(), r.clone()));
        r
    }

    fn submit(&mut self, id: u64, at: SimTime, plan: Arc<ExecutionPlan>) {
        let report = self.solo_report(&plan);
        let completed = at + report.total;
        self.inflight.push(FinishedBatch {
            id,
            dispatched: at,
            completed,
            tokens: plan.tokens,
            report,
        });
    }

    fn advance_to(&mut self, t: SimTime) -> Vec<FinishedBatch> {
        let mut out: Vec<FinishedBatch> = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].completed <= t {
                out.push(self.inflight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out.sort_by_key(|f| (f.completed, f.id));
        if let Some(last) = out.last() {
            self.last_completion = self.last_completion.max(last.completed);
        }
        out
    }
}

/// Progress marker: the next stage a contended batch will execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    /// Attention + gate + (unabsorbed phase-one + blocking schedule).
    PreDispatch,
    /// Dispatch all-to-all (skipped when the layer has no remote pair).
    Dispatch,
    /// Slowest-device expert compute.
    Compute,
    /// Combine all-to-all.
    CombineA2a,
    /// Combine op.
    Combine,
    /// Zero-duration bookkeeping closing the layer.
    LayerEnd,
}

struct ContendedBatch {
    id: u64,
    dispatched: SimTime,
    expected_completion: SimTime,
    plan: Arc<ExecutionPlan>,
    layer: usize,
    next: Step,
    /// Start of the current layer's MoE accounting (after attention).
    moe_start: SimTime,
    unabsorbed: SimDuration,
    /// Measured dispatch / combine all-to-all times of the current layer.
    d1: SimDuration,
    d2: SimDuration,
    layer_times: Vec<SimDuration>,
    a2a_times: Vec<SimDuration>,
    finetunes: usize,
    estimates: usize,
    accurate: usize,
    max_idle_frac: f64,
}

/// Shared-network executor: every in-flight batch's collectives run on
/// one [`Network`], so overlapping all-to-alls contend for links. Local
/// stages (attention, gate, scheduling, expert compute, combine op) are
/// timer events — compute does not contend across batches because each
/// replica serves one batch per GPU stream; only the wire is shared.
pub struct ContendedReplica {
    engine: CollectiveEngine,
    /// Solo pricing used for the `busy_until` completion estimate.
    estimator: SoloTimer,
    /// Timer events for non-collective stage boundaries (payload =
    /// batch id).
    queue: EventQueue<u64>,
    batches: BTreeMap<u64, ContendedBatch>,
    finished: Vec<FinishedBatch>,
    last_completion: SimTime,
    /// Memoized solo estimate for the last submitted plan (see
    /// [`SoloReplica::memo`]); keyed by `Arc` identity and link scale
    /// (invalidated on [`ReplicaExecutor::set_link_scale`]).
    memo: Option<(Arc<ExecutionPlan>, SimDuration)>,
}

impl ContendedReplica {
    fn solo_total(&mut self, plan: &Arc<ExecutionPlan>) -> SimDuration {
        if let Some((p, t)) = &self.memo {
            if Arc::ptr_eq(p, plan) {
                return *t;
            }
        }
        let t = execute_plan_solo(plan, &mut self.estimator).total;
        self.memo = Some((plan.clone(), t));
        t
    }

    fn submit(&mut self, id: u64, at: SimTime, plan: Arc<ExecutionPlan>) {
        // Process anything due before the dispatch instant, then pin the
        // network clock to it so collective launches are stamped at `at`.
        self.drive(at);
        for d in self.engine.advance_to(at) {
            self.on_collective_done(d);
        }
        let solo_total = self.solo_total(&plan);
        let n = plan.layers.len();
        let b = ContendedBatch {
            id,
            dispatched: at,
            expected_completion: at + solo_total,
            plan,
            layer: 0,
            next: Step::PreDispatch,
            moe_start: at,
            unabsorbed: SimDuration::ZERO,
            d1: SimDuration::ZERO,
            d2: SimDuration::ZERO,
            layer_times: Vec::with_capacity(n),
            a2a_times: Vec::with_capacity(n),
            finetunes: 0,
            estimates: 0,
            accurate: 0,
            max_idle_frac: 0.0,
        };
        self.run_steps(b, at);
    }

    /// Earliest pending event: a stage timer or a network event.
    fn next_horizon(&mut self) -> Option<SimTime> {
        let eng = if self.engine.active() > 0 {
            self.engine.next_event()
        } else {
            None
        };
        match (eng, self.queue.peek_time()) {
            (None, q) => q,
            (e, None) => e,
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Processes every event with time `<= t`, in time order (network
    /// completions before timer events at the same instant).
    fn drive(&mut self, t: SimTime) {
        while let Some(h) = self.next_horizon() {
            if h > t {
                break;
            }
            // Advancing the network is exact regardless of step size
            // (piecewise-linear fluid flows), so stepping to each event
            // horizon keeps collective launches and stage boundaries
            // correctly interleaved.
            for d in self.engine.advance_to(h) {
                self.on_collective_done(d);
            }
            while let Some((at, id)) = self.queue.pop_due(h) {
                self.on_timer(id, at);
            }
        }
    }

    fn advance_to(&mut self, t: SimTime) -> Vec<FinishedBatch> {
        self.drive(t);
        let mut out: Vec<FinishedBatch> = self.finished.drain(..).collect();
        out.sort_by_key(|f| (f.completed, f.id));
        out
    }

    /// See [`ReplicaExecutor::abort`]. A live batch blocks on exactly
    /// one thing — a collective (tagged with its id) or a stage timer —
    /// so whichever of the two cancellations misses, the other hits.
    fn abort(&mut self, id: u64) -> bool {
        if self.batches.remove(&id).is_some() {
            if self.engine.cancel_tagged(id) == 0 {
                self.queue.retain(|&b| b != id);
            }
            return true;
        }
        // Completed at this very instant but not yet drained: the abort
        // wins the tie.
        let before = self.finished.len();
        self.finished.retain(|f| f.id != id);
        self.finished.len() != before
    }

    fn on_timer(&mut self, id: u64, at: SimTime) {
        let b = self
            .batches
            .remove(&id)
            .expect("timer event for live batch");
        self.run_steps(b, at);
    }

    fn on_collective_done(&mut self, d: CollectiveDone) {
        let mut b = self
            .batches
            .remove(&d.tag)
            .expect("collective completion for live batch");
        let measured = d.at - d.started;
        match b.next {
            // `next` was already advanced past the all-to-all stage when
            // the collective launched, so it names the stage *after* it.
            Step::Compute => b.d1 = measured,
            Step::Combine => b.d2 = measured,
            other => unreachable!("collective completed while batch awaits {other:?}"),
        }
        self.run_steps(b, d.at);
    }

    /// Executes stages from `now` until the batch blocks on a timer or
    /// collective, or finishes.
    fn run_steps(&mut self, mut b: ContendedBatch, now: SimTime) {
        let mut finished_at = None;
        loop {
            let lp = &b.plan.layers[b.layer];
            match b.next {
                Step::PreDispatch => {
                    let dur = lp.attention + lp.gate + b.unabsorbed + lp.sched_block;
                    b.moe_start = now + lp.attention;
                    b.unabsorbed = SimDuration::ZERO;
                    b.next = Step::Dispatch;
                    if dur > SimDuration::ZERO {
                        self.queue.push(now + dur, b.id);
                        break;
                    }
                }
                Step::Dispatch => {
                    b.next = Step::Compute;
                    if let Some(spec) = &lp.dispatch {
                        self.engine.start(spec, b.id);
                        break;
                    }
                    b.d1 = SimDuration::ZERO;
                }
                Step::Compute => {
                    b.max_idle_frac = b.max_idle_frac.max(lp.idle_frac());
                    let dur = lp.slowest_compute();
                    b.next = Step::CombineA2a;
                    if dur > SimDuration::ZERO {
                        self.queue.push(now + dur, b.id);
                        break;
                    }
                }
                Step::CombineA2a => {
                    b.next = Step::Combine;
                    if let Some(spec) = &lp.combine_a2a {
                        self.engine.start(spec, b.id);
                        break;
                    }
                    b.d2 = SimDuration::ZERO;
                }
                Step::Combine => {
                    b.next = Step::LayerEnd;
                    if lp.combine > SimDuration::ZERO {
                        self.queue.push(now + lp.combine, b.id);
                        break;
                    }
                }
                Step::LayerEnd => {
                    b.layer_times.push(now - b.moe_start);
                    b.a2a_times.push(b.d1 + b.d2);
                    b.estimates += lp.estimated as usize;
                    b.accurate += lp.accurate as usize;
                    b.finetunes += lp.finetuned as usize;
                    if let Some(budget) = lp.phase_one {
                        // The planner only sets phase_one when a next
                        // layer exists. The window uses the *measured*
                        // all-to-all times: contention stretches the
                        // window and absorbs more of the overlapped
                        // scheduling.
                        let next_lp = &b.plan.layers[b.layer + 1];
                        let window = b.d1
                            + lp.slowest_compute()
                            + b.d2
                            + lp.combine
                            + next_lp.attention
                            + next_lp.gate;
                        b.unabsorbed = budget.saturating_sub(window);
                    }
                    b.d1 = SimDuration::ZERO;
                    b.d2 = SimDuration::ZERO;
                    b.layer += 1;
                    if b.layer == b.plan.layers.len() {
                        finished_at = Some(now);
                        break;
                    }
                    b.next = Step::PreDispatch;
                }
            }
        }
        match finished_at {
            Some(at) => {
                self.last_completion = self.last_completion.max(at);
                self.finished.push(FinishedBatch {
                    id: b.id,
                    dispatched: b.dispatched,
                    completed: at,
                    tokens: b.plan.tokens,
                    report: InferenceReport {
                        total: at - b.dispatched,
                        layer_times: b.layer_times,
                        a2a_times: b.a2a_times,
                        finetunes: b.finetunes,
                        estimates: b.estimates,
                        accurate: b.accurate,
                        max_idle_frac: b.max_idle_frac,
                    },
                });
            }
            None => {
                self.batches.insert(b.id, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceConfig;
    use crate::plan::plan_batch;
    use lina_baselines::InferScheme;
    use lina_core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
    use lina_model::{CostModel, DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;
    use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

    fn setup() -> (CostModel, Topology, TwoPhaseScheduler, Vec<TokenBatch>) {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        let mut src = TokenSource::new(&spec, 1, 7);
        let profile: Vec<TokenBatch> = (0..6)
            .map(|_| src.sample_batch(8, 1024, Mode::Train))
            .collect();
        let estimator = PopularityEstimator::profile(&profile, 3);
        let scheduler = TwoPhaseScheduler::new(TwoPhaseConfig::paper_defaults(8), estimator);
        let mut infer = TokenSource::new(&spec, 1, 1234);
        let batches = (0..4)
            .map(|_| infer.sample_batch(8, 2048, Mode::Inference))
            .collect();
        (cost, topo, scheduler, batches)
    }

    fn plans(scheme: InferScheme) -> (Topology, Vec<Arc<ExecutionPlan>>) {
        let (cost, topo, sched, batches) = setup();
        let config = InferenceConfig { scheme, top_k: 1 };
        let plans = batches
            .iter()
            .map(|b| Arc::new(plan_batch(&cost, &topo, &config, Some(&sched), b)))
            .collect();
        (topo, plans)
    }

    /// Both paths run the same fluid network, but the solo timer steps
    /// 1ns past each event while the event-driven executor steps exactly
    /// to it, which perturbs the byte-drain segmentation by a couple of
    /// nanoseconds per collective.
    fn assert_close(a: SimDuration, b: SimDuration, tol: SimDuration, ctx: &str) {
        let d = if a > b { a - b } else { b - a };
        assert!(d <= tol, "{ctx}: {a} vs {b} differ by {d}");
    }

    /// With at most one batch in flight there is nothing to contend
    /// with: the contended executor must reproduce solo pricing down to
    /// event-rounding noise (the network arithmetic is
    /// translation-invariant, so absolute launch times do not matter).
    #[test]
    fn contended_degenerates_to_solo_when_alone() {
        let layer_tol = SimDuration::from_nanos(16);
        for scheme in [InferScheme::Baseline, InferScheme::Lina] {
            let (topo, plans) = plans(scheme);
            let mut timer = SoloTimer::new(&topo);
            let mut exec = ReplicaExecutor::new(NetworkMode::Contended, &topo);
            let mut at = SimTime::ZERO;
            for (i, plan) in plans.iter().enumerate() {
                let solo = execute_plan_solo(plan, &mut timer);
                exec.submit(i as u64, at, plan.clone());
                let done = exec.advance_to(SimTime::MAX);
                assert_eq!(done.len(), 1, "{scheme:?} batch {i}");
                let fb = &done[0];
                let total_tol = SimDuration::from_nanos(16 * plan.n_layers() as u64);
                let ctx = format!("{scheme:?} batch {i}");
                assert_close(fb.report.total, solo.total, total_tol, &ctx);
                assert_eq!(fb.report.layer_times.len(), solo.layer_times.len());
                for (l, (&got, &want)) in fb
                    .report
                    .layer_times
                    .iter()
                    .zip(&solo.layer_times)
                    .enumerate()
                {
                    assert_close(got, want, layer_tol, &format!("{ctx} layer {l}"));
                }
                for (l, (&got, &want)) in
                    fb.report.a2a_times.iter().zip(&solo.a2a_times).enumerate()
                {
                    assert_close(got, want, layer_tol, &format!("{ctx} a2a {l}"));
                }
                assert_eq!(fb.report.estimates, solo.estimates);
                assert_eq!(fb.report.finetunes, solo.finetunes);
                assert_eq!(fb.report.accurate, solo.accurate);
                assert_eq!(
                    fb.report.max_idle_frac.to_bits(),
                    solo.max_idle_frac.to_bits()
                );
                // Next batch starts strictly after this one drains, with
                // an uneven gap to vary absolute launch times.
                at = fb.completed + SimDuration::from_micros(137 + 41 * i as u64);
            }
        }
    }

    /// Overlapping batches share the wire: every batch still finishes
    /// exactly once with all tokens accounted, and nobody beats their
    /// solo time.
    #[test]
    fn overlapping_batches_contend_and_conserve_tokens() {
        let (topo, plans) = plans(InferScheme::Baseline);
        let mut timer = SoloTimer::new(&topo);
        let solo: Vec<InferenceReport> = plans
            .iter()
            .map(|p| execute_plan_solo(p, &mut timer))
            .collect();
        let mut exec = ReplicaExecutor::new(NetworkMode::Contended, &topo);
        let submitted_tokens: usize = plans.iter().map(|p| p.tokens).sum();
        // Submit all four close together so their all-to-alls overlap.
        let mut at = SimTime::ZERO;
        for (i, plan) in plans.iter().enumerate() {
            exec.submit(i as u64, at, plan.clone());
            at += SimDuration::from_micros(50);
        }
        assert_eq!(exec.in_flight(), 4);
        assert_eq!(exec.in_flight_tokens(), submitted_tokens);
        let done = exec.advance_to(SimTime::MAX);
        assert_eq!(done.len(), 4, "every batch finishes exactly once");
        assert_eq!(exec.in_flight(), 0);
        let finished_tokens: usize = done.iter().map(|f| f.tokens).sum();
        assert_eq!(finished_tokens, submitted_tokens, "tokens conserved");
        let mut slowdowns = Vec::new();
        for fb in &done {
            let s = &solo[fb.id as usize];
            assert!(
                fb.report.total >= s.total,
                "batch {} contended total {} beat solo {}",
                fb.id,
                fb.report.total,
                s.total
            );
            slowdowns.push(fb.report.total.as_secs_f64() / s.total.as_secs_f64());
        }
        // At least one batch must actually have been slowed by sharing.
        assert!(
            slowdowns.iter().any(|&s| s > 1.001),
            "no contention observed: slowdowns {slowdowns:?}"
        );
    }

    /// Identical submissions produce identical completions.
    #[test]
    fn contended_executor_is_deterministic() {
        let run = || {
            let (topo, plans) = plans(InferScheme::Lina);
            let mut exec = ReplicaExecutor::new(NetworkMode::Contended, &topo);
            let mut at = SimTime::ZERO;
            for (i, plan) in plans.iter().enumerate() {
                exec.submit(i as u64, at, plan.clone());
                at += SimDuration::from_micros(200);
            }
            exec.advance_to(SimTime::MAX)
                .into_iter()
                .map(|f| (f.id, f.completed, f.report.total))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Aborting clears in-flight work in both modes: no completions are
    /// ever reported for aborted batches, the live-state counters drop
    /// to zero (the balancer reads them), and the executor keeps working
    /// for post-recovery submissions.
    #[test]
    fn abort_clears_in_flight_work_in_both_modes() {
        for mode in [NetworkMode::Solo, NetworkMode::Contended] {
            let (topo, plans) = plans(InferScheme::Baseline);
            let mut exec = ReplicaExecutor::new(mode, &topo);
            exec.submit(0, SimTime::ZERO, plans[0].clone());
            exec.submit(1, SimTime::from_micros(40), plans[1].clone());
            assert_eq!(exec.in_flight(), 2, "{mode:?}");
            assert!(exec.in_flight_tokens() > 0);
            let aborted = exec.abort_all();
            assert_eq!(aborted, vec![0, 1], "{mode:?}");
            assert_eq!(exec.in_flight(), 0, "{mode:?}");
            assert_eq!(exec.in_flight_tokens(), 0, "{mode:?}");
            assert_eq!(exec.next_event(), None, "{mode:?}");
            let done = exec.advance_to(SimTime::MAX);
            assert!(done.is_empty(), "{mode:?}: aborted batches completed");
            // The replica recovers and serves again.
            exec.submit(2, SimTime::from_millis(400), plans[2].clone());
            let done = exec.advance_to(SimTime::MAX);
            assert_eq!(done.len(), 1, "{mode:?}");
            assert_eq!(done[0].id, 2);
        }
    }

    /// Aborting a single batch never reports its completion, leaves the
    /// other in-flight batch to finish normally, and is a no-op for
    /// unknown or already-drained ids — in both modes.
    #[test]
    fn abort_drops_one_batch_and_spares_the_rest() {
        for mode in [NetworkMode::Solo, NetworkMode::Contended] {
            let (topo, plans) = plans(InferScheme::Baseline);
            let mut exec = ReplicaExecutor::new(mode, &topo);
            exec.submit(0, SimTime::ZERO, plans[0].clone());
            exec.submit(1, SimTime::from_micros(40), plans[1].clone());
            assert_eq!(exec.in_flight(), 2, "{mode:?}");
            assert!(!exec.abort(99), "{mode:?}: unknown id aborted");
            assert!(exec.abort(0), "{mode:?}");
            assert!(!exec.abort(0), "{mode:?}: double abort succeeded");
            assert_eq!(exec.in_flight(), 1, "{mode:?}");
            let done = exec.advance_to(SimTime::MAX);
            assert_eq!(done.len(), 1, "{mode:?}: survivor finishes once");
            assert_eq!(done[0].id, 1, "{mode:?}");
            assert_eq!(exec.in_flight(), 0, "{mode:?}");
            // The replica keeps serving after the abort.
            exec.submit(2, SimTime::from_millis(400), plans[2].clone());
            let done = exec.advance_to(SimTime::MAX);
            assert_eq!(done.len(), 1, "{mode:?}");
            assert_eq!(done[0].id, 2);
        }
    }

    /// Aborting mid-collective frees the wire: a survivor contending
    /// with the aborted batch speeds up relative to both running fully
    /// contended.
    #[test]
    fn contended_abort_releases_link_share() {
        let (topo, plans) = plans(InferScheme::Baseline);
        let run = |abort_partner: bool| {
            let mut exec = ReplicaExecutor::new(NetworkMode::Contended, &topo);
            exec.submit(0, SimTime::ZERO, plans[0].clone());
            exec.submit(1, SimTime::ZERO, plans[0].clone());
            // Let both progress into their first all-to-alls.
            let mid = SimTime::from_micros(400);
            let early = exec.advance_to(mid);
            assert!(early.is_empty(), "nothing should finish this early");
            if abort_partner {
                assert!(exec.abort(1));
            }
            let done = exec.advance_to(SimTime::MAX);
            let fb = done.iter().find(|f| f.id == 0).expect("batch 0 finishes");
            fb.completed
        };
        let contended = run(false);
        let relieved = run(true);
        assert!(
            relieved < contended,
            "freed bandwidth must speed the survivor: {relieved} vs {contended}"
        );
    }

    /// A degraded link stretches all-to-all pricing in both modes, and
    /// restoring it returns pricing to the healthy baseline.
    #[test]
    fn link_degradation_slows_batches_and_restores() {
        for mode in [NetworkMode::Solo, NetworkMode::Contended] {
            let (topo, plans) = plans(InferScheme::Baseline);
            let run_one = |exec: &mut ReplicaExecutor, id: u64, at: SimTime| {
                exec.submit(id, at, plans[0].clone());
                let done = exec.advance_to(SimTime::MAX);
                assert_eq!(done.len(), 1);
                done[0].report.total
            };
            let mut exec = ReplicaExecutor::new(mode, &topo);
            let healthy = run_one(&mut exec, 0, SimTime::ZERO);
            exec.set_link_scale(0.25);
            let degraded = run_one(&mut exec, 1, SimTime::from_secs_f64(1.0));
            exec.set_link_scale(1.0);
            let restored = run_one(&mut exec, 2, SimTime::from_secs_f64(2.0));
            assert!(
                degraded > healthy,
                "{mode:?}: quartered bandwidth must slow the batch \
                 ({degraded} vs {healthy})"
            );
            let drift = if restored > healthy {
                restored - healthy
            } else {
                healthy - restored
            };
            assert!(
                drift <= SimDuration::from_nanos(16 * plans[0].n_layers() as u64),
                "{mode:?}: restored pricing {restored} vs healthy {healthy}"
            );
        }
    }

    /// Compute scaling stretches only the expert-compute stages.
    #[test]
    fn scale_compute_stretches_solo_totals() {
        let (topo, plans) = plans(InferScheme::Baseline);
        let mut timer = SoloTimer::new(&topo);
        let base = execute_plan_solo(&plans[0], &mut timer);
        let mut scaled = (*plans[0]).clone();
        scaled.scale_compute(1.5);
        let slow = execute_plan_solo(&scaled, &mut timer);
        assert!(slow.total > base.total);
        let compute_delta: SimDuration = plans[0]
            .layers
            .iter()
            .map(|l| l.slowest_compute().mul_f64(0.5))
            .sum();
        let got = slow.total - base.total;
        let err = if got > compute_delta {
            got - compute_delta
        } else {
            compute_delta - got
        };
        assert!(
            err <= SimDuration::from_nanos(2 * plans[0].n_layers() as u64),
            "compute-only scaling: delta {got} vs expected {compute_delta}"
        );
    }

    /// The solo variant's bookkeeping: busy_until tracks the precomputed
    /// completion and advance_to drains in completion order.
    #[test]
    fn solo_replica_tracks_completions() {
        let (topo, plans) = plans(InferScheme::Baseline);
        let mut exec = ReplicaExecutor::new(NetworkMode::Solo, &topo);
        assert_eq!(exec.next_event(), None);
        exec.submit(0, SimTime::ZERO, plans[0].clone());
        exec.submit(1, SimTime::from_micros(10), plans[1].clone());
        assert_eq!(exec.in_flight(), 2);
        let first = exec.next_event().expect("two in flight");
        assert!(exec.busy_until() >= first);
        let done = exec.advance_to(first);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed, first);
        let rest = exec.advance_to(SimTime::MAX);
        assert_eq!(rest.len(), 1);
        assert!(rest[0].completed >= first);
        assert_eq!(exec.in_flight(), 0);
        assert_eq!(exec.busy_until(), rest[0].completed);
    }
}
