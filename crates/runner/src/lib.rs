//! # lina-runner
//!
//! Execution drivers tying the model, workload, schedulers, and network
//! simulator together: the op-graph engine, the training-step and
//! inference-batch drivers with metric extraction, and the parallel
//! sweep harness used by the benchmarks.
//!
//! Inference is layered: [`plan`] lowers a batch's scheduling decisions
//! into a typed [`ExecutionPlan`], and [`exec`] prices the plan's
//! stages under a [`NetworkMode`] — solo closed-form collectives, or a
//! shared network where concurrent batches contend for links.

#![warn(missing_docs)]

pub mod engine;
pub mod exec;
pub mod inference;
pub mod plan;
pub mod plan_cache;
pub mod session;
pub mod sweep;
pub mod train;

pub use engine::{execute, ExecResult};
pub use exec::{execute_plan_solo, FinishedBatch, NetworkMode, ReplicaExecutor};
pub use inference::{
    run_inference_batch, run_inference_batches, InferenceConfig, InferenceReport, InferenceSummary,
};
pub use plan::{
    plan_batch, plan_batch_layered, plan_batch_on, BasePlacement, ExecutionPlan, LayerPlan,
    PlanSpec,
};
pub use plan_cache::{
    hash_batch_content, hash_layered_placement, Fnv128, PlanCache, PlanCacheStats, PlanKey,
};
pub use session::{run_lina_session, SessionConfig, SessionReport};
pub use sweep::{default_threads, parallel_map};
pub use train::{
    run_train_step, run_train_steps, solo_collective_time, summarize_steps, StepMetrics, StepRun,
    TrainSummary,
};
