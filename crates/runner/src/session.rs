//! Multi-step training sessions with Lina's online packing controller.
//!
//! §6.1: "Expert packing is dynamically adjusted after 10 training
//! steps. In the forward pass, the controller records the completion
//! times of all-to-all and FFN micro-ops. When FFN micro-ops are
//! shorter than all-to-all, the controller starts to pack experts" —
//! re-evaluated every four steps, with a one-time synchronous expert-
//! parameter exchange charged when the packing changes.

use lina_baselines::TrainScheme;
use lina_core::{PackingController, PackingDecision, PackingObservation};
use lina_model::{BatchShape, CommClass, CostModel, OpKind};
use lina_netsim::{AllToAllAlgo, CollectiveSpec, Topology};
use lina_simcore::{SimDuration, SpanKind};

use crate::train::{run_train_step, solo_collective_time, StepMetrics};

/// Configuration of a training session.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Steps to simulate.
    pub steps: usize,
    /// Step at which the controller first adjusts (paper: 10).
    pub warmup_steps: usize,
    /// Re-evaluation period after warm-up (paper: 4).
    pub adjust_every: usize,
    /// Base seed; each step jitters independently.
    pub seed: u64,
}

impl SessionConfig {
    /// The paper's settings at a reduced step count.
    pub fn paper_defaults(steps: usize) -> Self {
        SessionConfig {
            steps,
            warmup_steps: 10,
            adjust_every: 4,
            seed: 1,
        }
    }
}

/// Outcome of a session.
pub struct SessionReport {
    /// Per-step metrics, in order.
    pub steps: Vec<StepMetrics>,
    /// Experts per device over time (entry per step).
    pub packing_trace: Vec<usize>,
    /// Total one-time parameter-exchange cost charged by repacking.
    pub repack_cost: SimDuration,
    /// The converged packing degree.
    pub final_packing: usize,
}

/// Measures the FFN and all-to-all micro-op completion times of a step
/// (the controller's §6.1 observables).
fn observe(run: &crate::train::StepRun) -> PackingObservation {
    let mut ffn_total = SimDuration::ZERO;
    let mut ffn_n = 0u64;
    let mut a2a_total = SimDuration::ZERO;
    let mut a2a_n = 0u64;
    for (i, op) in run.graph.ops().iter().enumerate() {
        let Some((s, e)) = run.exec.op_windows[i] else {
            continue;
        };
        match &op.kind {
            OpKind::Compute { span, .. } if *span == SpanKind::ExpertFfn && !op.backward => {
                ffn_total += e - s;
                ffn_n += 1;
            }
            OpKind::Comm { meta, .. } if meta.class == CommClass::AllToAll && !meta.backward => {
                a2a_total += e - s;
                a2a_n += 1;
            }
            _ => {}
        }
    }
    PackingObservation {
        ffn_micro: if ffn_n == 0 {
            SimDuration::ZERO
        } else {
            ffn_total / ffn_n
        },
        a2a_micro: if a2a_n == 0 {
            SimDuration::MAX
        } else {
            a2a_total / a2a_n
        },
    }
}

/// One-time cost of redistributing expert parameters when the packing
/// grows: a synchronous all-to-all of the newly hosted expert weights
/// (§6.1's "one-time synchronous all-to-all to exchange expert
/// parameters").
fn repack_exchange_cost(
    cost: &CostModel,
    topo: &Topology,
    old_per_device: usize,
    new_per_device: usize,
) -> SimDuration {
    let added = new_per_device.saturating_sub(old_per_device);
    if added == 0 {
        return SimDuration::ZERO;
    }
    let bytes = cost.model.expert_bytes() * cost.model.layers as f64 * added as f64;
    let per_pair = bytes / topo.devices() as f64;
    let spec = CollectiveSpec::uniform_all_to_all(
        topo.device_ids().collect(),
        per_pair,
        AllToAllAlgo::Flat,
    );
    solo_collective_time(topo, &spec)
}

/// Runs a Lina training session: baseline micro-op scheduling from step
/// 0, with the packing controller warmed up and adjusting on the
/// paper's schedule. Returns per-step metrics and the packing trace.
pub fn run_lina_session(
    cost: &CostModel,
    topo: &Topology,
    batch: BatchShape,
    config: &SessionConfig,
) -> SessionReport {
    let experts = cost.model.experts;
    let mut controller = PackingController::new(experts);
    let mut steps = Vec::with_capacity(config.steps);
    let mut packing_trace = Vec::with_capacity(config.steps);
    let mut repack_cost = SimDuration::ZERO;
    let mut last_adjust = config.warmup_steps;
    for step in 0..config.steps {
        let per_device = controller.experts_per_device();
        let scheme = TrainScheme::Lina {
            experts_per_device: per_device,
        };
        let run = run_train_step(cost, topo, batch, scheme, config.seed + step as u64);
        packing_trace.push(per_device);
        let due = step + 1 >= config.warmup_steps
            && (step + 1 == config.warmup_steps || step + 1 >= last_adjust + config.adjust_every);
        if due {
            last_adjust = step + 1;
            let obs = observe(&run);
            let before = controller.experts_per_device();
            if controller.decide(obs) == PackingDecision::Grow {
                repack_cost +=
                    repack_exchange_cost(cost, topo, before, controller.experts_per_device());
            }
        }
        steps.push(run.metrics);
    }
    SessionReport {
        steps,
        packing_trace,
        repack_cost,
        final_packing: controller.experts_per_device(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;

    fn setup(experts: usize) -> (CostModel, Topology, BatchShape) {
        let model = MoeModelConfig::transformer_xl(4, experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let batch = BatchShape {
            seqs_per_device: 64,
            seq_len: model.seq_len,
        };
        (CostModel::new(DeviceSpec::a100(), model), topo, batch)
    }

    #[test]
    fn controller_grows_packing_and_speeds_up() {
        let (cost, topo, batch) = setup(16);
        let config = SessionConfig {
            steps: 20,
            warmup_steps: 4,
            adjust_every: 2,
            seed: 3,
        };
        let report = run_lina_session(&cost, &topo, batch, &config);
        assert_eq!(report.steps.len(), 20);
        assert_eq!(report.packing_trace[0], 1);
        assert!(
            report.final_packing > 1,
            "controller never packed: trace {:?}",
            report.packing_trace
        );
        // Post-convergence steps are faster than the unpacked start.
        let first = report.steps[0].step_time;
        let last = report.steps.last().expect("steps").step_time;
        assert!(
            last < first,
            "packing did not pay off: first {first}, last {last}"
        );
        assert!(report.repack_cost > SimDuration::ZERO);
    }

    #[test]
    fn packing_trace_is_monotone() {
        let (cost, topo, batch) = setup(8);
        let config = SessionConfig {
            steps: 14,
            warmup_steps: 3,
            adjust_every: 2,
            seed: 5,
        };
        let report = run_lina_session(&cost, &topo, batch, &config);
        for w in report.packing_trace.windows(2) {
            assert!(w[1] >= w[0], "packing shrank: {:?}", report.packing_trace);
        }
        assert!(report.final_packing <= 8);
    }

    #[test]
    fn two_expert_session_converges_to_full_replication() {
        let (cost, topo, batch) = setup(2);
        let config = SessionConfig {
            steps: 10,
            warmup_steps: 2,
            adjust_every: 1,
            seed: 7,
        };
        let report = run_lina_session(&cost, &topo, batch, &config);
        assert_eq!(
            report.final_packing, 2,
            "2-expert case should replicate fully"
        );
        // Once fully packed there is no all-to-all left.
        assert_eq!(
            report.steps.last().expect("steps").a2a_total,
            SimDuration::ZERO
        );
    }
}
