//! Training-step driver and metric extraction.
//!
//! Runs one or more training steps of a model under a [`TrainScheme`]
//! and extracts the metrics the paper reports: step time, MoE-layer
//! forward/backward time, all-to-all completion time and its slowdown
//! versus an uncontended run (Figure 3), pipelining efficiency
//! (Table 3), and GPU utilization (Table 4).

use std::collections::BTreeMap;

use lina_baselines::TrainScheme;
use lina_model::{balanced_routing, build_train_step, BatchShape, CommClass, CostModel, OpKind};
use lina_netsim::{CollectiveSpec, SoloTimer, Topology};
use lina_simcore::{Samples, SimDuration, SimTime, SpanKind};

use crate::engine::{execute, ExecResult};

/// Metrics of one training step.
#[derive(Clone, Debug)]
pub struct StepMetrics {
    /// Wall-clock of the whole step (through the optimizer).
    pub step_time: SimDuration,
    /// Mean forward MoE-layer time (gate through combine).
    pub fwd_layer_time: SimDuration,
    /// Mean backward MoE-layer time.
    pub bwd_layer_time: SimDuration,
    /// Total all-to-all stream occupancy over the step.
    pub a2a_total: SimDuration,
    /// Completion time of each *logical* backward all-to-all (chunks of
    /// one tensor aggregated).
    pub a2a_bwd_times: Vec<SimDuration>,
    /// Per logical backward all-to-all: completion time divided by its
    /// uncontended (solo) completion time.
    pub a2a_bwd_slowdowns: Vec<f64>,
    /// Aligned with `a2a_bwd_slowdowns`: true when the op's window
    /// overlapped an in-flight allreduce (the Figure 3 condition).
    pub a2a_bwd_overlapped: Vec<bool>,
    /// Fraction of all-to-all time with the compute stream busy.
    pub pipelining_efficiency: f64,
    /// Mean compute-stream utilization across devices.
    pub compute_util: f64,
}

/// One step's raw execution plus its metrics.
pub struct StepRun {
    /// Extracted metrics.
    pub metrics: StepMetrics,
    /// Raw execution (timeline, windows).
    pub exec: ExecResult,
    /// The graph that ran (for further analysis).
    pub graph: lina_model::OpGraph,
}

/// Simulates a collective alone on an idle network and returns its
/// completion time (the denominator of the Figure 3 slowdown factor).
///
/// One-shot convenience over [`SoloTimer`]; hot loops that price many
/// collectives against the same topology should hold a timer instead,
/// which clones the topology once rather than per query.
pub fn solo_collective_time(topo: &Topology, spec: &CollectiveSpec) -> SimDuration {
    SoloTimer::new(topo).time(spec)
}

/// Runs one training step.
pub fn run_train_step(
    cost: &CostModel,
    topo: &Topology,
    batch: BatchShape,
    scheme: TrainScheme,
    seed: u64,
) -> StepRun {
    let model = &cost.model;
    let routing = balanced_routing(model, topo.devices(), batch);
    let mut opts = scheme.step_options(model.experts, topo);
    opts.seed = seed;
    let graph = build_train_step(cost, topo, batch, &routing, &opts);
    let mut policy = scheme.policy();
    let exec = execute(&graph, topo, policy.as_mut());
    let metrics = extract_metrics(&graph, topo, &exec, model.layers);
    StepRun {
        metrics,
        exec,
        graph,
    }
}

/// Runs `steps` steps (different jitter seeds) and returns the metrics
/// of each.
pub fn run_train_steps(
    cost: &CostModel,
    topo: &Topology,
    batch: BatchShape,
    scheme: TrainScheme,
    steps: usize,
    base_seed: u64,
) -> Vec<StepMetrics> {
    (0..steps)
        .map(|s| run_train_step(cost, topo, batch, scheme, base_seed + s as u64).metrics)
        .collect()
}

fn extract_metrics(
    graph: &lina_model::OpGraph,
    topo: &Topology,
    exec: &ExecResult,
    layers: usize,
) -> StepMetrics {
    // MoE-layer windows: gate/ffn/combine compute plus all-to-all comm,
    // grouped by (layer, direction).
    let mut fwd_windows: Vec<(SimTime, SimTime)> = vec![(SimTime::MAX, SimTime::ZERO); layers];
    let mut bwd_windows: Vec<(SimTime, SimTime)> = vec![(SimTime::MAX, SimTime::ZERO); layers];
    for (i, op) in graph.ops().iter().enumerate() {
        let Some(layer) = op.layer else { continue };
        let in_moe = match &op.kind {
            OpKind::Compute { span, .. } => {
                matches!(
                    span,
                    SpanKind::Gate | SpanKind::ExpertFfn | SpanKind::Combine
                )
            }
            OpKind::Comm { meta, .. } => meta.class == CommClass::AllToAll,
        };
        if !in_moe {
            continue;
        }
        let Some((s, e)) = exec.op_windows[i] else {
            continue;
        };
        let w = if op.backward {
            &mut bwd_windows[layer]
        } else {
            &mut fwd_windows[layer]
        };
        w.0 = w.0.min(s);
        w.1 = w.1.max(e);
    }
    let mean_window = |ws: &[(SimTime, SimTime)]| -> SimDuration {
        let durs: Vec<SimDuration> = ws
            .iter()
            .filter(|(s, e)| e > s)
            .map(|&(s, e)| e - s)
            .collect();
        if durs.is_empty() {
            SimDuration::ZERO
        } else {
            durs.iter().copied().sum::<SimDuration>() / durs.len() as u64
        }
    };

    // Allreduce windows, for the Figure 3 overlap condition.
    let mut ar_windows: Vec<(SimTime, SimTime)> = Vec::new();
    for (i, op) in graph.ops().iter().enumerate() {
        if let OpKind::Comm { meta, .. } = &op.kind {
            if meta.class == CommClass::Allreduce {
                if let Some(w) = exec.op_windows[i] {
                    ar_windows.push(w);
                }
            }
        }
    }
    // Logical all-to-all completion times and slowdowns.
    let mut logical: BTreeMap<(usize, bool, usize), (SimTime, SimTime, f64)> = BTreeMap::new();
    let mut a2a_total = SimDuration::ZERO;
    let mut solo_cache: BTreeMap<u64, SimDuration> = BTreeMap::new();
    let mut solo_timer = SoloTimer::new(topo);
    for (i, op) in graph.ops().iter().enumerate() {
        let OpKind::Comm { spec, meta } = &op.kind else {
            continue;
        };
        if meta.class != CommClass::AllToAll {
            continue;
        }
        let Some((s, e)) = exec.op_windows[i] else {
            continue;
        };
        a2a_total += e - s;
        let key = (meta.layer, meta.backward, meta.op_index);
        // Solo time for one chunk, cached by rounded size.
        let size_key = spec.total_bytes().round() as u64;
        let solo = *solo_cache
            .entry(size_key)
            .or_insert_with(|| solo_timer.time(spec));
        let entry = logical
            .entry(key)
            .or_insert((SimTime::MAX, SimTime::ZERO, 0.0));
        entry.0 = entry.0.min(s);
        entry.1 = entry.1.max(e);
        entry.2 += solo.as_secs_f64();
    }
    let mut a2a_bwd_times = Vec::new();
    let mut a2a_bwd_slowdowns = Vec::new();
    let mut a2a_bwd_overlapped = Vec::new();
    for ((_, backward, _), (s, e, solo_secs)) in &logical {
        if !*backward {
            continue;
        }
        let actual = *e - *s;
        a2a_bwd_times.push(actual);
        if *solo_secs > 0.0 {
            a2a_bwd_slowdowns.push(actual.as_secs_f64() / solo_secs);
            a2a_bwd_overlapped.push(ar_windows.iter().any(|&(ws, we)| ws < *e && we > *s));
        }
    }

    StepMetrics {
        step_time: exec.makespan,
        fwd_layer_time: mean_window(&fwd_windows),
        bwd_layer_time: mean_window(&bwd_windows),
        a2a_total,
        a2a_bwd_times,
        a2a_bwd_slowdowns,
        a2a_bwd_overlapped,
        pipelining_efficiency: exec.timeline.pipelining_efficiency(SpanKind::AllToAll),
        compute_util: exec
            .timeline
            .mean_compute_utilization(topo.devices() as u32),
    }
}

/// Aggregates per-step metrics into distribution summaries.
pub fn summarize_steps(steps: &[StepMetrics]) -> TrainSummary {
    let mut step_time = Samples::new();
    let mut fwd = Samples::new();
    let mut bwd = Samples::new();
    let mut a2a_total = Samples::new();
    let mut slowdowns = Samples::new();
    let mut pipeline = Samples::new();
    let mut util = Samples::new();
    for m in steps {
        step_time.push_duration(m.step_time);
        fwd.push_duration(m.fwd_layer_time);
        bwd.push_duration(m.bwd_layer_time);
        a2a_total.push_duration(m.a2a_total);
        for &s in &m.a2a_bwd_slowdowns {
            slowdowns.push(s);
        }
        pipeline.push(m.pipelining_efficiency);
        util.push(m.compute_util);
    }
    TrainSummary {
        step_time,
        fwd,
        bwd,
        a2a_total,
        slowdowns,
        pipeline,
        util,
    }
}

/// Distribution summaries over steps.
pub struct TrainSummary {
    /// Step time samples (seconds).
    pub step_time: Samples,
    /// Forward MoE-layer time samples.
    pub fwd: Samples,
    /// Backward MoE-layer time samples.
    pub bwd: Samples,
    /// Per-step total all-to-all time samples.
    pub a2a_total: Samples,
    /// Per-logical-op backward all-to-all slowdowns.
    pub slowdowns: Samples,
    /// Pipelining-efficiency samples.
    pub pipeline: Samples,
    /// Compute-utilization samples.
    pub util: Samples,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;

    fn setup(experts: usize, layers: usize) -> (CostModel, Topology, BatchShape) {
        let model = MoeModelConfig::transformer_xl(layers, experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let batch = BatchShape {
            seqs_per_device: 8,
            seq_len: model.seq_len,
        };
        (CostModel::new(DeviceSpec::a100(), model), topo, batch)
    }

    /// GPT-2 has large enough per-layer gradients that DDP buckets
    /// flush mid-backward, creating the contention of Figures 3/5.
    fn setup_gpt2(experts: usize) -> (CostModel, Topology, BatchShape) {
        let model = MoeModelConfig::gpt2(experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let batch = BatchShape {
            seqs_per_device: 8,
            seq_len: model.seq_len,
        };
        (CostModel::new(DeviceSpec::a100(), model), topo, batch)
    }

    #[test]
    fn baseline_a2a_is_contended_in_backward() {
        let (cost, topo, batch) = setup_gpt2(16);
        let run = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 3);
        let m = &run.metrics;
        assert!(!m.a2a_bwd_slowdowns.is_empty());
        let overlapped: Vec<f64> = m
            .a2a_bwd_slowdowns
            .iter()
            .zip(&m.a2a_bwd_overlapped)
            .filter(|(_, &o)| o)
            .map(|(&s, _)| s)
            .collect();
        assert!(
            !overlapped.is_empty(),
            "some backward all-to-all must overlap an allreduce"
        );
        let mean: f64 = overlapped.iter().sum::<f64>() / overlapped.len() as f64;
        assert!(
            mean > 1.2,
            "overlapped all-to-all should be slowed, got mean {mean:.2}"
        );
    }

    #[test]
    fn lina_reduces_step_time_and_slowdown() {
        let (cost, topo, batch) = setup_gpt2(16);
        let base = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 3).metrics;
        let lina = run_train_step(&cost, &topo, batch, TrainScheme::LinaNoPack, 3).metrics;
        assert!(
            lina.step_time < base.step_time,
            "lina {} >= baseline {}",
            lina.step_time,
            base.step_time
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&lina.a2a_bwd_slowdowns) < mean(&base.a2a_bwd_slowdowns) + 1e-9,
            "lina slowdown {:.2} vs baseline {:.2}",
            mean(&lina.a2a_bwd_slowdowns),
            mean(&base.a2a_bwd_slowdowns)
        );
    }

    #[test]
    fn layer_windows_are_positive() {
        let (cost, topo, batch) = setup(4, 4);
        let m = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 1).metrics;
        assert!(m.fwd_layer_time > SimDuration::ZERO);
        assert!(m.bwd_layer_time > SimDuration::ZERO);
        assert!(
            m.bwd_layer_time > m.fwd_layer_time,
            "backward should cost more"
        );
        assert!(m.a2a_total > SimDuration::ZERO);
        assert!(m.compute_util > 0.0 && m.compute_util <= 1.0);
    }

    #[test]
    fn packing_pipelining_beats_nopack() {
        // A batch big enough that 30 MB partitioning yields multiple
        // all-to-all micro-ops (per-device tensor ~ 67 MB).
        let (cost, topo, _) = setup(16, 4);
        let batch = BatchShape {
            seqs_per_device: 64,
            seq_len: cost.model.seq_len,
        };
        let nopack = run_train_step(&cost, &topo, batch, TrainScheme::LinaNoPack, 1).metrics;
        // The paper's 16-expert Transformer-XL setting packs 4 experts
        // per device: each node then holds a full replica set and
        // all-to-all becomes intra-node.
        let packed = run_train_step(
            &cost,
            &topo,
            batch,
            TrainScheme::Lina {
                experts_per_device: 4,
            },
            1,
        )
        .metrics;
        assert!(nopack.pipelining_efficiency > 0.0, "pipelining must engage");
        assert!(
            packed.pipelining_efficiency > nopack.pipelining_efficiency,
            "packed {:.2} <= nopack {:.2}",
            packed.pipelining_efficiency,
            nopack.pipelining_efficiency
        );
    }

    #[test]
    fn summary_aggregates() {
        let (cost, topo, batch) = setup(4, 2);
        let steps = run_train_steps(&cost, &topo, batch, TrainScheme::Baseline, 3, 10);
        assert_eq!(steps.len(), 3);
        let summary = summarize_steps(&steps);
        assert_eq!(summary.step_time.len(), 3);
        assert!(summary.step_time.mean() > 0.0);
        assert!(summary.util.mean() > 0.0);
    }

    #[test]
    fn solo_time_is_positive_and_scales() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let devs: Vec<_> = topo.device_ids().collect();
        let small = solo_collective_time(
            &topo,
            &CollectiveSpec::uniform_all_to_all(
                devs.clone(),
                1e5,
                lina_netsim::AllToAllAlgo::Hierarchical,
            ),
        );
        let large = solo_collective_time(
            &topo,
            &CollectiveSpec::uniform_all_to_all(devs, 1e6, lina_netsim::AllToAllAlgo::Hierarchical),
        );
        assert!(large > small);
        assert!(small > SimDuration::ZERO);
    }
}
