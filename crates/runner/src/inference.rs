//! Inference-batch driver.
//!
//! Simulates one batch through every MoE layer of a model under a
//! scheme from Figure 16 (Baseline, Ideal, Lina, and the two Lina
//! ablations). Inference is synchronous layer by layer — attention,
//! gate, (scheduling), dispatch all-to-all, per-device expert compute,
//! combine all-to-all, combine — so the driver walks a scalar clock
//! and uses the collective engine for each (unequal-split) all-to-all.
//!
//! Lina's phase one runs overlapped with the previous layer's expert
//! computation; only the part of the scheduling time that exceeds the
//! overlap window blocks. Phase two blocks for the resume broadcast or,
//! on a fine-tune, the full scheduling time (§6.2, §7.3.1).

use lina_baselines::InferScheme;
use lina_core::{PhaseOne, PhaseTwo, TwoPhaseScheduler};
use lina_model::{assign_replicas, CostModel, ExpertPlacement, LayerRouting};
use lina_netsim::{AllToAllAlgo, CollectiveSpec, DeviceId, Topology};
use lina_simcore::{Samples, SimDuration};
use lina_workload::TokenBatch;

use crate::train::solo_collective_time;

/// Per-batch measurements.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// End-to-end batch time.
    pub total: SimDuration,
    /// Per-layer MoE time (gate through combine, including scheduling).
    pub layer_times: Vec<SimDuration>,
    /// Per-layer all-to-all time (dispatch plus combine).
    pub a2a_times: Vec<SimDuration>,
    /// Layers where phase two fine-tuned the placement.
    pub finetunes: usize,
    /// Layers where an estimate was produced.
    pub estimates: usize,
    /// Layers where the estimate matched the actual top-2k.
    pub accurate: usize,
    /// Largest per-layer idle fraction of the least-loaded device
    /// (the §2.2 straggler measurement).
    pub max_idle_frac: f64,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct InferenceConfig {
    /// Scheme under test.
    pub scheme: InferScheme,
    /// Gate fan-out (1 in the paper's inference).
    pub top_k: usize,
}

fn a2a_duration(topo: &Topology, sizes: &[Vec<usize>], bytes_per_token: f64) -> SimDuration {
    let devices = sizes.len();
    let any_remote = sizes
        .iter()
        .enumerate()
        .any(|(i, row)| row.iter().enumerate().any(|(j, &c)| i != j && c > 0));
    if !any_remote {
        return SimDuration::ZERO;
    }
    let participants: Vec<DeviceId> = topo.device_ids().collect();
    let byte_sizes: Vec<Vec<f64>> = sizes
        .iter()
        .map(|row| row.iter().map(|&c| c as f64 * bytes_per_token).collect())
        .collect();
    debug_assert_eq!(devices, participants.len());
    let spec = CollectiveSpec::AllToAll {
        participants,
        sizes: byte_sizes,
        algo: AllToAllAlgo::Flat,
    };
    solo_collective_time(topo, &spec)
}

fn transpose_counts(m: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = m.len();
    let mut out = vec![vec![0usize; n]; n];
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// Runs one batch under the scheme; `scheduler` is required for the
/// Lina schemes and ignored by Baseline/Ideal.
///
/// # Panics
///
/// Panics if a Lina scheme is requested without a scheduler.
pub fn run_inference_batch(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batch: &TokenBatch,
) -> InferenceReport {
    let model = &cost.model;
    let devices = topo.devices();
    let layers = model.layers;
    // The busiest device's share of the batch. Ceiling division: a
    // batch smaller than the device count still puts (at least) one
    // token on some device, so attention/gate/combine are never free,
    // and remainder tokens land on the critical path instead of being
    // silently dropped.
    let tokens_per_device = batch.len().div_ceil(devices);
    let needs_scheduler = matches!(
        config.scheme,
        InferScheme::Lina | InferScheme::LinaNoEstimation | InferScheme::LinaNoFinetune
    );
    assert!(
        !needs_scheduler || scheduler.is_some(),
        "run_inference_batch: {:?} requires a scheduler",
        config.scheme
    );

    let static_placement = ExpertPlacement::one_per_device(model.experts, devices);
    let mut total = SimDuration::ZERO;
    let mut layer_times = Vec::with_capacity(layers);
    let mut a2a_times = Vec::with_capacity(layers);
    let mut finetunes = 0;
    let mut estimates = 0;
    let mut accurate = 0;
    let mut max_idle_frac: f64 = 0.0;
    // Phase-one result computed during the previous layer, and the
    // scheduling time still to absorb (overlap accounting).
    let mut pending_phase_one: Option<PhaseOne> = None;
    let mut unabsorbed_sched = SimDuration::ZERO;

    for layer in 0..layers {
        let mut layer_time = SimDuration::ZERO;
        // Attention is outside the MoE layer but advances the clock.
        total += cost.attention_fwd(tokens_per_device);
        // Gate.
        let gate = cost.gate_fwd(tokens_per_device);
        layer_time += gate;

        // Actual routing (Ideal forces a balanced gate).
        let routing = match config.scheme {
            InferScheme::Ideal => {
                LayerRouting::balanced(devices, model.experts, tokens_per_device, config.top_k)
            }
            _ => batch.routing_for_layer(layer),
        };

        // Scheduling: decide this layer's placement and its blocking
        // cost.
        let mut placement = static_placement.clone();
        let mut swapped_late = false;
        match config.scheme {
            InferScheme::Baseline | InferScheme::Ideal => {}
            InferScheme::LinaNoEstimation => {
                let s = scheduler.expect("checked above");
                placement = s.schedule_from_actual(&routing);
                // Reactive scheduling blocks the layer entirely.
                layer_time += s.config().schedule_time;
                swapped_late = true;
            }
            InferScheme::Lina | InferScheme::LinaNoFinetune => {
                let s = scheduler.expect("checked above");
                // Any phase-one time the previous layer could not
                // absorb blocks now.
                layer_time += unabsorbed_sched;
                unabsorbed_sched = SimDuration::ZERO;
                if let Some(p1) = pending_phase_one.take() {
                    estimates += 1;
                    let actual_pop = routing.popularity();
                    let two_k = 2 * config.top_k;
                    if lina_core::PopularityEstimator::estimate_matches(
                        &p1.estimate,
                        &actual_pop,
                        two_k.min(model.experts),
                    ) {
                        accurate += 1;
                    }
                    if config.scheme == InferScheme::Lina {
                        match s.phase_two(&p1, &routing) {
                            PhaseTwo::Resume => {
                                layer_time += s.config().resume_time;
                                placement = p1.placement;
                            }
                            PhaseTwo::Finetune(p) => {
                                layer_time += s.config().schedule_time;
                                finetunes += 1;
                                placement = p;
                                swapped_late = true;
                            }
                        }
                    } else {
                        // w/o fine-tuning: trust the estimate blindly.
                        placement = p1.placement;
                    }
                }
            }
        }

        // Dispatch.
        let plan = assign_replicas(&routing, &placement, topo);
        let d1 = a2a_duration(topo, &plan.sizes, model.token_bytes());
        layer_time += d1;

        // Expert computation per device: sequential over hosted
        // experts, plus weight-swap overhead for packed/late-changed
        // experts.
        let swap = cost.expert_swap(topo.spec().pcie_bw);
        let mut compute_times: Vec<SimDuration> = Vec::with_capacity(devices);
        for d in 0..devices {
            // Packed experts compute one at a time (§6.2); the next
            // expert's weights stream in from host DRAM behind the
            // current expert's computation (double buffering), so only
            // the un-hidden part of each load costs time.
            let mut t = SimDuration::ZERO;
            let mut computed = 0;
            let mut prev_compute = SimDuration::ZERO;
            for e in 0..model.experts {
                let tok = plan.compute[d][e];
                if tok > 0 {
                    if computed > 0 {
                        t += swap.saturating_sub(prev_compute);
                    }
                    let c = cost.expert_fwd(tok);
                    t += c;
                    prev_compute = c;
                    computed += 1;
                }
            }
            if swapped_late && computed > 0 {
                // A post-gate placement change cannot prefetch the
                // first expert's weights.
                t += swap;
            }
            compute_times.push(t);
        }
        let slowest = compute_times
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);
        if slowest > SimDuration::ZERO {
            let fastest = compute_times
                .iter()
                .copied()
                .min()
                .unwrap_or(SimDuration::ZERO);
            let idle = (slowest - fastest).ratio(slowest);
            max_idle_frac = max_idle_frac.max(idle);
        }
        layer_time += slowest;

        // Combine all-to-all back to the token owners.
        let d2 = a2a_duration(topo, &transpose_counts(&plan.sizes), model.token_bytes());
        layer_time += d2;
        let combine = cost.combine(tokens_per_device);
        layer_time += combine;

        // Phase one for the next layer starts as soon as this layer's
        // gate fixed the token paths, and overlaps everything up to the
        // next layer's gate output: dispatch, expert compute, combine,
        // and the next attention + gate. Whatever does not fit in that
        // window blocks the next layer (§6.2: "largely overlapped").
        if layer + 1 < layers
            && matches!(
                config.scheme,
                InferScheme::Lina | InferScheme::LinaNoFinetune
            )
        {
            let s = scheduler.expect("checked above");
            // Tokens' observed paths now include this layer.
            pending_phase_one = s.phase_one(&batch.tokens, layer + 1);
            if pending_phase_one.is_some() {
                let window =
                    d1 + slowest + d2 + combine + cost.attention_fwd(tokens_per_device) + gate;
                unabsorbed_sched = s.config().schedule_time.saturating_sub(window);
            }
        }

        a2a_times.push(d1 + d2);
        layer_times.push(layer_time);
        total += layer_time;
    }

    InferenceReport {
        total,
        layer_times,
        a2a_times,
        finetunes,
        estimates,
        accurate,
        max_idle_frac,
    }
}

/// Aggregated inference statistics over many batches.
pub struct InferenceSummary {
    /// End-to-end batch times (seconds).
    pub totals: Samples,
    /// All per-layer MoE times pooled.
    pub layer_times: Samples,
    /// All per-layer all-to-all times pooled.
    pub a2a_times: Samples,
    /// Layers where phase one produced an estimate, summed over
    /// batches. Zero for the schemes that never estimate (Baseline,
    /// Ideal, w/o estimation) — the rate accessors return `None` then,
    /// so "never estimated" is distinguishable from "estimated and
    /// always resumed".
    pub estimates: usize,
    /// Estimated layers that phase two fine-tuned.
    pub finetunes: usize,
    /// Estimated layers whose estimate matched the actual top-2k.
    pub accurate: usize,
}

impl InferenceSummary {
    /// Fraction of estimated layers that were fine-tuned, or `None` if
    /// no estimates were made.
    pub fn finetune_rate(&self) -> Option<f64> {
        (self.estimates > 0).then(|| self.finetunes as f64 / self.estimates as f64)
    }

    /// Fraction of estimated layers whose estimate matched, or `None`
    /// if no estimates were made.
    pub fn accuracy(&self) -> Option<f64> {
        (self.estimates > 0).then(|| self.accurate as f64 / self.estimates as f64)
    }
}

/// Runs many batches and aggregates.
pub fn run_inference_batches(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batches: &[TokenBatch],
) -> InferenceSummary {
    let mut totals = Samples::new();
    let mut layer_times = Samples::new();
    let mut a2a_times = Samples::new();
    let mut finetunes = 0usize;
    let mut estimates = 0usize;
    let mut accurate = 0usize;
    for batch in batches {
        let r = run_inference_batch(cost, topo, config, scheduler, batch);
        totals.push_duration(r.total);
        for &t in &r.layer_times {
            layer_times.push_duration(t);
        }
        for &t in &r.a2a_times {
            a2a_times.push_duration(t);
        }
        finetunes += r.finetunes;
        estimates += r.estimates;
        accurate += r.accurate;
    }
    InferenceSummary {
        totals,
        layer_times,
        a2a_times,
        estimates,
        finetunes,
        accurate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_core::{PopularityEstimator, TwoPhaseConfig};
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;
    use lina_workload::{Mode, TokenSource, WorkloadSpec};

    fn setup() -> (CostModel, Topology, TwoPhaseScheduler, Vec<TokenBatch>) {
        let model = MoeModelConfig::transformer_xl(12, 16).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(16));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(16, 12);
        let mut src = TokenSource::new(&spec, 1, 7);
        let profile: Vec<TokenBatch> = (0..8)
            .map(|_| src.sample_batch(16, 1024, Mode::Train))
            .collect();
        let estimator = PopularityEstimator::profile(&profile, 3);
        // Tests run a quarter of the paper's batch (4k tokens/device),
        // so the fixed scheduling overheads scale down accordingly.
        let mut cfg = TwoPhaseConfig::paper_defaults(16);
        cfg.schedule_time = SimDuration::from_micros(1550);
        cfg.resume_time = SimDuration::from_micros(360);
        let scheduler = TwoPhaseScheduler::new(cfg, estimator);
        let mut infer = TokenSource::new(&spec, 1, 1234);
        let batches: Vec<TokenBatch> = (0..6)
            .map(|_| infer.sample_batch(16, 4096, Mode::Inference))
            .collect();
        (cost, topo, scheduler, batches)
    }

    #[test]
    fn ideal_beats_baseline() {
        let (cost, topo, _, batches) = setup();
        let base = run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Baseline,
                top_k: 1,
            },
            None,
            &batches[0],
        );
        let ideal = run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Ideal,
                top_k: 1,
            },
            None,
            &batches[0],
        );
        assert!(
            ideal.total < base.total,
            "ideal {} >= baseline {}",
            ideal.total,
            base.total
        );
        assert!(base.max_idle_frac > 0.2, "skew should idle devices");
        assert!(ideal.max_idle_frac < 0.05, "ideal is balanced");
    }

    #[test]
    fn lina_between_ideal_and_baseline() {
        let (cost, topo, sched, batches) = setup();
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches,
            )
        };
        let mut base = run(InferScheme::Baseline);
        let mut ideal = run(InferScheme::Ideal);
        let mut lina = run(InferScheme::Lina);
        let (b, i, l) = (
            base.totals.median(),
            ideal.totals.median(),
            lina.totals.median(),
        );
        assert!(l < b, "lina {l} >= baseline {b}");
        assert!(i <= l * 1.01, "ideal {i} > lina {l}");
    }

    #[test]
    fn lina_estimates_and_sometimes_finetunes() {
        let (cost, topo, sched, batches) = setup();
        let s = run_inference_batches(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Lina,
                top_k: 1,
            },
            Some(&sched),
            &batches,
        );
        let accuracy = s.accuracy().expect("lina estimates");
        let ft_rate = s.finetune_rate().expect("lina estimates");
        assert!(accuracy > 0.3, "accuracy {accuracy}");
        assert!(ft_rate < 0.9, "finetune rate {ft_rate}");
        // Fine-tuning triggers on *significant* deviations only, so it
        // fires at most as often as the strict accuracy metric misses.
        assert!(
            ft_rate <= (1.0 - accuracy) + 1e-9,
            "ft rate {ft_rate} vs inaccuracy {}",
            1.0 - accuracy
        );
    }

    #[test]
    fn no_estimation_is_slower_than_lina() {
        let (cost, topo, sched, batches) = setup();
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches,
            )
        };
        let mut lina = run(InferScheme::Lina);
        let mut noest = run(InferScheme::LinaNoEstimation);
        assert!(
            noest.totals.median() > lina.totals.median(),
            "w/o estimation {} <= lina {}",
            noest.totals.median(),
            lina.totals.median()
        );
    }

    #[test]
    fn no_finetune_hurts_tail_more_than_median() {
        let (cost, topo, sched, batches) = setup();
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches,
            )
        };
        let lina = run(InferScheme::Lina);
        let noft = run(InferScheme::LinaNoFinetune);
        // Without the check there is no resume cost, so the median can
        // even improve; but unchecked misestimates make the *relative*
        // per-layer tail worse than Lina's.
        let rel = |mut s: lina_simcore::Samples| s.p95() / s.median().max(1e-12);
        assert!(
            rel(noft.layer_times) >= rel(lina.layer_times) * 0.95,
            "w/o ft relative tail unexpectedly better than lina's"
        );
    }

    #[test]
    fn non_estimating_schemes_report_no_estimates() {
        let (cost, topo, sched, batches) = setup();
        for scheme in [
            InferScheme::Baseline,
            InferScheme::Ideal,
            InferScheme::LinaNoEstimation,
        ] {
            let s = run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches[..1],
            );
            assert_eq!(s.estimates, 0, "{scheme:?}");
            assert_eq!(s.accuracy(), None, "{scheme:?}");
            assert_eq!(s.finetune_rate(), None, "{scheme:?}");
        }
    }

    #[test]
    fn report_shapes() {
        let (cost, topo, sched, batches) = setup();
        let r = run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Lina,
                top_k: 1,
            },
            Some(&sched),
            &batches[0],
        );
        assert_eq!(r.layer_times.len(), 12);
        assert_eq!(r.a2a_times.len(), 12);
        // Estimation covers layers l..layers-1 = 3..=11.
        assert_eq!(r.estimates, 9);
        assert!(r.total > SimDuration::ZERO);
    }

    /// Regression: a batch with fewer tokens than devices used to get
    /// `tokens_per_device = 0` from floor division and thus zero
    /// attention/gate/combine cost. The busiest device's share is now
    /// a ceiling, so even a 1-token batch pays for the non-MoE ops.
    #[test]
    fn sub_device_count_batch_pays_non_moe_cost() {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        let mut src = TokenSource::new(&spec, 1, 99);
        // One request of a single token on 8 devices.
        let tiny = TokenBatch {
            tokens: src.sample_batch(1, 1, Mode::Inference).tokens,
            devices: topo.devices(),
            experts: spec.experts,
        };
        assert!(tiny.len() < topo.devices());
        let config = InferenceConfig {
            scheme: InferScheme::Baseline,
            top_k: 1,
        };
        let r = run_inference_batch(&cost, &topo, &config, None, &tiny);
        // Attention runs outside the per-layer MoE accounting, so the
        // total in excess of the layer times is exactly the attention
        // cost. It must exceed the zero-token floor (the fixed kernel
        // overhead a `tokens_per_device = 0` run still pays): floor
        // division used to make a sub-device-count batch's attention,
        // gate, and combine token-free.
        let moe: SimDuration = r.layer_times.iter().copied().sum();
        let attention = r.total - moe;
        let zero_floor = cost.attention_fwd(0).mul_f64(cost.model.layers as f64);
        assert!(
            attention > zero_floor,
            "attention {attention} must carry real token cost (zero-token floor {zero_floor})"
        );
        // One token ceil-divided over 8 devices is one token on the
        // busiest device: the attention total is exactly that cost.
        let expected = cost.attention_fwd(1).mul_f64(cost.model.layers as f64);
        assert_eq!(attention, expected);
        // The gate + combine live inside layer_times; with one token
        // they must also be non-zero, so every layer time is positive.
        for (l, &t) in r.layer_times.iter().enumerate() {
            assert!(t > SimDuration::ZERO, "layer {l} is free");
        }
    }

    /// Batch cost is monotone in batch size: more tokens never cost
    /// less (remainder tokens used to be dropped from compute).
    #[test]
    fn batch_cost_is_monotone_in_batch_size() {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        let config = InferenceConfig {
            scheme: InferScheme::Baseline,
            top_k: 1,
        };
        let mut src = TokenSource::new(&spec, 1, 42);
        // One growing token pool, truncated to nested prefixes: batch
        // k's tokens are a superset of batch k-1's.
        let pool = src.sample_batch(1, 64, Mode::Inference).tokens;
        let mut prev = SimDuration::ZERO;
        for n in [1usize, 2, 5, 8, 9, 16, 33, 64] {
            let batch = TokenBatch {
                tokens: pool[..n].to_vec(),
                devices: topo.devices(),
                experts: spec.experts,
            };
            let r = run_inference_batch(&cost, &topo, &config, None, &batch);
            assert!(
                r.total >= prev,
                "cost not monotone: {n} tokens cost {} < smaller batch {}",
                r.total,
                prev
            );
            prev = r.total;
        }
    }

    #[test]
    #[should_panic(expected = "requires a scheduler")]
    fn lina_without_scheduler_panics() {
        let (cost, topo, _, batches) = setup();
        run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Lina,
                top_k: 1,
            },
            None,
            &batches[0],
        );
    }
}
