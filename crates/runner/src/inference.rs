//! Inference-batch driver.
//!
//! Simulates one batch through every MoE layer of a model under a
//! scheme from Figure 16 (Baseline, Ideal, Lina, and the two Lina
//! ablations). Inference is synchronous layer by layer — attention,
//! gate, (scheduling), dispatch all-to-all, per-device expert compute,
//! combine all-to-all, combine.
//!
//! Lina's phase one runs overlapped with the previous layer's expert
//! computation; only the part of the scheduling time that exceeds the
//! overlap window blocks. Phase two blocks for the resume broadcast or,
//! on a fine-tune, the full scheduling time (§6.2, §7.3.1).
//!
//! The heavy lifting lives in two layers underneath this entry point:
//! [`crate::plan::plan_batch`] lowers the batch's scheduling decisions
//! into an [`crate::plan::ExecutionPlan`], and
//! [`crate::exec::execute_plan_solo`] prices its stages with solo
//! (uncontended) collectives. `run_inference_batch` is the convenience
//! wrapper gluing the two with a fresh timer.

use lina_core::TwoPhaseScheduler;
use lina_model::CostModel;
use lina_netsim::{SoloTimer, Topology};
use lina_simcore::{Samples, SimDuration};
use lina_workload::TokenBatch;

use crate::exec::execute_plan_solo;
use crate::plan::plan_batch;

pub use lina_baselines::InferScheme;

/// Per-batch measurements.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// End-to-end batch time.
    pub total: SimDuration,
    /// Per-layer MoE time (gate through combine, including scheduling).
    pub layer_times: Vec<SimDuration>,
    /// Per-layer all-to-all time (dispatch plus combine).
    pub a2a_times: Vec<SimDuration>,
    /// Layers where phase two fine-tuned the placement.
    pub finetunes: usize,
    /// Layers where an estimate was produced.
    pub estimates: usize,
    /// Layers where the estimate matched the actual top-2k.
    pub accurate: usize,
    /// Largest per-layer idle fraction of the least-loaded device
    /// (the §2.2 straggler measurement).
    pub max_idle_frac: f64,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct InferenceConfig {
    /// Scheme under test.
    pub scheme: InferScheme,
    /// Gate fan-out (1 in the paper's inference).
    pub top_k: usize,
}

/// Runs one batch under the scheme; `scheduler` is required for the
/// Lina schemes and ignored by Baseline/Ideal.
///
/// Equivalent to lowering with [`plan_batch`] and pricing with
/// [`execute_plan_solo`] on a fresh timer; callers running many batches
/// should do that themselves and reuse the timer (as
/// [`run_inference_batches`] does).
///
/// # Panics
///
/// Panics if a Lina scheme is requested without a scheduler.
pub fn run_inference_batch(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batch: &TokenBatch,
) -> InferenceReport {
    let plan = plan_batch(cost, topo, config, scheduler, batch);
    execute_plan_solo(&plan, &mut SoloTimer::new(topo))
}

/// Aggregated inference statistics over many batches.
pub struct InferenceSummary {
    /// End-to-end batch times (seconds).
    pub totals: Samples,
    /// All per-layer MoE times pooled.
    pub layer_times: Samples,
    /// All per-layer all-to-all times pooled.
    pub a2a_times: Samples,
    /// Layers where phase one produced an estimate, summed over
    /// batches. Zero for the schemes that never estimate (Baseline,
    /// Ideal, w/o estimation) — the rate accessors return `None` then,
    /// so "never estimated" is distinguishable from "estimated and
    /// always resumed".
    pub estimates: usize,
    /// Estimated layers that phase two fine-tuned.
    pub finetunes: usize,
    /// Estimated layers whose estimate matched the actual top-2k.
    pub accurate: usize,
}

impl InferenceSummary {
    /// Fraction of estimated layers that were fine-tuned, or `None` if
    /// no estimates were made.
    pub fn finetune_rate(&self) -> Option<f64> {
        (self.estimates > 0).then(|| self.finetunes as f64 / self.estimates as f64)
    }

    /// Fraction of estimated layers whose estimate matched, or `None`
    /// if no estimates were made.
    pub fn accuracy(&self) -> Option<f64> {
        (self.estimates > 0).then(|| self.accurate as f64 / self.estimates as f64)
    }
}

/// Runs many batches and aggregates.
pub fn run_inference_batches(
    cost: &CostModel,
    topo: &Topology,
    config: &InferenceConfig,
    scheduler: Option<&TwoPhaseScheduler>,
    batches: &[TokenBatch],
) -> InferenceSummary {
    let mut totals = Samples::new();
    let mut layer_times = Samples::new();
    let mut a2a_times = Samples::new();
    let mut finetunes = 0usize;
    let mut estimates = 0usize;
    let mut accurate = 0usize;
    let mut timer = SoloTimer::new(topo);
    for batch in batches {
        let plan = plan_batch(cost, topo, config, scheduler, batch);
        let r = execute_plan_solo(&plan, &mut timer);
        totals.push_duration(r.total);
        for &t in &r.layer_times {
            layer_times.push_duration(t);
        }
        for &t in &r.a2a_times {
            a2a_times.push_duration(t);
        }
        finetunes += r.finetunes;
        estimates += r.estimates;
        accurate += r.accurate;
    }
    InferenceSummary {
        totals,
        layer_times,
        a2a_times,
        estimates,
        finetunes,
        accurate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_core::{PopularityEstimator, TwoPhaseConfig};
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;
    use lina_workload::{Mode, TokenSource, WorkloadSpec};

    fn setup() -> (CostModel, Topology, TwoPhaseScheduler, Vec<TokenBatch>) {
        let model = MoeModelConfig::transformer_xl(12, 16).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(16));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(16, 12);
        let mut src = TokenSource::new(&spec, 1, 7);
        let profile: Vec<TokenBatch> = (0..8)
            .map(|_| src.sample_batch(16, 1024, Mode::Train))
            .collect();
        let estimator = PopularityEstimator::profile(&profile, 3);
        // Tests run a quarter of the paper's batch (4k tokens/device),
        // so the fixed scheduling overheads scale down accordingly.
        let mut cfg = TwoPhaseConfig::paper_defaults(16);
        cfg.schedule_time = SimDuration::from_micros(1550);
        cfg.resume_time = SimDuration::from_micros(360);
        let scheduler = TwoPhaseScheduler::new(cfg, estimator);
        let mut infer = TokenSource::new(&spec, 1, 1234);
        let batches: Vec<TokenBatch> = (0..6)
            .map(|_| infer.sample_batch(16, 4096, Mode::Inference))
            .collect();
        (cost, topo, scheduler, batches)
    }

    #[test]
    fn ideal_beats_baseline() {
        let (cost, topo, _, batches) = setup();
        let base = run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Baseline,
                top_k: 1,
            },
            None,
            &batches[0],
        );
        let ideal = run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Ideal,
                top_k: 1,
            },
            None,
            &batches[0],
        );
        assert!(
            ideal.total < base.total,
            "ideal {} >= baseline {}",
            ideal.total,
            base.total
        );
        assert!(base.max_idle_frac > 0.2, "skew should idle devices");
        assert!(ideal.max_idle_frac < 0.05, "ideal is balanced");
    }

    #[test]
    fn lina_between_ideal_and_baseline() {
        let (cost, topo, sched, batches) = setup();
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches,
            )
        };
        let mut base = run(InferScheme::Baseline);
        let mut ideal = run(InferScheme::Ideal);
        let mut lina = run(InferScheme::Lina);
        let (b, i, l) = (
            base.totals.median(),
            ideal.totals.median(),
            lina.totals.median(),
        );
        assert!(l < b, "lina {l} >= baseline {b}");
        assert!(i <= l * 1.01, "ideal {i} > lina {l}");
    }

    #[test]
    fn lina_estimates_and_sometimes_finetunes() {
        let (cost, topo, sched, batches) = setup();
        let s = run_inference_batches(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Lina,
                top_k: 1,
            },
            Some(&sched),
            &batches,
        );
        let accuracy = s.accuracy().expect("lina estimates");
        let ft_rate = s.finetune_rate().expect("lina estimates");
        assert!(accuracy > 0.3, "accuracy {accuracy}");
        assert!(ft_rate < 0.9, "finetune rate {ft_rate}");
        // Fine-tuning triggers on *significant* deviations only, so it
        // fires at most as often as the strict accuracy metric misses.
        assert!(
            ft_rate <= (1.0 - accuracy) + 1e-9,
            "ft rate {ft_rate} vs inaccuracy {}",
            1.0 - accuracy
        );
    }

    #[test]
    fn no_estimation_is_slower_than_lina() {
        let (cost, topo, sched, batches) = setup();
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches,
            )
        };
        let mut lina = run(InferScheme::Lina);
        let mut noest = run(InferScheme::LinaNoEstimation);
        assert!(
            noest.totals.median() > lina.totals.median(),
            "w/o estimation {} <= lina {}",
            noest.totals.median(),
            lina.totals.median()
        );
    }

    #[test]
    fn no_finetune_hurts_tail_more_than_median() {
        let (cost, topo, sched, batches) = setup();
        let run = |scheme| {
            run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches,
            )
        };
        let lina = run(InferScheme::Lina);
        let noft = run(InferScheme::LinaNoFinetune);
        // Without the check there is no resume cost, so the median can
        // even improve; but unchecked misestimates make the *relative*
        // per-layer tail worse than Lina's.
        let rel = |mut s: lina_simcore::Samples| s.p95() / s.median().max(1e-12);
        assert!(
            rel(noft.layer_times) >= rel(lina.layer_times) * 0.95,
            "w/o ft relative tail unexpectedly better than lina's"
        );
    }

    #[test]
    fn non_estimating_schemes_report_no_estimates() {
        let (cost, topo, sched, batches) = setup();
        for scheme in [
            InferScheme::Baseline,
            InferScheme::Ideal,
            InferScheme::LinaNoEstimation,
        ] {
            let s = run_inference_batches(
                &cost,
                &topo,
                &InferenceConfig { scheme, top_k: 1 },
                Some(&sched),
                &batches[..1],
            );
            assert_eq!(s.estimates, 0, "{scheme:?}");
            assert_eq!(s.accuracy(), None, "{scheme:?}");
            assert_eq!(s.finetune_rate(), None, "{scheme:?}");
        }
    }

    #[test]
    fn report_shapes() {
        let (cost, topo, sched, batches) = setup();
        let r = run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Lina,
                top_k: 1,
            },
            Some(&sched),
            &batches[0],
        );
        assert_eq!(r.layer_times.len(), 12);
        assert_eq!(r.a2a_times.len(), 12);
        // Estimation covers layers l..layers-1 = 3..=11.
        assert_eq!(r.estimates, 9);
        assert!(r.total > SimDuration::ZERO);
    }

    /// Regression: a batch with fewer tokens than devices used to get
    /// `tokens_per_device = 0` from floor division and thus zero
    /// attention/gate/combine cost. The busiest device's share is now
    /// a ceiling, so even a 1-token batch pays for the non-MoE ops.
    #[test]
    fn sub_device_count_batch_pays_non_moe_cost() {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        let mut src = TokenSource::new(&spec, 1, 99);
        // One request of a single token on 8 devices.
        let tiny = TokenBatch {
            tokens: src.sample_batch(1, 1, Mode::Inference).tokens,
            devices: topo.devices(),
            experts: spec.experts,
        };
        assert!(tiny.len() < topo.devices());
        let config = InferenceConfig {
            scheme: InferScheme::Baseline,
            top_k: 1,
        };
        let r = run_inference_batch(&cost, &topo, &config, None, &tiny);
        // Attention runs outside the per-layer MoE accounting, so the
        // total in excess of the layer times is exactly the attention
        // cost. It must exceed the zero-token floor (the fixed kernel
        // overhead a `tokens_per_device = 0` run still pays): floor
        // division used to make a sub-device-count batch's attention,
        // gate, and combine token-free.
        let moe: SimDuration = r.layer_times.iter().copied().sum();
        let attention = r.total - moe;
        let zero_floor = cost.attention_fwd(0).mul_f64(cost.model.layers as f64);
        assert!(
            attention > zero_floor,
            "attention {attention} must carry real token cost (zero-token floor {zero_floor})"
        );
        // One token ceil-divided over 8 devices is one token on the
        // busiest device: the attention total is exactly that cost.
        let expected = cost.attention_fwd(1).mul_f64(cost.model.layers as f64);
        assert_eq!(attention, expected);
        // The gate + combine live inside layer_times; with one token
        // they must also be non-zero, so every layer time is positive.
        for (l, &t) in r.layer_times.iter().enumerate() {
            assert!(t > SimDuration::ZERO, "layer {l} is free");
        }
    }

    /// Batch cost is monotone in batch size: more tokens never cost
    /// less (remainder tokens used to be dropped from compute).
    #[test]
    fn batch_cost_is_monotone_in_batch_size() {
        let model = MoeModelConfig::transformer_xl(6, 8).for_inference();
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let cost = CostModel::new(DeviceSpec::a100_inference(), model);
        let spec = WorkloadSpec::enwik8(8, 6);
        let config = InferenceConfig {
            scheme: InferScheme::Baseline,
            top_k: 1,
        };
        let mut src = TokenSource::new(&spec, 1, 42);
        // One growing token pool, truncated to nested prefixes: batch
        // k's tokens are a superset of batch k-1's.
        let pool = src.sample_batch(1, 64, Mode::Inference).tokens;
        let mut prev = SimDuration::ZERO;
        for n in [1usize, 2, 5, 8, 9, 16, 33, 64] {
            let batch = TokenBatch {
                tokens: pool[..n].to_vec(),
                devices: topo.devices(),
                experts: spec.experts,
            };
            let r = run_inference_batch(&cost, &topo, &config, None, &batch);
            assert!(
                r.total >= prev,
                "cost not monotone: {n} tokens cost {} < smaller batch {}",
                r.total,
                prev
            );
            prev = r.total;
        }
    }

    #[test]
    #[should_panic(expected = "requires a scheduler")]
    fn lina_without_scheduler_panics() {
        let (cost, topo, _, batches) = setup();
        run_inference_batch(
            &cost,
            &topo,
            &InferenceConfig {
                scheme: InferScheme::Lina,
                top_k: 1,
            },
            None,
            &batches[0],
        );
    }
}
