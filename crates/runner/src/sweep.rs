//! Parallel experiment execution.
//!
//! Benchmark binaries sweep many (model, scheme, seed) configurations;
//! each simulation is independent and deterministic, so they fan out
//! over threads. Work items are generated up front (deterministically)
//! and results return in input order regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` using up to `threads` worker threads,
/// preserving input order in the output. With `threads <= 1` this
/// degenerates to a plain serial map.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    // Workers pull the next unclaimed index and send back
    // index-stamped results; stamping makes output order independent
    // of completion order.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                // The receiver outlives the scope, so send only fails
                // if it was dropped early — which cannot happen here.
                let _ = tx.send((i, r));
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn preserves_order_with_adversarial_completion_times() {
        // Early items sleep longest, so later items finish first and
        // the channel receives results far out of input order.
        let items: Vec<u64> = (0..24).collect();
        let out = parallel_map(&items, 6, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(24 - x));
            x * 10
        });
        let expected: Vec<u64> = items.iter().map(|&x| x * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn serial_path_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            parallel_map(&items, 1, |&x| x + 1),
            parallel_map(&items, 4, |&x| x + 1)
        );
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![1, 2];
        let out = parallel_map(&items, 64, |&x| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
