//! A memoization cache for [`crate::plan_batch`].
//!
//! Planning is pure: for a fixed cost model, topology, inference
//! config, and scheduler state, the same batch content always lowers to
//! the same [`ExecutionPlan`]. The serving cluster re-plans thousands
//! of batches per run, and under the `Ideal` scheme (a balanced gate)
//! the plan depends only on the batch *size* — so a cache turns the
//! dominant cost of the serving hot path into a hash lookup.
//!
//! Correctness hinges on the key capturing everything the planner
//! reads:
//!
//! * **scheme + top_k** — the inference config,
//! * **epoch** — a counter the owner bumps whenever the scheduler's
//!   observable state changes (periodic re-estimation, emergency
//!   re-placement after device loss). Schemes without a scheduler never
//!   bump it.
//! * **content** — a 128-bit FNV-1a digest of the batch: its length
//!   and, for schemes that read token paths, every token's class and
//!   expert selections. `Ideal` hashes only the length, because a
//!   balanced gate ignores the actual paths — which is exactly why its
//!   hit rate approaches 100%.
//! * **placement** — a 128-bit digest of the per-layer base placement
//!   and the locality-pricing toggle (see [`hash_layered_placement`]);
//!   0 for the canonical static map. Two runs' dispatches that share
//!   scheduler state and batch content but plan against different
//!   layered placements must never share a plan.
//!
//! Cached plans are [`Arc`]-shared: executors downstream memoize their
//! own pure per-plan work (solo pricing) by `Arc` identity, so a cache
//! hit also skips re-pricing.

use std::collections::HashMap;
use std::sync::Arc;

use lina_baselines::InferScheme;
use lina_model::LayeredPlacement;
use lina_workload::TokenPath;

use crate::plan::ExecutionPlan;

/// Cache key: everything [`crate::plan_batch`] reads that can vary
/// across submissions within one run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey {
    /// Inference scheme the batch was planned under.
    pub scheme: InferScheme,
    /// Experts per token.
    pub top_k: usize,
    /// Scheduler-state epoch (0 for scheduler-less schemes).
    pub epoch: u64,
    /// 128-bit digest of the batch content (see [`hash_batch_content`]).
    pub content: u128,
    /// 128-bit digest of the per-layer base placement and locality
    /// toggle (see [`hash_layered_placement`]); 0 for the canonical
    /// static map without locality pricing.
    pub placement: u128,
}

/// Hit/miss counters, surfaced in the `perf_microbench` scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a cached plan.
    pub hits: u64,
    /// Lookups that missed (the caller plans and inserts).
    pub misses: u64,
}

impl PlanCacheStats {
    /// Hit fraction in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Entry cap: planning state is epoch-versioned, so stale entries are
/// unreachable garbage; clearing wholesale on overflow keeps the cache
/// bounded without an eviction order to maintain.
const CACHE_CAP: usize = 1024;

/// The plan cache. One instance per cluster run.
#[derive(Default)]
pub struct PlanCache {
    map: HashMap<PlanKey, Arc<ExecutionPlan>>,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Looks up a plan, counting the hit or miss.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<ExecutionPlan>> {
        match self.map.get(key) {
            Some(plan) => {
                self.stats.hits += 1;
                Some(plan.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly planned batch.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<ExecutionPlan>) {
        if self.map.len() >= CACHE_CAP {
            self.map.clear();
        }
        self.map.insert(key, plan);
    }

    /// Counters since construction.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a over `u64` words. 64-bit digests would
/// make a silent collision (and therefore a wrong cached plan)
/// plausible over billions of batches; at 128 bits it is negligible.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128(FNV128_OFFSET)
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv128::default()
    }

    /// Folds one word into the digest, byte by byte.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

/// Digest of a batch's planner-visible content. `Ideal` plans from the
/// batch length alone (balanced gate); every other scheme reads the
/// token paths, so their classes and per-layer expert selections are
/// folded in.
pub fn hash_batch_content<'a>(
    scheme: InferScheme,
    len: usize,
    tokens: impl IntoIterator<Item = &'a TokenPath>,
) -> u128 {
    let mut h = Fnv128::new();
    h.write_u64(len as u64);
    if scheme != InferScheme::Ideal {
        for tok in tokens {
            h.write_u64(tok.class as u64);
            for layer in &tok.selections {
                h.write_u64(layer.len() as u64);
                for &e in layer {
                    h.write_u64(e as u64);
                }
            }
        }
    }
    h.finish()
}

/// Digest of the planner's base-placement inputs for [`PlanKey`]: the
/// locality-pricing toggle plus, per layer, every expert's replica
/// hosts and share weights. Returns 0 for the canonical configuration
/// (`base: None`, locality off) so legacy keys are unchanged.
pub fn hash_layered_placement(base: Option<&LayeredPlacement>, locality: bool) -> u128 {
    if base.is_none() && !locality {
        return 0;
    }
    let mut h = Fnv128::new();
    h.write_u64(locality as u64);
    if let Some(lp) = base {
        h.write_u64(lp.n_layers() as u64);
        for layer in lp.layers() {
            for (hosts, shares) in layer.hosts.iter().zip(&layer.shares) {
                h.write_u64(hosts.len() as u64);
                for (d, &w) in hosts.iter().zip(shares) {
                    h.write_u64(d.0 as u64);
                    h.write_u64(w.to_bits());
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;
    use lina_model::ExpertPlacement;

    fn dummy_plan(tokens: usize) -> Arc<ExecutionPlan> {
        Arc::new(ExecutionPlan {
            tokens,
            layers: Vec::new(),
            local_hops: 0,
            routed_hops: 0,
        })
    }

    fn key(epoch: u64, content: u128) -> PlanKey {
        PlanKey {
            scheme: InferScheme::Baseline,
            top_k: 1,
            epoch,
            content,
            placement: 0,
        }
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let mut cache = PlanCache::new();
        let k = key(0, 42);
        assert!(cache.get(&k).is_none());
        let plan = dummy_plan(8);
        cache.insert(k, plan.clone());
        let hit = cache.get(&k).expect("inserted");
        assert!(Arc::ptr_eq(&hit, &plan));
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1 });
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_isolates_entries() {
        let mut cache = PlanCache::new();
        cache.insert(key(0, 42), dummy_plan(8));
        assert!(cache.get(&key(1, 42)).is_none());
        assert!(cache.get(&key(0, 42)).is_some());
    }

    #[test]
    fn overflow_clears_rather_than_grows() {
        let mut cache = PlanCache::new();
        for i in 0..(CACHE_CAP + 10) as u128 {
            cache.insert(key(0, i), dummy_plan(1));
        }
        assert!(cache.len() <= CACHE_CAP);
        assert!(!cache.is_empty());
    }

    #[test]
    fn placement_digest_separates_layouts() {
        assert_eq!(
            hash_layered_placement(None, false),
            0,
            "canonical configuration keeps the legacy zero digest"
        );
        assert_ne!(hash_layered_placement(None, true), 0);
        let a = LayeredPlacement::uniform(ExpertPlacement::one_per_device(4, 4), 2);
        let swapped = ExpertPlacement::uniform(
            (0..4u32)
                .map(|e| vec![lina_netsim::DeviceId(3 - e)])
                .collect(),
        );
        let b = LayeredPlacement::uniform(swapped, 2);
        assert_eq!(
            hash_layered_placement(Some(&a), true),
            hash_layered_placement(Some(&a), true)
        );
        assert_ne!(
            hash_layered_placement(Some(&a), true),
            hash_layered_placement(Some(&b), true),
            "different layouts must never share a plan"
        );
        assert_ne!(
            hash_layered_placement(Some(&a), true),
            hash_layered_placement(Some(&a), false),
            "the locality toggle changes pricing, so it changes the key"
        );
    }

    #[test]
    fn ideal_content_ignores_token_paths() {
        let a = TokenPath {
            class: 1,
            selections: vec![vec![0, 3]],
        };
        let b = TokenPath {
            class: 7,
            selections: vec![vec![2, 5]],
        };
        let ha = hash_batch_content(InferScheme::Ideal, 2, [&a, &a]);
        let hb = hash_batch_content(InferScheme::Ideal, 2, [&b, &b]);
        assert_eq!(ha, hb, "Ideal plans depend only on batch length");
        let ba = hash_batch_content(InferScheme::Baseline, 2, [&a, &a]);
        let bb = hash_batch_content(InferScheme::Baseline, 2, [&b, &b]);
        assert_ne!(ba, bb, "content schemes must see the paths");
        assert_ne!(
            hash_batch_content(InferScheme::Ideal, 2, []),
            hash_batch_content(InferScheme::Ideal, 3, []),
            "length is always part of the digest"
        );
    }
}
