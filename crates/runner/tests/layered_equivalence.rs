//! Zero-tolerance equivalence pins for the layered-placement planner
//! entry point.
//!
//! [`plan_batch_layered`] generalizes [`plan_batch_on`] from one shard
//! map shared by every layer to a first-class per-layer placement plus
//! an optional locality-aware pricing mode. The contract: with
//! locality off, a [`LayeredPlacement::uniform`] base must reproduce
//! the single-map plan *exactly* — every duration, every collective
//! spec, every flag — and `base: None` must reproduce [`plan_batch`].
//! The comparison hashes the full `Debug` rendering of the plan, so
//! any field drift fails.

use lina_baselines::InferScheme;
use lina_core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina_model::{CostModel, DeviceSpec, ExpertPlacement, LayeredPlacement, MoeModelConfig};
use lina_netsim::{ClusterSpec, Topology};
use lina_runner::inference::InferenceConfig;
use lina_runner::{plan_batch, plan_batch_layered, plan_batch_on, ExecutionPlan};
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

fn fingerprint(plan: &ExecutionPlan) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in format!("{plan:?}").bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn world(experts: usize) -> (CostModel, Topology, TwoPhaseScheduler, Vec<TokenBatch>) {
    let model = MoeModelConfig::transformer_xl(6, experts);
    let layers = model.layers;
    let spec = WorkloadSpec::enwik8(experts, layers);
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model.for_inference());
    let mut profile_src = TokenSource::new(&spec, 1, 0xBEEF);
    let profile: Vec<TokenBatch> = (0..4)
        .map(|_| profile_src.sample_batch(experts, 1024, Mode::Train))
        .collect();
    let estimator = PopularityEstimator::profile(&profile, 3);
    let scheduler = TwoPhaseScheduler::new(TwoPhaseConfig::paper_defaults(experts), estimator);
    let mut infer_src = TokenSource::new(&spec, 1, 0xCAFE);
    let batches = (0..3)
        .map(|_| infer_src.sample_batch(experts, 1024, Mode::Inference))
        .collect();
    (cost, topo, scheduler, batches)
}

/// `base: None, locality: false` is `plan_batch`, bit for bit, for
/// every scheme.
#[test]
fn layered_none_matches_plan_batch() {
    for experts in [4usize, 8] {
        let (cost, topo, scheduler, batches) = world(experts);
        for scheme in InferScheme::all() {
            let config = InferenceConfig { scheme, top_k: 1 };
            for batch in &batches {
                let plain = plan_batch(&cost, &topo, &config, Some(&scheduler), batch);
                let layered =
                    plan_batch_layered(&cost, &topo, &config, Some(&scheduler), batch, None, false);
                assert_eq!(
                    fingerprint(&plain),
                    fingerprint(&layered),
                    "scheme {} experts {experts}: layered(None) diverged from plan_batch",
                    scheme.name()
                );
                assert_eq!((layered.local_hops, layered.routed_hops), (0, 0));
            }
        }
    }
}

/// A uniform layered base with locality off is `plan_batch_on` with
/// the same single map — including maps with replicated experts, the
/// shape proactive re-sharding publishes.
#[test]
fn uniform_layered_matches_single_map() {
    for experts in [4usize, 8] {
        let (cost, topo, scheduler, batches) = world(experts);
        let mut replicated = ExpertPlacement::one_per_device(experts, experts);
        assert!(replicated.add_replica(0, experts, 2));
        for map in [
            ExpertPlacement::one_per_device(experts, experts),
            replicated,
        ] {
            let uniform = LayeredPlacement::uniform(map.clone(), cost.model.layers);
            for scheme in InferScheme::all() {
                let config = InferenceConfig { scheme, top_k: 1 };
                for batch in &batches {
                    let single =
                        plan_batch_on(&cost, &topo, &config, Some(&scheduler), batch, Some(&map));
                    let layered = plan_batch_layered(
                        &cost,
                        &topo,
                        &config,
                        Some(&scheduler),
                        batch,
                        Some(&uniform),
                        false,
                    );
                    assert_eq!(
                        fingerprint(&single),
                        fingerprint(&layered),
                        "scheme {} experts {experts}: uniform layered diverged",
                        scheme.name()
                    );
                }
            }
        }
    }
}

/// Locality pricing only removes dispatch bytes: with every expert on
/// every token's home unreachable (one expert per device, tokens
/// spread), turning locality on must never *slow* a plan, and on a
/// single-device topology every hop is local.
#[test]
fn locality_counts_hops_and_never_adds_bytes() {
    let experts = 8usize;
    let (cost, topo, scheduler, batches) = world(experts);
    let base = LayeredPlacement::uniform(
        ExpertPlacement::one_per_device(experts, experts),
        cost.model.layers,
    );
    for scheme in InferScheme::all() {
        let config = InferenceConfig { scheme, top_k: 1 };
        for batch in &batches {
            let off = plan_batch_layered(
                &cost,
                &topo,
                &config,
                Some(&scheduler),
                batch,
                Some(&base),
                false,
            );
            let on = plan_batch_layered(
                &cost,
                &topo,
                &config,
                Some(&scheduler),
                batch,
                Some(&base),
                true,
            );
            assert_eq!((off.local_hops, off.routed_hops), (0, 0));
            if scheme == InferScheme::Ideal {
                // Ideal's balanced gate is synthetic routing: locality
                // pricing is disabled, so the plans are identical.
                assert_eq!(fingerprint(&off), fingerprint(&on));
                continue;
            }
            assert!(
                on.local_hops + on.routed_hops > 0,
                "locality pricing must count every primary hop"
            );
            for (l_off, l_on) in off.layers.iter().zip(&on.layers) {
                let bytes = |spec: &Option<lina_netsim::CollectiveSpec>| match spec {
                    Some(lina_netsim::CollectiveSpec::AllToAll { sizes, .. }) => {
                        sizes.iter().flatten().sum::<f64>()
                    }
                    _ => 0.0,
                };
                assert!(
                    bytes(&l_on.dispatch) <= bytes(&l_off.dispatch),
                    "locality pricing added dispatch bytes"
                );
                assert_eq!(
                    bytes(&l_on.combine_a2a),
                    bytes(&l_off.combine_a2a),
                    "combine pricing must be untouched"
                );
            }
        }
    }
}
