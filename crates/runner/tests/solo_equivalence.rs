//! Bit-for-bit equivalence pin for the planner/executor refactor.
//!
//! The fingerprints below were captured from `run_inference_batch`
//! *before* `crates/runner/src/inference.rs` was split into a planner
//! (`plan.rs`) and pluggable executors (`exec.rs`). Every scheme of the
//! Figure 16 grid — both models, both expert counts — must keep
//! producing the exact same reports through the `SoloExecutor` path:
//! total, per-layer times, all-to-all times, estimate/fine-tune
//! counters, and the idle-fraction float, down to the last bit.
//!
//! If an intentional cost-model change invalidates these constants,
//! re-capture them by running the test with `--nocapture` and pasting
//! the printed table (every mismatch prints its actual value).

use lina_baselines::InferScheme;
use lina_core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina_model::{CostModel, DeviceSpec, MoeModelConfig};
use lina_netsim::{ClusterSpec, Topology};
use lina_runner::inference::{run_inference_batch, InferenceConfig};
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

/// FNV-1a, the same dependency-free hash used elsewhere in the repo.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Mirrors `lina_bench::inference_setup_sized` (profiling on the
/// training distribution, inference on the skewed stream) at a size
/// small enough for a unit test.
fn grid_case(
    model: MoeModelConfig,
    experts: usize,
) -> (CostModel, Topology, TwoPhaseScheduler, Vec<TokenBatch>) {
    let layers = model.layers;
    let spec = match model.name.as_str() {
        "BERT-Large" => WorkloadSpec::wmt_en_de(experts, layers),
        _ => WorkloadSpec::enwik8(experts, layers),
    };
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model.for_inference());
    let mut profile_src = TokenSource::new(&spec, 1, 0xBEEF);
    let profile: Vec<TokenBatch> = (0..6)
        .map(|_| profile_src.sample_batch(experts, 2048, Mode::Train))
        .collect();
    let estimator = PopularityEstimator::profile(&profile, 3);
    let scheduler = TwoPhaseScheduler::new(TwoPhaseConfig::paper_defaults(experts), estimator);
    let mut infer_src = TokenSource::new(&spec, 1, 0xCAFE);
    let batches = (0..3)
        .map(|_| infer_src.sample_batch(experts, 2048, Mode::Inference))
        .collect();
    (cost, topo, scheduler, batches)
}

/// One number summarizing every field of every batch report for a
/// (model, experts, scheme) cell.
fn fingerprint(
    cost: &CostModel,
    topo: &Topology,
    scheduler: &TwoPhaseScheduler,
    batches: &[TokenBatch],
    scheme: InferScheme,
) -> u64 {
    let config = InferenceConfig { scheme, top_k: 1 };
    let mut h = Fnv::new();
    for batch in batches {
        let r = run_inference_batch(cost, topo, &config, Some(scheduler), batch);
        h.write_u64(r.total.as_nanos());
        for &t in &r.layer_times {
            h.write_u64(t.as_nanos());
        }
        for &t in &r.a2a_times {
            h.write_u64(t.as_nanos());
        }
        h.write_u64(r.finetunes as u64);
        h.write_u64(r.estimates as u64);
        h.write_u64(r.accurate as u64);
        h.write_u64(r.max_idle_frac.to_bits());
    }
    h.0
}

#[test]
fn fig16_grid_matches_pre_refactor_reports() {
    // (model label, experts, scheme name, fingerprint) — captured
    // before the planner/executor split.
    let expected: &[(&str, usize, &str, u64)] = &[
        ("Transformer-XL", 4, "baseline", 0x22971ae5fbc0ffaf),
        ("Transformer-XL", 4, "ideal", 0x89cb09d601e73061),
        ("Transformer-XL", 4, "lina", 0x95160ea0c8248afa),
        ("Transformer-XL", 4, "lina w/o est", 0xe9ce89e179fd605c),
        ("Transformer-XL", 4, "lina w/o ft", 0xd5ddbee1260cd048),
        ("Transformer-XL", 16, "baseline", 0x72ed710b80fcf50a),
        ("Transformer-XL", 16, "ideal", 0xd17c89b44a3fee0c),
        ("Transformer-XL", 16, "lina", 0x1c744f4b2e88bab3),
        ("Transformer-XL", 16, "lina w/o est", 0xa3479738b50e11f6),
        ("Transformer-XL", 16, "lina w/o ft", 0x468525de1a9295f1),
        ("BERT-Large", 4, "baseline", 0xc2503ea24069b866),
        ("BERT-Large", 4, "ideal", 0xe93964c6ae0dd9f),
        ("BERT-Large", 4, "lina", 0xed58cea4857312e8),
        ("BERT-Large", 4, "lina w/o est", 0x411aa16a923146a0),
        ("BERT-Large", 4, "lina w/o ft", 0xf2e1eecc1f0a0680),
        ("BERT-Large", 16, "baseline", 0x99231524b1227111),
        ("BERT-Large", 16, "ideal", 0xe705e56c57d7df61),
        ("BERT-Large", 16, "lina", 0x15bb76170013d70a),
        ("BERT-Large", 16, "lina w/o est", 0x821acb721fb67704),
        ("BERT-Large", 16, "lina w/o ft", 0x3fd1b731f64ee1ed),
    ];

    let mut mismatches = Vec::new();
    let mut i = 0;
    for (ctor, label) in [
        (
            MoeModelConfig::transformer_xl as fn(usize, usize) -> MoeModelConfig,
            "Transformer-XL",
        ),
        (
            (|_l, e| MoeModelConfig::bert_large(e)) as fn(usize, usize) -> MoeModelConfig,
            "BERT-Large",
        ),
    ] {
        for experts in [4usize, 16] {
            let (cost, topo, scheduler, batches) = grid_case(ctor(12, experts), experts);
            for scheme in InferScheme::all() {
                let got = fingerprint(&cost, &topo, &scheduler, &batches, scheme);
                let (elabel, eexperts, escheme, want) = expected[i];
                assert_eq!((elabel, eexperts, escheme), (label, experts, scheme.name()));
                if got != want {
                    mismatches.push(format!(
                        "        (\"{label}\", {experts}, \"{}\", {got:#x}),",
                        scheme.name()
                    ));
                }
                i += 1;
            }
        }
    }
    assert_eq!(i, expected.len());
    assert!(
        mismatches.is_empty(),
        "fingerprints diverged from the pre-refactor reports; actuals:\n{}",
        mismatches.join("\n")
    );
}
