//! Property-based tests of the network simulator: the fair-share
//! allocator's classic invariants and flow-level conservation.

use proptest::prelude::*;

use lina_netsim::{
    max_min_rates, AllToAllAlgo, ClusterSpec, CollectiveEngine, CollectiveSpec, DeviceId,
    FlowDemand, FlowSpec, Network, Topology,
};
use lina_simcore::SimDuration;

fn arb_paths(links: usize, flows: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..links as u32, 1..4),
        1..flows,
    )
    .prop_map(|paths| {
        paths
            .into_iter()
            .map(|mut p| {
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No link is ever oversubscribed, and every flow is bottlenecked
    /// somewhere (work conservation / max-min optimality).
    #[test]
    fn max_min_capacity_and_work_conservation(
        caps in proptest::collection::vec(0.1f64..100.0, 2..12),
        paths in arb_paths(2, 16),
    ) {
        let paths: Vec<Vec<u32>> = paths
            .into_iter()
            .map(|p| p.into_iter().filter(|&l| (l as usize) < caps.len()).collect::<Vec<_>>())
            .filter(|p: &Vec<u32>| !p.is_empty())
            .collect();
        prop_assume!(!paths.is_empty());
        let flows: Vec<FlowDemand<'_>> =
            paths.iter().map(|p| FlowDemand { weight: 1.0, links: p }).collect();
        let rates = max_min_rates(&caps, &flows);
        // Capacity.
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.links.contains(&(l as u32)))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(load <= cap * (1.0 + 1e-9), "link {l}: {load} > {cap}");
        }
        // Work conservation: each flow saturates at least one link.
        for f in &flows {
            let bottlenecked = f.links.iter().any(|&l| {
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                load >= caps[l as usize] * (1.0 - 1e-6)
            });
            prop_assert!(bottlenecked);
        }
    }

    /// Doubling every capacity doubles every rate (scale invariance).
    #[test]
    fn max_min_scale_invariance(
        caps in proptest::collection::vec(0.1f64..50.0, 2..8),
        paths in arb_paths(2, 8),
    ) {
        let paths: Vec<Vec<u32>> = paths
            .into_iter()
            .map(|p| p.into_iter().filter(|&l| (l as usize) < caps.len()).collect::<Vec<_>>())
            .filter(|p: &Vec<u32>| !p.is_empty())
            .collect();
        prop_assume!(!paths.is_empty());
        let flows: Vec<FlowDemand<'_>> =
            paths.iter().map(|p| FlowDemand { weight: 1.0, links: p }).collect();
        let rates = max_min_rates(&caps, &flows);
        let doubled: Vec<f64> = caps.iter().map(|c| c * 2.0).collect();
        let rates2 = max_min_rates(&doubled, &flows);
        for (r, r2) in rates.iter().zip(&rates2) {
            prop_assert!((r2 - 2.0 * r).abs() <= 1e-6 * r2.max(1.0));
        }
    }

    /// Flows finish in finite time and the network goes idle; total
    /// delivered bytes equal the sum of payloads.
    #[test]
    fn flows_drain_completely(
        specs in proptest::collection::vec((0u32..16, 0u32..16, 1.0f64..1e8), 1..12)
    ) {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let mut net = Network::new(topo);
        let mut total = 0.0;
        for (src, dst, bytes) in specs {
            total += bytes;
            net.start_flow(FlowSpec {
                src: DeviceId(src),
                dst: DeviceId(dst),
                bytes,
                weight: 1.0,
                extra_latency: SimDuration::ZERO,
                tag: 0,
            });
        }
        let end = net.run_to_idle();
        prop_assert!(end.is_some());
        prop_assert_eq!(net.active_flows(), 0);
        let delivered = net.stats().bytes_delivered;
        prop_assert!((delivered - total).abs() <= 1e-6 * total.max(1.0));
    }

    /// All-to-all completion time never decreases when payloads grow.
    #[test]
    fn a2a_time_is_monotone_in_size(base in 1e4f64..1e7, extra in 0.0f64..1e7) {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let run = |per_pair: f64| {
            let mut e = CollectiveEngine::new(Network::new(topo.clone()));
            e.start(
                &CollectiveSpec::uniform_all_to_all(
                    topo.device_ids().collect(),
                    per_pair,
                    AllToAllAlgo::Flat,
                ),
                0,
            );
            e.run_to_idle()[0].at
        };
        prop_assert!(run(base + extra) >= run(base));
    }
}
