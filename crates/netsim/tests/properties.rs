//! Randomized property tests of the network simulator: the fair-share
//! allocator's classic invariants and flow-level conservation, swept
//! over deterministically seeded cases.

use lina_netsim::{
    max_min_rates, AllToAllAlgo, ClusterSpec, CollectiveEngine, CollectiveSpec, DeviceId,
    FlowDemand, FlowSpec, Network, Topology,
};
use lina_simcore::{Rng, SimDuration};

fn arb_paths(rng: &mut Rng, links: usize, max_flows: usize) -> Vec<Vec<u32>> {
    let n = 1 + rng.index(max_flows - 1);
    (0..n)
        .map(|_| {
            let len = 1 + rng.index(3);
            let mut p: Vec<u32> = (0..len).map(|_| rng.below(links as u64) as u32).collect();
            p.sort_unstable();
            p.dedup();
            p
        })
        .collect()
}

/// No link is ever oversubscribed, and every flow is bottlenecked
/// somewhere (work conservation / max-min optimality).
#[test]
fn max_min_capacity_and_work_conservation() {
    let mut meta = Rng::new(0x3A3);
    for _ in 0..64 {
        let nlinks = 2 + meta.index(10);
        let caps: Vec<f64> = (0..nlinks).map(|_| meta.uniform(0.1, 100.0)).collect();
        let paths = arb_paths(&mut meta, nlinks, 16);
        let flows: Vec<FlowDemand<'_>> = paths
            .iter()
            .map(|p| FlowDemand {
                weight: 1.0,
                links: p,
            })
            .collect();
        let rates = max_min_rates(&caps, &flows);
        // Capacity.
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.links.contains(&(l as u32)))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap * (1.0 + 1e-9), "link {l}: {load} > {cap}");
        }
        // Work conservation: each flow saturates at least one link.
        for f in &flows {
            let bottlenecked = f.links.iter().any(|&l| {
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                load >= caps[l as usize] * (1.0 - 1e-6)
            });
            assert!(bottlenecked);
        }
    }
}

/// Doubling every capacity doubles every rate (scale invariance).
#[test]
fn max_min_scale_invariance() {
    let mut meta = Rng::new(0x5CA1E);
    for _ in 0..64 {
        let nlinks = 2 + meta.index(6);
        let caps: Vec<f64> = (0..nlinks).map(|_| meta.uniform(0.1, 50.0)).collect();
        let paths = arb_paths(&mut meta, nlinks, 8);
        let flows: Vec<FlowDemand<'_>> = paths
            .iter()
            .map(|p| FlowDemand {
                weight: 1.0,
                links: p,
            })
            .collect();
        let rates = max_min_rates(&caps, &flows);
        let doubled: Vec<f64> = caps.iter().map(|c| c * 2.0).collect();
        let rates2 = max_min_rates(&doubled, &flows);
        for (r, r2) in rates.iter().zip(&rates2) {
            assert!((r2 - 2.0 * r).abs() <= 1e-6 * r2.max(1.0));
        }
    }
}

/// Flows finish in finite time and the network goes idle; total
/// delivered bytes equal the sum of payloads.
#[test]
fn flows_drain_completely() {
    let mut meta = Rng::new(0xD4A1);
    for _ in 0..32 {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let mut net = Network::new(topo);
        let mut total = 0.0;
        let n = 1 + meta.index(11);
        for _ in 0..n {
            let bytes = meta.uniform(1.0, 1e8);
            total += bytes;
            net.start_flow(FlowSpec {
                src: DeviceId(meta.below(16) as u32),
                dst: DeviceId(meta.below(16) as u32),
                bytes,
                weight: 1.0,
                extra_latency: SimDuration::ZERO,
                tag: 0,
            });
        }
        let end = net.run_to_idle();
        assert!(end.is_some());
        assert_eq!(net.active_flows(), 0);
        let delivered = net.stats().bytes_delivered;
        assert!((delivered - total).abs() <= 1e-6 * total.max(1.0));
    }
}

/// All-to-all completion time never decreases when payloads grow.
#[test]
fn a2a_time_is_monotone_in_size() {
    let mut meta = Rng::new(0xA2A);
    for _ in 0..16 {
        let base = meta.uniform(1e4, 1e7);
        let extra = meta.uniform(0.0, 1e7);
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let run = |per_pair: f64| {
            let mut e = CollectiveEngine::new(Network::new(topo.clone()));
            e.start(
                &CollectiveSpec::uniform_all_to_all(
                    topo.device_ids().collect(),
                    per_pair,
                    AllToAllAlgo::Flat,
                ),
                0,
            );
            e.run_to_idle()[0].at
        };
        assert!(run(base + extra) >= run(base));
    }
}
