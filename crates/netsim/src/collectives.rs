//! Collective communication operations over the flow-level network.
//!
//! The MoE execution uses four collectives:
//!
//! * **all-to-all** — every participant sends a (possibly unequal) byte
//!   count to every other participant. A flat decomposition launches all
//!   pairwise flows at once; the hierarchical variant (Tutel-style, and
//!   what the paper enables for both systems) does an intra-node
//!   exchange, an inter-node exchange of node-aggregated chunks, and an
//!   intra-node scatter.
//! * **allreduce** — ring algorithm over participants in rank order; each
//!   device moves `2 (P-1) / P x bytes` to its ring successor. We use the
//!   fluid single-phase model of the ring (identical completion time on a
//!   homogeneous topology, and a faithful share of bandwidth under
//!   contention).
//! * **broadcast / p2p send** — direct flows, used by Lina's inference
//!   scheduler for control traffic.
//!
//! Every flow of a collective carries weight `1 / k`, where `k` is the
//! maximum number of the collective's concurrent flows over any link it
//! uses, so two overlapping collectives share a link evenly no matter how
//! many flows each decomposes into (mirroring two NCCL communicators).

use std::collections::BTreeMap;

use lina_simcore::{SimDuration, SimTime};

use crate::network::{FlowSpec, Network};
use crate::topology::DeviceId;

/// Identifies a running collective operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CollectiveId(pub u64);

/// All-to-all decomposition strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllToAllAlgo {
    /// All pairwise flows at once.
    Flat,
    /// Intra-node gather, inter-node exchange, intra-node scatter.
    Hierarchical,
}

/// Specification of a collective to launch.
#[derive(Clone, Debug)]
pub enum CollectiveSpec {
    /// All-to-all with per-pair sizes: `sizes[i][j]` bytes travel from
    /// `participants[i]` to `participants[j]`. Unequal splits are the
    /// mechanism behind Lina's inference-time coordination.
    AllToAll {
        /// Participating devices in rank order.
        participants: Vec<DeviceId>,
        /// Byte matrix, `sizes[src_rank][dst_rank]`.
        sizes: Vec<Vec<f64>>,
        /// Decomposition strategy.
        algo: AllToAllAlgo,
    },
    /// Ring allreduce of `bytes` per participant.
    AllReduce {
        /// Participating devices in rank order (ring order).
        participants: Vec<DeviceId>,
        /// Gradient bytes reduced on each device.
        bytes: f64,
    },
    /// One-to-all broadcast of `bytes`.
    Broadcast {
        /// Source device.
        root: DeviceId,
        /// Receivers (the root may be included; it is skipped).
        participants: Vec<DeviceId>,
        /// Payload size.
        bytes: f64,
    },
    /// A single point-to-point transfer.
    Send {
        /// Source device.
        src: DeviceId,
        /// Destination device.
        dst: DeviceId,
        /// Payload size.
        bytes: f64,
    },
}

impl CollectiveSpec {
    /// Builds a uniform all-to-all where every participant sends
    /// `bytes_per_pair` to every other participant (the training-time
    /// equal split).
    pub fn uniform_all_to_all(
        participants: Vec<DeviceId>,
        bytes_per_pair: f64,
        algo: AllToAllAlgo,
    ) -> Self {
        let p = participants.len();
        let sizes = vec![vec![bytes_per_pair; p]; p];
        CollectiveSpec::AllToAll {
            participants,
            sizes,
            algo,
        }
    }

    /// Total payload bytes moved by this collective (excluding
    /// device-local copies).
    pub fn total_bytes(&self) -> f64 {
        match self {
            CollectiveSpec::AllToAll {
                participants,
                sizes,
                ..
            } => {
                let mut total = 0.0;
                for (i, row) in sizes.iter().enumerate() {
                    for (j, &b) in row.iter().enumerate() {
                        if participants[i] != participants[j] {
                            total += b;
                        }
                    }
                }
                total
            }
            CollectiveSpec::AllReduce {
                participants,
                bytes,
            } => {
                let p = participants.len() as f64;
                if p < 2.0 {
                    0.0
                } else {
                    2.0 * (p - 1.0) * *bytes
                }
            }
            CollectiveSpec::Broadcast {
                root,
                participants,
                bytes,
            } => participants.iter().filter(|&&d| d != *root).count() as f64 * *bytes,
            CollectiveSpec::Send { bytes, .. } => *bytes,
        }
    }
}

/// One phase of a decomposed collective: flows to launch together.
#[derive(Clone, Debug, Default)]
struct PhasePlan {
    flows: Vec<(DeviceId, DeviceId, f64)>,
}

struct RunningCollective {
    phases: Vec<PhasePlan>,
    current: usize,
    outstanding: usize,
    tag: u64,
    launch_overhead: SimDuration,
    started: SimTime,
}

/// A completed-collective notification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectiveDone {
    /// The collective that finished.
    pub id: CollectiveId,
    /// Caller-defined tag.
    pub tag: u64,
    /// Completion instant.
    pub at: SimTime,
    /// Launch instant, for duration accounting.
    pub started: SimTime,
}

/// Drives collectives over a [`Network`], handling phase transitions.
pub struct CollectiveEngine {
    net: Network,
    running: BTreeMap<CollectiveId, RunningCollective>,
    next_id: u64,
}

impl CollectiveEngine {
    /// Wraps a network.
    pub fn new(net: Network) -> Self {
        CollectiveEngine {
            net,
            running: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Immutable access to the underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network (for raw flows).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of collectives in flight.
    pub fn active(&self) -> usize {
        self.running.len()
    }

    fn plan(&self, spec: &CollectiveSpec) -> Vec<PhasePlan> {
        match spec {
            CollectiveSpec::AllToAll {
                participants,
                sizes,
                algo,
            } => match algo {
                AllToAllAlgo::Flat => {
                    let mut phase = PhasePlan::default();
                    for (i, &src) in participants.iter().enumerate() {
                        for (j, &dst) in participants.iter().enumerate() {
                            if src != dst && sizes[i][j] > 0.0 {
                                phase.flows.push((src, dst, sizes[i][j]));
                            }
                        }
                    }
                    vec![phase]
                }
                AllToAllAlgo::Hierarchical => self.plan_hierarchical(participants, sizes),
            },
            CollectiveSpec::AllReduce {
                participants,
                bytes,
            } => {
                let p = participants.len();
                if p < 2 {
                    return vec![PhasePlan::default()];
                }
                // Fluid ring: each device streams 2(P-1)/P x bytes to its
                // successor; all segments move concurrently.
                let per_edge = 2.0 * (p as f64 - 1.0) / p as f64 * *bytes;
                let mut phase = PhasePlan::default();
                for (i, &src) in participants.iter().enumerate() {
                    let dst = participants[(i + 1) % p];
                    phase.flows.push((src, dst, per_edge));
                }
                vec![phase]
            }
            CollectiveSpec::Broadcast {
                root,
                participants,
                bytes,
            } => {
                let mut phase = PhasePlan::default();
                for &d in participants {
                    if d != *root {
                        phase.flows.push((*root, d, *bytes));
                    }
                }
                vec![phase]
            }
            CollectiveSpec::Send { src, dst, bytes } => {
                vec![PhasePlan {
                    flows: vec![(*src, *dst, *bytes)],
                }]
            }
        }
    }

    /// Hierarchical all-to-all: route data for remote device `(m, q)`
    /// through the local device with local rank `q`.
    fn plan_hierarchical(&self, participants: &[DeviceId], sizes: &[Vec<f64>]) -> Vec<PhasePlan> {
        let topo = self.net.topology();
        let rank_of: BTreeMap<DeviceId, usize> = participants
            .iter()
            .enumerate()
            .map(|(r, &d)| (d, r))
            .collect();
        let mut gather = PhasePlan::default();
        let mut exchange = PhasePlan::default();
        let mut scatter = PhasePlan::default();
        // Phase 1: device i forwards to the local proxy with the same
        // local rank as each remote destination.
        let mut proxy_load: BTreeMap<(DeviceId, DeviceId), f64> = BTreeMap::new();
        for (&src, &i) in &rank_of {
            for (&dst, &j) in &rank_of {
                let b = sizes[i][j];
                if b <= 0.0 || src == dst {
                    continue;
                }
                if topo.same_node(src, dst) {
                    // Local traffic goes direct in phase 1.
                    gather.flows.push((src, dst, b));
                    continue;
                }
                let proxy = topo.device_at(topo.node_of(src), topo.local_rank(dst));
                if proxy != src {
                    gather.flows.push((src, proxy, b));
                }
                // Phase 2: proxy sends the aggregate for (remote node,
                // local rank) to its peer proxy on the destination node.
                let peer = topo.device_at(topo.node_of(dst), topo.local_rank(dst));
                *proxy_load.entry((proxy, peer)).or_insert(0.0) += b;
                // Phase 3: the peer proxy is the destination itself
                // (same local rank), so no scatter flow is needed unless
                // the routing had to come in on a different rank. With
                // same-rank routing, peer == dst, so scatter only handles
                // the degenerate single-GPU-node case.
                if peer != dst {
                    scatter.flows.push((peer, dst, b));
                }
            }
        }
        for ((src, dst), b) in proxy_load {
            exchange.flows.push((src, dst, b));
        }
        let mut phases = Vec::new();
        if !gather.flows.is_empty() {
            phases.push(gather);
        }
        if !exchange.flows.is_empty() {
            phases.push(exchange);
        }
        if !scatter.flows.is_empty() {
            phases.push(scatter);
        }
        if phases.is_empty() {
            phases.push(PhasePlan::default());
        }
        phases
    }

    /// Per-flow weight so the collective's aggregate weight on its most
    /// shared link is 1.
    fn phase_weight(&self, phase: &PhasePlan) -> f64 {
        let mut per_link: BTreeMap<u32, usize> = BTreeMap::new();
        for &(src, dst, _) in &phase.flows {
            for l in self.net.topology().path(src, dst) {
                *per_link.entry(l.0).or_insert(0) += 1;
            }
        }
        let max_share = per_link.values().copied().max().unwrap_or(1);
        1.0 / max_share as f64
    }

    fn launch_phase(&mut self, id: CollectiveId) {
        let rc = self.running.get_mut(&id).expect("collective exists");
        let phase = rc.phases[rc.current].clone();
        let overhead = if rc.current == 0 {
            rc.launch_overhead
        } else {
            SimDuration::ZERO
        };
        let weight = self.phase_weight(&phase);
        let rc = self.running.get_mut(&id).expect("collective exists");
        rc.outstanding = phase.flows.len();
        if phase.flows.is_empty() {
            return;
        }
        for (src, dst, bytes) in phase.flows {
            self.net.start_flow(FlowSpec {
                src,
                dst,
                bytes,
                weight,
                extra_latency: overhead,
                tag: id.0,
            });
        }
    }

    /// Launches a collective; completion is reported by
    /// [`CollectiveEngine::advance_to`] with the given tag.
    pub fn start(&mut self, spec: &CollectiveSpec, tag: u64) -> CollectiveId {
        let phases = self.plan(spec);
        let id = CollectiveId(self.next_id);
        self.next_id += 1;
        let overhead = self.net.topology().spec().collective_launch_overhead;
        self.running.insert(
            id,
            RunningCollective {
                phases,
                current: 0,
                outstanding: 0,
                tag,
                launch_overhead: overhead,
                started: self.net.now(),
            },
        );
        self.launch_phase(id);
        // An empty first phase (e.g. single-participant collective)
        // completes at the current instant; advance_to picks it up.
        id
    }

    /// Cancels every running collective and its flows without reporting
    /// completions — the replica driving them has crashed. Time does not
    /// advance; the engine is reusable afterwards (recovery).
    pub fn cancel_all(&mut self) {
        self.running.clear();
        self.net.cancel_all_flows();
    }

    /// Cancels every running collective carrying `tag` (and its flows)
    /// without reporting a completion — the batch driving it was
    /// aborted (e.g. a hedged duplicate lost the race). Returns how
    /// many collectives were cancelled; surviving collectives re-share
    /// the freed links from the current instant onward.
    pub fn cancel_tagged(&mut self, tag: u64) -> usize {
        let ids: Vec<CollectiveId> = self
            .running
            .iter()
            .filter(|(_, rc)| rc.tag == tag)
            .map(|(&id, _)| id)
            .collect();
        for &id in &ids {
            self.running.remove(&id);
            // Flows are tagged with the collective id, not the caller tag.
            self.net.cancel_flows_with_tag(id.0);
        }
        ids.len()
    }

    /// Next instant at which anything changes: a flow event or an
    /// empty-phase promotion.
    pub fn next_event(&mut self) -> Option<SimTime> {
        if self.running.values().any(|rc| rc.outstanding == 0) {
            return Some(self.net.now());
        }
        self.net.next_event()
    }

    /// Advances to `t`, promoting phases and completing collectives.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<CollectiveDone> {
        let mut done = Vec::new();
        loop {
            // Promote any collective whose current phase has no
            // outstanding flows (empty phases or freshly finished ones).
            let ready: Vec<CollectiveId> = self
                .running
                .iter()
                .filter(|(_, rc)| rc.outstanding == 0)
                .map(|(&id, _)| id)
                .collect();
            for id in ready {
                let rc = self.running.get_mut(&id).expect("exists");
                if rc.current + 1 < rc.phases.len() {
                    rc.current += 1;
                    self.launch_phase(id);
                } else {
                    let rc = self.running.remove(&id).expect("exists");
                    done.push(CollectiveDone {
                        id,
                        tag: rc.tag,
                        at: self.net.now(),
                        started: rc.started,
                    });
                }
            }
            if self.net.now() >= t {
                break;
            }
            let seg_end = match self.net.next_event() {
                Some(e) if e < t => e,
                _ => t,
            };
            for fd in self.net.advance_to(seg_end) {
                let cid = CollectiveId(fd.tag);
                if let Some(rc) = self.running.get_mut(&cid) {
                    rc.outstanding = rc.outstanding.saturating_sub(1);
                }
            }
        }
        done
    }

    /// Runs until all collectives complete; returns completions in order.
    /// Returns what completed so far if progress stalls.
    pub fn run_to_idle(&mut self) -> Vec<CollectiveDone> {
        let mut done = Vec::new();
        while self.active() > 0 {
            let Some(next) = self.next_event() else { break };
            // Step slightly past the event to process completions.
            done.extend(self.advance_to(next + SimDuration::from_nanos(1)));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterSpec, Topology};

    fn engine() -> CollectiveEngine {
        CollectiveEngine::new(Network::new(Topology::new(ClusterSpec::paper_testbed())))
    }

    fn devs(n: u32) -> Vec<DeviceId> {
        (0..n).map(DeviceId).collect()
    }

    #[test]
    fn send_completes_in_transfer_time() {
        let mut e = engine();
        let bw = e.network().topology().spec().nic_bw;
        e.start(
            &CollectiveSpec::Send {
                src: DeviceId(0),
                dst: DeviceId(4),
                bytes: 1e9,
            },
            9,
        );
        let done = e.run_to_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 9);
        let secs = done[0].at.as_secs_f64();
        let expected = 1e9 / bw;
        assert!(
            (secs - expected).abs() / expected < 0.02,
            "{secs} vs {expected}"
        );
    }

    #[test]
    fn flat_all_to_all_16_devices() {
        let mut e = engine();
        let bw = e.network().topology().spec().nic_bw;
        // 32 MiB per device total, split evenly over 16 destinations.
        let per_pair = 32.0 * 1024.0 * 1024.0 / 16.0;
        let spec = CollectiveSpec::uniform_all_to_all(devs(16), per_pair, AllToAllAlgo::Flat);
        e.start(&spec, 0);
        let done = e.run_to_idle();
        assert_eq!(done.len(), 1);
        // Bottleneck: each device's NIC carries 12 remote destinations
        // x per_pair bytes.
        let nic_bytes = 12.0 * per_pair;
        let expected = nic_bytes / bw;
        let secs = done[0].at.as_secs_f64();
        assert!(
            (secs - expected).abs() / expected < 0.05,
            "a2a took {secs}, expected ~{expected}"
        );
    }

    #[test]
    fn hierarchical_matches_flat_volume_on_nic() {
        let per_pair = 1e6;
        let spec_flat = CollectiveSpec::uniform_all_to_all(devs(16), per_pair, AllToAllAlgo::Flat);
        let spec_hier =
            CollectiveSpec::uniform_all_to_all(devs(16), per_pair, AllToAllAlgo::Hierarchical);
        let mut e1 = engine();
        e1.start(&spec_flat, 0);
        let t_flat = e1.run_to_idle()[0].at;
        let mut e2 = engine();
        e2.start(&spec_hier, 0);
        let t_hier = e2.run_to_idle()[0].at;
        // Same inter-node volume; hierarchical adds serialized
        // intra-node gather/scatter phases over PCIe-class links, so it
        // pays a bounded premium in the fluid model.
        let ratio = t_hier.as_secs_f64() / t_flat.as_secs_f64();
        assert!((0.7..1.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn intra_node_all_to_all_avoids_nic() {
        let mut e = engine();
        let spec = CollectiveSpec::uniform_all_to_all(devs(4), 1e8, AllToAllAlgo::Flat);
        e.start(&spec, 0);
        let done = e.run_to_idle();
        // 3e8 bytes per intra-node port at 22 GB/s ~ 14ms; the NIC at
        // 11 GB/s would need at least twice that for the same volume.
        let intra_bw = e.network().topology().spec().nvlink_bw;
        let expected = 3e8 / intra_bw;
        let secs = done[0].at.as_secs_f64();
        assert!(
            (secs - expected).abs() / expected < 0.1,
            "took {secs}, expected ~{expected}"
        );
    }

    #[test]
    fn allreduce_ring_time_scales_with_bytes() {
        let mut e = engine();
        let bw = e.network().topology().spec().nic_bw;
        let bytes = 100e6;
        e.start(
            &CollectiveSpec::AllReduce {
                participants: devs(16),
                bytes,
            },
            0,
        );
        let done = e.run_to_idle();
        // Each ring edge carries 2 * 15/16 * bytes; the slowest edges
        // are the inter-node ones over a device NIC.
        let expected = 2.0 * 15.0 / 16.0 * bytes / bw;
        let secs = done[0].at.as_secs_f64();
        assert!(
            (secs - expected).abs() / expected < 0.05,
            "allreduce took {secs}, expected ~{expected}"
        );
    }

    #[test]
    fn cancel_tagged_drops_only_the_matching_collective() {
        // Alone, a send completes in its solo transfer time. Starting a
        // contending send and cancelling it mid-flight must return the
        // survivor to roughly its solo completion.
        let spec = |dst| CollectiveSpec::Send {
            src: DeviceId(0),
            dst: DeviceId(dst),
            bytes: 1e9,
        };
        let mut solo = engine();
        solo.start(&spec(4), 1);
        let solo_at = solo.run_to_idle()[0].at;

        let mut e = engine();
        e.start(&spec(4), 1);
        e.start(&spec(8), 2);
        assert_eq!(e.active(), 2);
        // Cancel an unknown tag: a no-op.
        assert_eq!(e.cancel_tagged(7), 0);
        // Drive partway, then cancel the contender.
        let done = e.advance_to(SimTime::from_millis(10));
        assert!(done.is_empty());
        assert_eq!(e.cancel_tagged(2), 1);
        assert_eq!(e.active(), 1);
        let done = e.run_to_idle();
        assert_eq!(done.len(), 1, "only the survivor completes");
        assert_eq!(done[0].tag, 1);
        // Sharing the NIC for 10ms then running alone: strictly later
        // than solo but far sooner than a fully halved share.
        assert!(done[0].at > solo_at, "{} vs solo {}", done[0].at, solo_at);
        assert!(
            done[0].at < solo_at + SimDuration::from_millis(20),
            "cancelled contender kept slowing the survivor: {} vs solo {}",
            done[0].at,
            solo_at
        );
    }

    #[test]
    fn overlapping_collectives_slow_each_other_down() {
        // An all-to-all alone vs overlapped with an allreduce: the
        // overlapped one should take roughly 2x (fair halves), which is
        // the Figure 3 phenomenon.
        let per_pair = 2e6;
        let a2a = CollectiveSpec::uniform_all_to_all(devs(16), per_pair, AllToAllAlgo::Flat);
        let mut solo = engine();
        solo.start(&a2a, 0);
        let t_solo = solo.run_to_idle()[0].at.as_secs_f64();

        let mut both = engine();
        both.start(&a2a, 0);
        both.start(
            &CollectiveSpec::AllReduce {
                participants: devs(16),
                bytes: 500e6,
            },
            1,
        );
        let done = both.advance_to(SimTime::from_secs_f64(10.0));
        let t_a2a = done
            .iter()
            .find(|d| d.tag == 0)
            .expect("a2a completes")
            .at
            .as_secs_f64();
        let slowdown = t_a2a / t_solo;
        assert!(
            (1.6..2.4).contains(&slowdown),
            "slowdown {slowdown} (solo {t_solo}, overlapped {t_a2a})"
        );
    }

    #[test]
    fn unequal_all_to_all_bottleneck_is_heavy_receiver() {
        let mut e = engine();
        let bw = e.network().topology().spec().nic_bw;
        let participants = devs(16);
        // Everyone sends 10 MiB to device 0 and nothing else: device 0's
        // NIC rx is the bottleneck (12 remote senders).
        let mut sizes = vec![vec![0.0; 16]; 16];
        for (i, row) in sizes.iter_mut().enumerate() {
            if i != 0 {
                row[0] = 10e6;
            }
        }
        e.start(
            &CollectiveSpec::AllToAll {
                participants,
                sizes,
                algo: AllToAllAlgo::Flat,
            },
            0,
        );
        let done = e.run_to_idle();
        let expected = 12.0 * 10e6 / bw;
        let secs = done[0].at.as_secs_f64();
        assert!(
            (secs - expected).abs() / expected < 0.05,
            "took {secs}, expected ~{expected}"
        );
    }

    #[test]
    fn broadcast_reaches_all() {
        let mut e = engine();
        e.start(
            &CollectiveSpec::Broadcast {
                root: DeviceId(0),
                participants: devs(16),
                bytes: 1e6,
            },
            3,
        );
        let done = e.run_to_idle();
        assert_eq!(done.len(), 1);
        assert!(done[0].at > SimTime::ZERO);
    }

    #[test]
    fn single_participant_collectives_complete_immediately() {
        let mut e = engine();
        e.start(
            &CollectiveSpec::AllReduce {
                participants: devs(1),
                bytes: 1e9,
            },
            0,
        );
        let done = e.run_to_idle();
        assert_eq!(done.len(), 1);
        assert!(done[0].at.as_secs_f64() < 1e-3);
    }

    #[test]
    fn total_bytes_accounting() {
        let a2a = CollectiveSpec::uniform_all_to_all(devs(4), 100.0, AllToAllAlgo::Flat);
        assert_eq!(a2a.total_bytes(), 12.0 * 100.0);
        let ar = CollectiveSpec::AllReduce {
            participants: devs(4),
            bytes: 100.0,
        };
        assert_eq!(ar.total_bytes(), 600.0);
        let bc = CollectiveSpec::Broadcast {
            root: DeviceId(0),
            participants: devs(4),
            bytes: 10.0,
        };
        assert_eq!(bc.total_bytes(), 30.0);
    }

    #[test]
    fn concurrent_collectives_both_complete() {
        let mut e = engine();
        for tag in 0..4 {
            e.start(
                &CollectiveSpec::uniform_all_to_all(devs(16), 1e6, AllToAllAlgo::Flat),
                tag,
            );
        }
        let done = e.run_to_idle();
        assert_eq!(done.len(), 4);
        let mut tags: Vec<u64> = done.iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3]);
    }
}
