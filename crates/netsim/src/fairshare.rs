//! Weighted max-min fair bandwidth allocation.
//!
//! When the active flow set changes, the network recomputes every flow's
//! rate with progressive filling (water-filling): repeatedly find the most
//! constrained link, freeze the flows it bottlenecks at their fair share,
//! subtract, and continue. This is the standard fluid model of how
//! concurrent NCCL/TCP-like transfers share links, and it is what produces
//! the all-to-all slowdown distribution of Figure 3 without any hard-coded
//! slowdown factor.
//!
//! Flows carry *weights*: a collective that fans out into `k` parallel
//! flows over the same link assigns each weight `1/k`, so two overlapping
//! collectives split a link roughly evenly regardless of how many flows
//! each decomposes into — matching how two NCCL communicators share a NIC.

/// A flow presented to the allocator: a weight and the links it traverses.
#[derive(Clone, Debug)]
pub struct FlowDemand<'a> {
    /// Relative weight (> 0). Rates on a bottleneck link are proportional
    /// to weights.
    pub weight: f64,
    /// Links the flow traverses. A flow with no links is unconstrained
    /// and receives `f64::INFINITY`.
    pub links: &'a [u32],
}

/// Computes weighted max-min fair rates.
///
/// `capacities[l]` is the capacity of link `l` in bytes/s. Returns one
/// rate per flow, in the input order.
///
/// # Panics
///
/// Panics if any weight is non-positive, any referenced link is out of
/// range, or any capacity is negative.
pub fn max_min_rates(capacities: &[f64], flows: &[FlowDemand<'_>]) -> Vec<f64> {
    for f in flows {
        assert!(
            f.weight > 0.0 && f.weight.is_finite(),
            "max_min_rates: bad weight {}",
            f.weight
        );
        for &l in f.links {
            assert!(
                (l as usize) < capacities.len(),
                "max_min_rates: link {l} out of range"
            );
        }
    }
    for &c in capacities {
        assert!(c >= 0.0, "max_min_rates: negative capacity {c}");
    }

    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    // Unconstrained flows complete instantly (device-local copies).
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() {
            rates[i] = f64::INFINITY;
            frozen[i] = true;
        }
    }

    // Per-link running state: remaining capacity and total weight of
    // unfrozen flows crossing it.
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut link_weight = vec![0.0f64; capacities.len()];
    for (i, f) in flows.iter().enumerate() {
        if !frozen[i] {
            for &l in f.links {
                link_weight[l as usize] += f.weight;
            }
        }
    }

    loop {
        // Find the bottleneck: the link with the smallest fair level
        // remaining / weight among links with unfrozen flows.
        let mut bottleneck: Option<(usize, f64)> = None;
        for (l, &w) in link_weight.iter().enumerate() {
            if w > 1e-12 {
                let level = remaining[l] / w;
                match bottleneck {
                    Some((_, best)) if level >= best => {}
                    _ => bottleneck = Some((l, level)),
                }
            }
        }
        let Some((bl, level)) = bottleneck else { break };
        let level = level.max(0.0);
        // Freeze every unfrozen flow crossing the bottleneck at its
        // proportional share, and charge its links.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] || !f.links.contains(&(bl as u32)) {
                continue;
            }
            let rate = f.weight * level;
            rates[i] = rate;
            frozen[i] = true;
            for &l in f.links {
                remaining[l as usize] = (remaining[l as usize] - rate).max(0.0);
                link_weight[l as usize] -= f.weight;
            }
        }
        // Numerical cleanup: a link whose weight underflowed to a tiny
        // negative must not be selected again.
        link_weight[bl] = link_weight[bl].max(0.0);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(weight: f64, links: &[u32]) -> FlowDemand<'_> {
        FlowDemand { weight, links }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_rates(&[10.0], &[demand(1.0, &[0])]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let links = [0u32];
        let flows = vec![demand(1.0, &links); 4];
        let rates = max_min_rates(&[8.0], &flows);
        for r in rates {
            assert!((r - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_bias_the_split() {
        let rates = max_min_rates(&[9.0], &[demand(2.0, &[0]), demand(1.0, &[0])]);
        assert!((rates[0] - 6.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Flow A crosses links 0 and 1; flow B crosses link 0 only.
        // Link 1 is the bottleneck for A (cap 2); B then gets the rest
        // of link 0 (cap 10): 8.
        let rates = max_min_rates(&[10.0, 2.0], &[demand(1.0, &[0, 1]), demand(1.0, &[0])]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_flow_parking_lot() {
        // Two links of capacity 1. Flow 0 crosses both; flows 1 and 2
        // cross one each. Max-min: everyone gets 1/2.
        let rates = max_min_rates(
            &[1.0, 1.0],
            &[demand(1.0, &[0, 1]), demand(1.0, &[0]), demand(1.0, &[1])],
        );
        for r in rates {
            assert!((r - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let rates = max_min_rates(&[1.0], &[demand(1.0, &[])]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn no_flows_no_rates() {
        assert!(max_min_rates(&[5.0], &[]).is_empty());
    }

    #[test]
    fn collective_weighting_splits_link_between_collectives() {
        // Collective A fans out into 4 flows of weight 1/4 on link 0;
        // collective B is a single flow of weight 1. Each collective
        // should get half the link in aggregate.
        let mut flows = vec![demand(0.25, &[0u32]); 4];
        flows.push(demand(1.0, &[0]));
        let rates = max_min_rates(&[8.0], &flows);
        let a_total: f64 = rates[..4].iter().sum();
        assert!((a_total - 4.0).abs() < 1e-9, "a_total {a_total}");
        assert!((rates[4] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_link_gives_zero_rate() {
        let rates = max_min_rates(&[0.0], &[demand(1.0, &[0])]);
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn never_exceeds_capacity() {
        // Random-ish mesh checked against the capacity invariant.
        let caps = [3.0, 7.0, 2.0, 11.0];
        let paths: Vec<Vec<u32>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 3],
            vec![2, 3],
            vec![1],
            vec![3],
        ];
        let flows: Vec<FlowDemand<'_>> = paths.iter().map(|p| demand(1.0, p)).collect();
        let rates = max_min_rates(&caps, &flows);
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.links.contains(&(l as u32)))
                .map(|(_, &r)| r)
                .sum();
            assert!(load <= cap + 1e-6, "link {l}: load {load} > cap {cap}");
        }
        // Work conservation: every flow is bottlenecked somewhere, i.e.
        // for each flow at least one of its links is (nearly) full.
        for (f, _r) in flows.iter().zip(&rates) {
            let saturated = f.links.iter().any(|&l| {
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                load >= caps[l as usize] - 1e-6
            });
            assert!(saturated, "flow with path {:?} not bottlenecked", f.links);
        }
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn zero_weight_panics() {
        max_min_rates(&[1.0], &[demand(0.0, &[0])]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_panics() {
        max_min_rates(&[1.0], &[demand(1.0, &[3])]);
    }
}
