//! Device memory accounting.
//!
//! Table 4 of the paper reports peak GPU memory usage and whether
//! DRAM-offloading kicked in. We track allocations per device in named
//! categories (parameters, gradients, activations, packed experts) and
//! record the peak. When an allocation would exceed capacity, the caller
//! can consult [`MemoryTracker::would_overflow`] and charge the PCIe swap
//! time that offloading costs instead.

use std::collections::BTreeMap;

use crate::topology::DeviceId;

/// Allocation category, for reporting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemClass {
    /// Model parameters resident on the device.
    Params,
    /// Gradient buffers.
    Grads,
    /// Optimizer state.
    OptState,
    /// Activations / workspace.
    Activations,
    /// Additional experts packed onto this device.
    PackedExperts,
}

/// Per-cluster device memory tracker.
#[derive(Clone, Debug)]
pub struct MemoryTracker {
    capacity: f64,
    used: Vec<BTreeMap<MemClass, f64>>,
    peak: Vec<f64>,
    offloaded: Vec<bool>,
}

impl MemoryTracker {
    /// Creates a tracker for `devices` devices of `capacity` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(devices: usize, capacity: f64) -> Self {
        assert!(capacity > 0.0, "MemoryTracker::new: bad capacity");
        MemoryTracker {
            capacity,
            used: vec![BTreeMap::new(); devices],
            peak: vec![0.0; devices],
            offloaded: vec![false; devices],
        }
    }

    /// Device memory capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    fn idx(&self, d: DeviceId) -> usize {
        let i = d.0 as usize;
        assert!(
            i < self.used.len(),
            "MemoryTracker: device {} out of range",
            d.0
        );
        i
    }

    /// Adds `bytes` to a device's usage in the given class.
    pub fn alloc(&mut self, d: DeviceId, class: MemClass, bytes: f64) {
        assert!(bytes >= 0.0, "alloc: negative bytes");
        let i = self.idx(d);
        *self.used[i].entry(class).or_insert(0.0) += bytes;
        let total = self.used_bytes(d);
        if total > self.peak[i] {
            self.peak[i] = total;
        }
    }

    /// Releases `bytes` from a device's usage in the given class,
    /// clamping at zero.
    pub fn free(&mut self, d: DeviceId, class: MemClass, bytes: f64) {
        let i = self.idx(d);
        let entry = self.used[i].entry(class).or_insert(0.0);
        *entry = (*entry - bytes).max(0.0);
    }

    /// Current usage of a device across all classes.
    pub fn used_bytes(&self, d: DeviceId) -> f64 {
        self.used[self.idx(d)].values().sum()
    }

    /// Current usage of a device in one class.
    pub fn used_in_class(&self, d: DeviceId, class: MemClass) -> f64 {
        self.used[self.idx(d)].get(&class).copied().unwrap_or(0.0)
    }

    /// Peak usage seen on a device.
    pub fn peak_bytes(&self, d: DeviceId) -> f64 {
        self.peak[self.idx(d)]
    }

    /// Peak usage as a fraction of capacity, over all devices — the
    /// "GPU Memory Peak Usage (%)" column of Table 4.
    pub fn peak_fraction(&self) -> f64 {
        let max_peak = self.peak.iter().copied().fold(0.0, f64::max);
        (max_peak / self.capacity).min(1.0)
    }

    /// True if allocating `bytes` more on `d` would exceed capacity.
    pub fn would_overflow(&self, d: DeviceId, bytes: f64) -> bool {
        self.used_bytes(d) + bytes > self.capacity
    }

    /// Marks that a device resorted to DRAM offloading.
    pub fn mark_offloaded(&mut self, d: DeviceId) {
        let i = self.idx(d);
        self.offloaded[i] = true;
        // Offloading means the device ran at its memory ceiling.
        self.peak[i] = self.peak[i].max(self.capacity);
    }

    /// True if any device offloaded to DRAM.
    pub fn any_offloaded(&self) -> bool {
        self.offloaded.iter().any(|&o| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = MemoryTracker::new(2, 100.0);
        m.alloc(d(0), MemClass::Params, 30.0);
        m.alloc(d(0), MemClass::Grads, 20.0);
        assert_eq!(m.used_bytes(d(0)), 50.0);
        assert_eq!(m.used_in_class(d(0), MemClass::Params), 30.0);
        m.free(d(0), MemClass::Grads, 20.0);
        assert_eq!(m.used_bytes(d(0)), 30.0);
        assert_eq!(m.used_bytes(d(1)), 0.0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new(1, 100.0);
        m.alloc(d(0), MemClass::Activations, 80.0);
        m.free(d(0), MemClass::Activations, 80.0);
        m.alloc(d(0), MemClass::Activations, 10.0);
        assert_eq!(m.peak_bytes(d(0)), 80.0);
        assert!((m.peak_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn free_clamps_at_zero() {
        let mut m = MemoryTracker::new(1, 100.0);
        m.alloc(d(0), MemClass::Params, 5.0);
        m.free(d(0), MemClass::Params, 50.0);
        assert_eq!(m.used_bytes(d(0)), 0.0);
    }

    #[test]
    fn overflow_detection_and_offload() {
        let mut m = MemoryTracker::new(1, 100.0);
        m.alloc(d(0), MemClass::Params, 90.0);
        assert!(m.would_overflow(d(0), 20.0));
        assert!(!m.would_overflow(d(0), 5.0));
        assert!(!m.any_offloaded());
        m.mark_offloaded(d(0));
        assert!(m.any_offloaded());
        assert!((m.peak_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_device_panics() {
        let m = MemoryTracker::new(1, 100.0);
        m.used_bytes(d(5));
    }
}
