//! # lina-netsim
//!
//! A flow-level simulator of the paper's GPU cluster: a two-level
//! topology (NVLink within nodes, 100 Gbps NICs between them), weighted
//! max-min fair bandwidth sharing, and the collective operations MoE
//! execution is built from (all-to-all — flat, hierarchical, and
//! unequal-split — ring allreduce, broadcast, and point-to-point sends),
//! plus device memory accounting for the offloading analysis.
//!
//! Contention is emergent: overlapping collectives split links under the
//! fluid fair-share model, which is what produces the paper's Figure 3
//! slowdown distribution without any hard-coded factors.

#![warn(missing_docs)]

pub mod collectives;
pub mod fairshare;
pub mod memory;
pub mod network;
pub mod solo;
pub mod topology;

pub use collectives::{
    AllToAllAlgo, CollectiveDone, CollectiveEngine, CollectiveId, CollectiveSpec,
};
pub use fairshare::{max_min_rates, FlowDemand};
pub use memory::{MemClass, MemoryTracker};
pub use network::{FlowDone, FlowId, FlowSpec, NetStats, Network};
pub use solo::SoloTimer;
pub use topology::{ClusterSpec, DeviceId, LinkId, LinkKind, NodeId, Topology};
