//! Closed-form "solo" collective pricing.
//!
//! Many drivers want the duration a collective would take if it ran
//! *alone* on the wire — the paper's inference model prices every
//! all-to-all this way, and the training metrics use it as the
//! no-contention baseline. Building a fresh [`Network`] (and cloning
//! the [`Topology`] inside it) per query is wasteful in hot loops that
//! price one collective per layer per batch, so [`SoloTimer`] clones
//! the topology once and replays every query on the same engine.
//!
//! Reuse is exact, not approximate: all flow arithmetic in
//! [`Network`] is duration-based (segment lengths, byte drains, and
//! event offsets never involve the absolute clock), so a collective
//! started at any instant on an otherwise idle network completes after
//! the same integer-nanosecond duration it would starting at t = 0.
//! A unit test below pins that equivalence.

use std::sync::Arc;

use lina_simcore::SimDuration;

use crate::collectives::{CollectiveEngine, CollectiveSpec};
use crate::network::Network;
use crate::topology::Topology;

/// Prices collectives as if each ran alone on an idle network.
///
/// The constructor clones the topology once; every
/// [`SoloTimer::time`] call reuses the same engine, advancing its
/// private clock past the finished collective.
pub struct SoloTimer {
    engine: CollectiveEngine,
}

impl SoloTimer {
    /// Builds a timer over (a clone of) the topology.
    pub fn new(topo: &Topology) -> Self {
        SoloTimer::new_shared(Arc::new(topo.clone()))
    }

    /// Builds a timer over a shared topology handle — no topology clone
    /// at all, for callers that already hold an `Arc<Topology>`.
    pub fn new_shared(topo: Arc<Topology>) -> Self {
        SoloTimer {
            engine: CollectiveEngine::new(Network::new_shared(topo)),
        }
    }

    /// The topology collectives are priced against.
    pub fn topology(&self) -> &Topology {
        self.engine.network().topology()
    }

    /// Scales the priced network's link capacities (fault injection:
    /// 1.0 = healthy, < 1.0 = degraded). Subsequent [`SoloTimer::time`]
    /// queries price collectives on the degraded links.
    pub fn set_capacity_scale(&mut self, scale: f64) {
        self.engine.network_mut().set_capacity_scale(scale);
    }

    /// Duration of `spec` run alone on the idle network (zero for a
    /// collective that moves no bytes and has no participants).
    pub fn time(&mut self, spec: &CollectiveSpec) -> SimDuration {
        debug_assert_eq!(
            self.engine.active(),
            0,
            "SoloTimer: engine must be idle between queries"
        );
        self.engine.start(spec, 0);
        let done = self.engine.run_to_idle();
        done.first()
            .map(|d| d.at - d.started)
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::AllToAllAlgo;
    use crate::topology::{ClusterSpec, DeviceId};

    fn specs() -> Vec<CollectiveSpec> {
        let devs: Vec<DeviceId> = (0..16).map(DeviceId).collect();
        let mut unequal = vec![vec![0.0; 16]; 16];
        for (i, row) in unequal.iter_mut().enumerate() {
            if i != 3 {
                row[3] = 1e6 + i as f64 * 1e5;
            }
        }
        vec![
            CollectiveSpec::uniform_all_to_all(devs.clone(), 2e6, AllToAllAlgo::Flat),
            CollectiveSpec::AllToAll {
                participants: devs.clone(),
                sizes: unequal,
                algo: AllToAllAlgo::Flat,
            },
            CollectiveSpec::uniform_all_to_all(devs.clone(), 5e5, AllToAllAlgo::Hierarchical),
            CollectiveSpec::AllReduce {
                participants: devs.clone(),
                bytes: 1e7,
            },
            CollectiveSpec::Send {
                src: DeviceId(0),
                dst: DeviceId(9),
                bytes: 3e6,
            },
            CollectiveSpec::Broadcast {
                root: DeviceId(2),
                participants: devs,
                bytes: 1e6,
            },
        ]
    }

    /// Engine reuse must be bit-exact against a fresh engine per query,
    /// in any query order.
    #[test]
    fn reused_engine_matches_fresh_engine_bit_for_bit() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let mut timer = SoloTimer::new(&topo);
        for round in 0..3 {
            for (i, spec) in specs().iter().enumerate() {
                let reused = timer.time(spec);
                let mut fresh = SoloTimer::new(&topo);
                let once = fresh.time(spec);
                assert_eq!(reused, once, "round {round}, spec {i}");
            }
        }
    }

    #[test]
    fn empty_collective_prices_at_zero_bytes_latency() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let mut timer = SoloTimer::new(&topo);
        let d = timer.time(&CollectiveSpec::AllReduce {
            participants: vec![DeviceId(0)],
            bytes: 1e9,
        });
        // Single participant: completes immediately.
        assert!(d.as_secs_f64() < 1e-3);
    }
}
