//! Flow-level network simulation.
//!
//! A [`Network`] tracks active flows over a [`Topology`] and advances them
//! in time under weighted max-min fair sharing. A flow passes through two
//! phases:
//!
//! 1. a *latency* phase of fixed duration (propagation plus software
//!    overhead) during which it consumes no bandwidth, then
//! 2. a *transfer* phase during which it drains its byte count at the
//!    fair-share rate, recomputed whenever the active flow set changes.
//!
//! The owner drives the simulation with [`Network::next_event`] /
//! [`Network::advance_to`]; completions are reported with the tag the
//! flow was started with.

use std::collections::BTreeMap;
use std::sync::Arc;

use lina_simcore::{SimDuration, SimTime};

use crate::fairshare::{max_min_rates, FlowDemand};
use crate::topology::{DeviceId, Topology};

/// Identifies an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Parameters of a new flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source device.
    pub src: DeviceId,
    /// Destination device.
    pub dst: DeviceId,
    /// Payload size in bytes. Zero-byte flows complete at latency expiry.
    pub bytes: f64,
    /// Fair-share weight (see [`crate::fairshare`]).
    pub weight: f64,
    /// Extra latency added on top of the topology's base latency (e.g. a
    /// collective launch overhead, charged to the first phase).
    pub extra_latency: SimDuration,
    /// Caller-defined tag reported on completion.
    pub tag: u64,
}

#[derive(Clone, Debug, PartialEq)]
enum Phase {
    Latency { left: SimDuration },
    Transfer,
}

#[derive(Clone, Debug)]
struct ActiveFlow {
    links: Vec<u32>,
    weight: f64,
    phase: Phase,
    total: f64,
    remaining: f64,
    rate: f64,
    tag: u64,
}

/// A completed-flow notification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowDone {
    /// The flow that finished.
    pub id: FlowId,
    /// Tag from the [`FlowSpec`].
    pub tag: u64,
    /// Completion instant.
    pub at: SimTime,
}

/// Aggregate network counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Flows completed since construction.
    pub flows_completed: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: f64,
}

/// The flow-level network simulator.
#[derive(Clone, Debug)]
pub struct Network {
    topo: Arc<Topology>,
    now: SimTime,
    flows: BTreeMap<FlowId, ActiveFlow>,
    next_id: u64,
    rates_valid: bool,
    stats: NetStats,
    /// Multiplier applied to every link capacity (fault injection:
    /// 1.0 = healthy, < 1.0 = degraded NIC/NVLink bandwidth).
    capacity_scale: f64,
}

impl Network {
    /// Creates an idle network over the given topology.
    pub fn new(topo: Topology) -> Self {
        Network::new_shared(Arc::new(topo))
    }

    /// Creates an idle network over a shared topology handle. Replicas
    /// of one cluster all price against the same immutable topology, so
    /// sharing the `Arc` avoids a deep topology clone per network.
    pub fn new_shared(topo: Arc<Topology>) -> Self {
        Network {
            topo,
            now: SimTime::ZERO,
            flows: BTreeMap::new(),
            next_id: 0,
            rates_valid: true,
            stats: NetStats::default(),
            capacity_scale: 1.0,
        }
    }

    /// The current link-capacity multiplier (1.0 when healthy).
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// Scales every link capacity by `scale` relative to the topology's
    /// nominal bandwidth. In-flight transfers re-share the degraded (or
    /// restored) links from the current instant onward — the fluid
    /// model is piecewise-linear, so the change is exact.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is finite and positive.
    pub fn set_capacity_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "set_capacity_scale: bad scale {scale}"
        );
        if scale != self.capacity_scale {
            self.capacity_scale = scale;
            self.rates_valid = false;
        }
    }

    /// Cancels every active flow without completing it (no completion is
    /// reported and no stats are counted) — the device driving them has
    /// failed. Time does not advance.
    pub fn cancel_all_flows(&mut self) {
        self.flows.clear();
        self.rates_valid = false;
    }

    /// Cancels every active flow carrying `tag` without completing it
    /// (no completion is reported and no stats are counted) — the
    /// collective driving them was aborted. Other flows re-share the
    /// freed bandwidth from the current instant onward.
    pub fn cancel_flows_with_tag(&mut self, tag: u64) {
        let before = self.flows.len();
        self.flows.retain(|_, f| f.tag != tag);
        if self.flows.len() != before {
            self.rates_valid = false;
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of active flows (both phases).
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Starts a flow at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative/non-finite or `weight` is
    /// non-positive.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            spec.bytes >= 0.0 && spec.bytes.is_finite(),
            "start_flow: bad byte count {}",
            spec.bytes
        );
        assert!(spec.weight > 0.0, "start_flow: bad weight {}", spec.weight);
        let links: Vec<u32> = self
            .topo
            .path(spec.src, spec.dst)
            .iter()
            .map(|l| l.0)
            .collect();
        let latency = self.topo.latency(spec.src, spec.dst) + spec.extra_latency;
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            ActiveFlow {
                links,
                weight: spec.weight,
                phase: Phase::Latency { left: latency },
                total: spec.bytes,
                remaining: spec.bytes,
                rate: 0.0,
                tag: spec.tag,
            },
        );
        // A flow in its latency phase does not change rates yet, but
        // handling it lazily keeps the logic uniform.
        self.rates_valid = false;
        id
    }

    fn recompute_rates(&mut self) {
        if self.rates_valid {
            return;
        }
        let transferring: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.phase == Phase::Transfer)
            .map(|(&id, _)| id)
            .collect();
        let demands: Vec<FlowDemand<'_>> = transferring
            .iter()
            .map(|id| {
                let f = &self.flows[id];
                FlowDemand {
                    weight: f.weight,
                    links: &f.links,
                }
            })
            .collect();
        let rates = if self.capacity_scale == 1.0 {
            max_min_rates(self.topo.link_capacities(), &demands)
        } else {
            let scaled: Vec<f64> = self
                .topo
                .link_capacities()
                .iter()
                .map(|c| c * self.capacity_scale)
                .collect();
            max_min_rates(&scaled, &demands)
        };
        for (id, rate) in transferring.into_iter().zip(rates) {
            self.flows.get_mut(&id).expect("flow exists").rate = rate;
        }
        self.rates_valid = true;
    }

    /// The next instant at which network state changes (a latency phase
    /// expires or a flow completes), or `None` if no active flow can make
    /// progress.
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.recompute_rates();
        let mut earliest: Option<SimTime> = None;
        for f in self.flows.values() {
            let t = match &f.phase {
                Phase::Latency { left } => self.now + *left,
                Phase::Transfer => {
                    if f.remaining <= 0.0 || f.rate.is_infinite() {
                        self.now
                    } else if f.rate > 0.0 {
                        // Round up by one nanosecond so advancing to the
                        // event time provably drains the flow.
                        self.now
                            + SimDuration::from_secs_f64(f.remaining / f.rate)
                            + SimDuration::from_nanos(1)
                    } else {
                        // Zero-capacity path: the flow is stalled forever.
                        continue;
                    }
                }
            };
            earliest = Some(match earliest {
                None => t,
                Some(e) => e.min(t),
            });
        }
        earliest
    }

    /// Advances simulated time to `t`, processing any internal phase
    /// transitions on the way, and returns flows that completed (in
    /// deterministic id order per completion instant).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<FlowDone> {
        assert!(t >= self.now, "advance_to: time going backwards");
        let mut done = Vec::new();
        while self.now < t {
            self.recompute_rates();
            let seg_end = match self.next_event() {
                Some(e) if e < t => e,
                _ => t,
            };
            let dt = seg_end - self.now;
            let dt_secs = dt.as_secs_f64();
            let mut transitioned = false;
            let mut completed: Vec<FlowId> = Vec::new();
            for (&id, f) in self.flows.iter_mut() {
                match &mut f.phase {
                    Phase::Latency { left } => {
                        if *left <= dt {
                            f.phase = Phase::Transfer;
                            transitioned = true;
                            if f.links.is_empty() || f.remaining <= 0.0 {
                                completed.push(id);
                            }
                        } else {
                            *left -= dt;
                        }
                    }
                    Phase::Transfer => {
                        if f.rate.is_infinite() {
                            f.remaining = 0.0;
                        } else {
                            f.remaining -= f.rate * dt_secs;
                        }
                        // Tolerate sub-nanosecond rounding: anything the
                        // current rate would drain in 2ns counts as done.
                        let eps = f.rate * 2e-9 + 1e-9;
                        if f.remaining <= eps {
                            completed.push(id);
                        }
                    }
                }
            }
            self.now = seg_end;
            if !completed.is_empty() {
                transitioned = true;
                for id in completed {
                    let f = self.flows.remove(&id).expect("completed flow exists");
                    self.stats.flows_completed += 1;
                    // `remaining` may be a few bytes short of zero; count
                    // the full payload as delivered.
                    self.stats.bytes_delivered += f.total;
                    done.push(FlowDone {
                        id,
                        tag: f.tag,
                        at: self.now,
                    });
                }
            }
            if transitioned {
                self.rates_valid = false;
            }
        }
        done
    }

    /// Convenience: runs the network until all flows complete, returning
    /// the completion time of the last one. Returns `None` if some flow
    /// can never complete (zero-capacity path).
    pub fn run_to_idle(&mut self) -> Option<SimTime> {
        let mut last = self.now;
        while self.active_flows() > 0 {
            let next = self.next_event()?;
            let done = self.advance_to(next);
            if let Some(d) = done.last() {
                last = d.at;
            }
        }
        Some(last)
    }

    /// Current rate of a flow in bytes/s (0 during the latency phase).
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        self.recompute_rates();
        self.flows.get(&id).map(|f| match f.phase {
            Phase::Latency { .. } => 0.0,
            Phase::Transfer => f.rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn net() -> Network {
        Network::new(Topology::new(ClusterSpec::paper_testbed()))
    }

    fn spec(src: u32, dst: u32, bytes: f64) -> FlowSpec {
        FlowSpec {
            src: DeviceId(src),
            dst: DeviceId(dst),
            bytes,
            weight: 1.0,
            extra_latency: SimDuration::ZERO,
            tag: 0,
        }
    }

    #[test]
    fn single_inter_node_flow_takes_bytes_over_bandwidth() {
        let mut n = net();
        let bw = n.topology().spec().nic_bw;
        let lat = n.topology().spec().inter_latency;
        n.start_flow(spec(0, 4, 1e9));
        let end = n.run_to_idle().expect("completes");
        let expected = lat + SimDuration::from_secs_f64(1e9 / bw);
        let err = (end.as_secs_f64() - expected.as_secs_f64()).abs();
        assert!(err < 1e-6, "end {end} vs expected {expected}");
    }

    #[test]
    fn intra_node_flow_uses_nvlink_speed() {
        let mut n = net();
        let bw = n.topology().spec().nvlink_bw;
        n.start_flow(spec(0, 1, 1e9));
        let end = n.run_to_idle().expect("completes");
        // ~4ms at 250 GB/s, far faster than the NIC.
        assert!(end.as_secs_f64() < 1e9 / bw * 1.1 + 1e-4);
    }

    #[test]
    fn two_flows_share_a_nic_fairly() {
        let mut n = net();
        let bw = n.topology().spec().nic_bw;
        // Both flows leave device 0: they share its NIC.
        n.start_flow(spec(0, 4, 1e9));
        n.start_flow(spec(0, 5, 1e9));
        let end = n.run_to_idle().expect("completes");
        let expected = 2e9 / bw;
        assert!(
            (end.as_secs_f64() - expected).abs() / expected < 0.01,
            "end {} vs {}",
            end.as_secs_f64(),
            expected
        );
    }

    #[test]
    fn short_flow_finishing_frees_bandwidth() {
        let mut n = net();
        let bw = n.topology().spec().nic_bw;
        n.start_flow(spec(0, 4, 1e9));
        n.start_flow(spec(0, 5, 0.2e9));
        let end = n.run_to_idle().expect("completes");
        // Shared until the short one drains (0.4e9 total transferred at
        // bw/2 each => t1 = 0.4/bw... then the long one has 0.8e9 left at
        // full bw. Total = 0.4e9/bw*... compute: phase1 dt = 0.2e9/(bw/2)
        // = 0.4e9/bw; long transferred 0.2e9, 0.8e9 left at bw =>
        // 0.8e9/bw. Total 1.2e9/bw.
        let expected = 1.2e9 / bw;
        assert!(
            (end.as_secs_f64() - expected).abs() / expected < 0.01,
            "end {} vs {}",
            end.as_secs_f64(),
            expected
        );
    }

    #[test]
    fn loopback_flow_completes_after_latency_only() {
        let mut n = net();
        n.start_flow(spec(3, 3, 5e9));
        let end = n.run_to_idle().expect("completes");
        assert!(end.as_secs_f64() < 1e-5, "loopback took {end}");
    }

    #[test]
    fn zero_byte_flow_completes_at_latency() {
        let mut n = net();
        let lat = n.topology().spec().inter_latency;
        n.start_flow(spec(0, 8, 0.0));
        let end = n.run_to_idle().expect("completes");
        assert_eq!(end, SimTime::ZERO + lat);
    }

    #[test]
    fn extra_latency_is_charged() {
        let mut n = net();
        let mut s = spec(0, 4, 0.0);
        s.extra_latency = SimDuration::from_millis(3);
        n.start_flow(s);
        let end = n.run_to_idle().expect("completes");
        assert!(end >= SimTime::from_millis(3));
    }

    #[test]
    fn completions_carry_tags() {
        let mut n = net();
        let mut s = spec(0, 4, 1e6);
        s.tag = 77;
        n.start_flow(s);
        let mut done = Vec::new();
        while done.is_empty() {
            let t = n.next_event().expect("event");
            done = n.advance_to(t);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 77);
    }

    #[test]
    fn flows_on_disjoint_paths_do_not_interact() {
        let mut n = net();
        let bw = n.topology().spec().nic_bw;
        n.start_flow(spec(0, 4, 1e9)); // node 0 -> 1
        n.start_flow(spec(8, 12, 1e9)); // node 2 -> 3
        let end = n.run_to_idle().expect("completes");
        let expected = 1e9 / bw;
        assert!(
            (end.as_secs_f64() - expected).abs() / expected < 0.01,
            "end {} vs {}",
            end.as_secs_f64(),
            expected
        );
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        let mut n = net();
        let mut heavy = spec(0, 4, 1e9);
        heavy.weight = 3.0;
        let light = spec(0, 5, 1e9);
        let heavy_id = n.start_flow(heavy);
        let light_id = n.start_flow(light);
        // Let latency elapse so both are transferring.
        let t = SimTime::from_micros(50);
        n.advance_to(t);
        let hr = n.flow_rate(heavy_id).expect("active");
        let lr = n.flow_rate(light_id).expect("active");
        assert!((hr / lr - 3.0).abs() < 0.01, "ratio {}", hr / lr);
    }

    #[test]
    fn advance_past_everything_is_fine() {
        let mut n = net();
        n.start_flow(spec(0, 4, 1e6));
        let done = n.advance_to(SimTime::from_millis(500));
        assert_eq!(done.len(), 1);
        assert_eq!(n.active_flows(), 0);
        assert_eq!(n.next_event(), None);
    }

    #[test]
    fn stats_count_completions() {
        let mut n = net();
        n.start_flow(spec(0, 4, 1e6));
        n.start_flow(spec(4, 0, 1e6));
        n.run_to_idle();
        assert_eq!(n.stats().flows_completed, 2);
    }

    #[test]
    #[should_panic(expected = "time going backwards")]
    fn backwards_advance_panics() {
        let mut n = net();
        n.advance_to(SimTime::from_millis(5));
        n.advance_to(SimTime::from_millis(4));
    }

    #[test]
    fn degraded_capacity_slows_transfers_proportionally() {
        let mut healthy = net();
        healthy.start_flow(spec(0, 4, 1e9));
        let t_healthy = healthy.run_to_idle().expect("completes");
        let mut degraded = net();
        degraded.set_capacity_scale(0.5);
        degraded.start_flow(spec(0, 4, 1e9));
        let t_degraded = degraded.run_to_idle().expect("completes");
        let ratio = t_degraded.as_secs_f64() / t_healthy.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.02, "half bandwidth ratio {ratio}");
    }

    #[test]
    fn restoring_capacity_mid_flow_speeds_the_remainder() {
        // Degraded to 50% for the first half of the transfer, then
        // restored: the flow finishes between the all-healthy and
        // all-degraded completion times.
        let mut n = net();
        let bw = n.topology().spec().nic_bw;
        n.set_capacity_scale(0.5);
        n.start_flow(spec(0, 4, 1e9));
        let healthy_secs = 1e9 / bw;
        n.advance_to(SimTime::from_secs_f64(healthy_secs));
        n.set_capacity_scale(1.0);
        let end = n.run_to_idle().expect("completes");
        let secs = end.as_secs_f64();
        assert!(
            secs > healthy_secs * 1.2 && secs < 2.0 * healthy_secs,
            "piecewise transfer took {secs}, healthy {healthy_secs}"
        );
    }

    #[test]
    fn cancelled_flows_never_complete() {
        let mut n = net();
        n.start_flow(spec(0, 4, 1e9));
        n.start_flow(spec(0, 5, 1e9));
        n.advance_to(SimTime::from_millis(1));
        n.cancel_all_flows();
        assert_eq!(n.active_flows(), 0);
        assert_eq!(n.next_event(), None);
        let done = n.advance_to(SimTime::from_secs_f64(10.0));
        assert!(done.is_empty(), "cancelled flows reported completions");
        assert_eq!(n.stats().flows_completed, 0);
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn zero_capacity_scale_rejected() {
        net().set_capacity_scale(0.0);
    }
}
